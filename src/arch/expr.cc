#include "arch/expr.h"

#include <algorithm>

#include "arch/actions.h"

namespace ipsa::arch {

namespace {

// Byte `i` of `v` with any padding bits above bit_width() masked away, so
// the comparison never depends on unused storage bits.
inline uint8_t MaskedByte(const mem::BitString& v, size_t i) {
  if (i >= v.byte_size()) return 0;
  uint8_t b = v.bytes()[i];
  size_t rem = v.bit_width() - i * 8;
  if (rem < 8) b &= static_cast<uint8_t>((1u << rem) - 1);
  return b;
}

}  // namespace

int CompareBits(const mem::BitString& a, const mem::BitString& b) {
  size_t n = std::max(a.byte_size(), b.byte_size());
  for (size_t i = n; i > 0; --i) {
    uint8_t ba = MaskedByte(a, i - 1);
    uint8_t bb = MaskedByte(b, i - 1);
    if (ba != bb) return ba < bb ? -1 : 1;
  }
  return 0;
}

ExprPtr Expr::Const(mem::BitString v) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kConst));
  e->const_ = std::move(v);
  return e;
}

ExprPtr Expr::ConstU(uint64_t v, uint32_t width_bits) {
  return Const(mem::BitString(width_bits, v));
}

ExprPtr Expr::Field(FieldRef ref) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kField));
  e->field_ = std::move(ref);
  return e;
}

ExprPtr Expr::Raw(std::string instance, ExprPtr bit_offset,
                  uint32_t width_bits) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kRaw));
  e->name_ = std::move(instance);
  e->lhs_ = std::move(bit_offset);
  e->width_ = width_bits;
  return e;
}

ExprPtr Expr::Param(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kParam));
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Register(std::string name, ExprPtr index) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kRegister));
  e->name_ = std::move(name);
  e->lhs_ = std::move(index);
  return e;
}

ExprPtr Expr::IsValid(std::string instance) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kIsValid));
  e->name_ = std::move(instance);
  return e;
}

ExprPtr Expr::Unary(Op op, ExprPtr a) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kUnary));
  e->op_ = op;
  e->lhs_ = std::move(a);
  return e;
}

ExprPtr Expr::Binary(Op op, ExprPtr a, ExprPtr b) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kBinary));
  e->op_ = op;
  e->lhs_ = std::move(a);
  e->rhs_ = std::move(b);
  return e;
}

namespace {

mem::BitString MakeBool(bool v) { return mem::BitString(1, v ? 1 : 0); }

}  // namespace

bool BitsTruthy(const mem::BitString& v) {
  for (uint8_t b : v.bytes()) {
    if (b != 0) return true;
  }
  return false;
}

Result<mem::BitString> EvalUnaryKernel(Expr::Op op, const mem::BitString& a) {
  switch (op) {
    case Expr::Op::kNot:
      return MakeBool(!BitsTruthy(a));
    case Expr::Op::kBitNot: {
      mem::BitString out(a.bit_width());
      for (size_t i = 0; i < a.bit_width(); ++i) {
        out.SetBit(i, !a.GetBit(i));
      }
      return out;
    }
    default:
      return InternalError("bad unary op");
  }
}

Result<mem::BitString> EvalBinaryKernel(Expr::Op op, const mem::BitString& a,
                                        const mem::BitString& b) {
  switch (op) {
    case Expr::Op::kEq:
      return MakeBool(CompareBits(a, b) == 0);
    case Expr::Op::kNe:
      return MakeBool(CompareBits(a, b) != 0);
    case Expr::Op::kLt:
      return MakeBool(CompareBits(a, b) < 0);
    case Expr::Op::kLe:
      return MakeBool(CompareBits(a, b) <= 0);
    case Expr::Op::kGt:
      return MakeBool(CompareBits(a, b) > 0);
    case Expr::Op::kGe:
      return MakeBool(CompareBits(a, b) >= 0);
    default:
      break;
  }
  // Arithmetic/bitwise: modular over the low 64 bits, result as wide as
  // the wider operand (capped at 64).
  uint32_t width = static_cast<uint32_t>(
      std::min<size_t>(64, std::max(a.bit_width(), b.bit_width())));
  uint64_t va = a.ToUint64();
  uint64_t vb = b.ToUint64();
  uint64_t r = 0;
  switch (op) {
    case Expr::Op::kAdd:
      r = va + vb;
      break;
    case Expr::Op::kSub:
      r = va - vb;
      break;
    case Expr::Op::kMul:
      r = va * vb;
      break;
    case Expr::Op::kBitAnd:
      r = va & vb;
      break;
    case Expr::Op::kBitOr:
      r = va | vb;
      break;
    case Expr::Op::kBitXor:
      r = va ^ vb;
      break;
    case Expr::Op::kShl:
      r = vb >= 64 ? 0 : va << vb;
      break;
    case Expr::Op::kShr:
      r = vb >= 64 ? 0 : va >> vb;
      break;
    case Expr::Op::kSatAdd: {
      uint64_t m = width >= 64 ? ~0ull : ((1ull << width) - 1);
      uint64_t sum = va + vb;
      r = (sum < va || sum > m) ? m : sum;
      break;
    }
    case Expr::Op::kFxpQuantize: {
      uint64_t m = width >= 64 ? ~0ull : ((1ull << width) - 1);
      if (va == 0) {
        r = 0;
      } else if (vb >= width) {
        r = m;
      } else {
        r = va > (m >> vb) ? m : (va << vb);
      }
      break;
    }
    case Expr::Op::kFxpDequantize: {
      if (vb == 0) {
        r = va;
      } else if (vb > 64) {
        r = 0;
      } else {
        uint64_t q = vb == 64 ? 0 : va >> vb;
        r = q + ((va >> (vb - 1)) & 1);
      }
      break;
    }
    default:
      return InternalError("bad binary op");
  }
  return mem::BitString(width, r);
}

// Slices `name`'s bits out of `args_data` per `params`' declaration-order
// layout; zero-fills a parameter that does not fully fit (matching
// BindActionArgs).
static Result<mem::BitString> SliceParam(const std::vector<ActionParam>& params,
                                         const mem::BitString& args_data,
                                         const std::string& name) {
  size_t offset = 0;
  for (const ActionParam& p : params) {
    if (p.name == name) {
      if (offset + p.width_bits <= args_data.bit_width()) {
        return args_data.Slice(offset, p.width_bits);
      }
      return mem::BitString(p.width_bits);
    }
    offset += p.width_bits;
  }
  return NotFound("action parameter '" + name + "' not bound");
}

Result<mem::BitString> Expr::Eval(const EvalEnv& env) const {
  switch (kind_) {
    case Kind::kConst:
      return const_;
    case Kind::kField:
      return env.ctx->ReadField(field_);
    case Kind::kRaw: {
      IPSA_ASSIGN_OR_RETURN(mem::BitString off, lhs_->Eval(env));
      return env.ctx->ReadRaw(name_, static_cast<uint32_t>(off.ToUint64()),
                              width_);
    }
    case Kind::kParam: {
      if (env.args != nullptr) {
        auto it = env.args->find(name_);
        if (it == env.args->end()) {
          return NotFound("action parameter '" + name_ + "' not bound");
        }
        return it->second;
      }
      if (env.param_defs != nullptr && env.args_data != nullptr) {
        return SliceParam(*env.param_defs, *env.args_data, name_);
      }
      return FailedPrecondition("no action arguments bound");
    }
    case Kind::kRegister: {
      if (env.regs == nullptr) {
        return FailedPrecondition("no register file available");
      }
      IPSA_ASSIGN_OR_RETURN(mem::BitString idx, lhs_->Eval(env));
      IPSA_ASSIGN_OR_RETURN(
          uint64_t v, env.regs->Read(name_, static_cast<size_t>(idx.ToUint64())));
      return mem::BitString(64, v);
    }
    case Kind::kIsValid:
      return MakeBool(env.ctx->phv().IsValid(name_));
    case Kind::kUnary: {
      IPSA_ASSIGN_OR_RETURN(mem::BitString a, lhs_->Eval(env));
      return EvalUnaryKernel(op_, a);
    }
    case Kind::kBinary: {
      // Short-circuit the boolean connectives.
      if (op_ == Op::kAnd || op_ == Op::kOr) {
        IPSA_ASSIGN_OR_RETURN(mem::BitString a, lhs_->Eval(env));
        bool ta = BitsTruthy(a);
        if (op_ == Op::kAnd && !ta) return MakeBool(false);
        if (op_ == Op::kOr && ta) return MakeBool(true);
        IPSA_ASSIGN_OR_RETURN(mem::BitString b, rhs_->Eval(env));
        return MakeBool(BitsTruthy(b));
      }
      IPSA_ASSIGN_OR_RETURN(mem::BitString a, lhs_->Eval(env));
      IPSA_ASSIGN_OR_RETURN(mem::BitString b, rhs_->Eval(env));
      return EvalBinaryKernel(op_, a, b);
    }
  }
  return InternalError("bad expression kind");
}

Result<bool> Expr::EvalBool(const EvalEnv& env) const {
  IPSA_ASSIGN_OR_RETURN(mem::BitString v, Eval(env));
  return BitsTruthy(v);
}

void Expr::CollectHeaderDeps(std::vector<std::string>& out) const {
  switch (kind_) {
    case Kind::kField:
      if (field_.space == FieldRef::Space::kHeader) {
        out.push_back(field_.instance);
      }
      break;
    case Kind::kRaw:
    case Kind::kIsValid:
      out.push_back(name_);
      break;
    default:
      break;
  }
  if (lhs_) lhs_->CollectHeaderDeps(out);
  if (rhs_) rhs_->CollectHeaderDeps(out);
}

std::string_view OpName(Expr::Op op) {
  switch (op) {
    case Expr::Op::kNone:
      return "?";
    case Expr::Op::kNot:
      return "!";
    case Expr::Op::kBitNot:
      return "~";
    case Expr::Op::kEq:
      return "==";
    case Expr::Op::kNe:
      return "!=";
    case Expr::Op::kLt:
      return "<";
    case Expr::Op::kLe:
      return "<=";
    case Expr::Op::kGt:
      return ">";
    case Expr::Op::kGe:
      return ">=";
    case Expr::Op::kAnd:
      return "&&";
    case Expr::Op::kOr:
      return "||";
    case Expr::Op::kAdd:
      return "+";
    case Expr::Op::kSub:
      return "-";
    case Expr::Op::kMul:
      return "*";
    case Expr::Op::kBitAnd:
      return "&";
    case Expr::Op::kBitOr:
      return "|";
    case Expr::Op::kBitXor:
      return "^";
    case Expr::Op::kShl:
      return "<<";
    case Expr::Op::kShr:
      return ">>";
    case Expr::Op::kSatAdd:
      return "sat_add";
    case Expr::Op::kFxpQuantize:
      return "fxp_quantize";
    case Expr::Op::kFxpDequantize:
      return "fxp_dequantize";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kConst:
      return std::to_string(const_.ToUint64());
    case Kind::kField:
      return field_.ToString();
    case Kind::kRaw:
      return name_ + ".raw[" + lhs_->ToString() + " +: " +
             std::to_string(width_) + "]";
    case Kind::kParam:
      return name_;
    case Kind::kRegister:
      return name_ + "[" + lhs_->ToString() + "]";
    case Kind::kIsValid:
      return name_ + ".isValid()";
    case Kind::kUnary:
      return std::string(OpName(op_)) + "(" + lhs_->ToString() + ")";
    case Kind::kBinary:
      if (IsExternOp(op_)) {
        return std::string(OpName(op_)) + "(" + lhs_->ToString() + ", " +
               rhs_->ToString() + ")";
      }
      return "(" + lhs_->ToString() + " " + std::string(OpName(op_)) + " " +
             rhs_->ToString() + ")";
  }
  return "?";
}

bool ExprUsesExternOp(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (Expr::IsExternOp(e->op())) return true;
  return ExprUsesExternOp(e->lhs()) || ExprUsesExternOp(e->rhs());
}

}  // namespace ipsa::arch
