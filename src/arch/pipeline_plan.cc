#include "arch/pipeline_plan.h"

namespace ipsa::arch {

std::string PipelinePlan::ToString() const {
  std::string out;
  auto side = [&out](const char* name, const std::vector<PlanGroup>& groups,
                     uint32_t tail) {
    out += name;
    out += ":";
    for (const PlanGroup& g : groups) {
      out += " [unit ";
      out += std::to_string(g.unit);
      out += " +";
      out += std::to_string(g.entry_cycles);
      out += "cy";
      for (const PlanProgram& p : g.programs) {
        out += " ";
        out += p.source != nullptr ? p.source->name : std::string("?");
        out += p.compiled != nullptr ? "" : "(interp)";
      }
      out += "]";
    }
    if (tail > 0) {
      out += " tail+";
      out += std::to_string(tail);
      out += "cy";
    }
    out += "\n";
  };
  side("ingress", ingress, ingress_tail_cycles);
  side("egress", egress, egress_tail_cycles);
  if (tm_cycles > 0) {
    out += "tm+" + std::to_string(tm_cycles) + "cy\n";
  }
  return out;
}

}  // namespace ipsa::arch
