// The action VM: executor primitives interpreted per packet.
//
// rP4 action bodies (Fig. 5a: `action set_bd_dmac(bit<16> bd, bit<48> dmac)
// { meta.bd = bd; ethernet.dst_addr = dmac; }`) compile into ActionDefs —
// plain data, so loading a new action at runtime is a template write, never
// a recompile of the switch (paper §2.2: action primitives are template
// parameters of a TSP).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/expr.h"
#include "util/status.h"

namespace ipsa::arch {

struct ActionParam {
  std::string name;
  uint32_t width_bits = 0;
};

struct ActionOp {
  enum class Kind {
    kNoop,
    kAssign,      // dest = value
    kAssignRaw,   // instance.raw[offset +: width] = value
    kPushHeader,  // insert a header instance into the packet
    kPopHeader,   // remove a header instance from the packet
    kDrop,
    kMark,
    kForward,     // egress_spec = value
    kRegWrite,    // reg[index] = value
    kIf,          // conditional sub-programs
    kUpdateChecksum,  // recompute a header's internet checksum
  };

  Kind kind = Kind::kNoop;
  FieldRef dest;                  // kAssign
  std::string instance;           // kAssignRaw / kPushHeader / kPopHeader
  ExprPtr raw_offset;             // kAssignRaw
  uint32_t raw_width = 0;         // kAssignRaw
  ExprPtr value;                  // kAssign / kAssignRaw / kForward / kRegWrite
  std::string after_instance;     // kPushHeader: insert after this instance
  ExprPtr push_size_bytes;        // kPushHeader: size override (var headers)
  std::string reg;                // kRegWrite
  ExprPtr index;                  // kRegWrite
  ExprPtr cond;                   // kIf
  std::vector<ActionOp> then_ops;
  std::vector<ActionOp> else_ops;
  std::string checksum_field;     // kUpdateChecksum

  static ActionOp Noop() { return {}; }
  static ActionOp Assign(FieldRef dest, ExprPtr value);
  static ActionOp AssignRaw(std::string instance, ExprPtr offset,
                            uint32_t width, ExprPtr value);
  static ActionOp PushHeader(std::string type_name, std::string after,
                             ExprPtr size_bytes = nullptr);
  static ActionOp PopHeader(std::string instance);
  static ActionOp Drop();
  static ActionOp Mark();
  static ActionOp Forward(ExprPtr port);
  static ActionOp RegWrite(std::string reg, ExprPtr index, ExprPtr value);
  static ActionOp If(ExprPtr cond, std::vector<ActionOp> then_ops,
                     std::vector<ActionOp> else_ops = {});
  // Recomputes the RFC 1071 checksum over the whole header instance and
  // stores it into the instance's checksum field (named `checksum_field`,
  // defaulting to "hdr_checksum").
  static ActionOp UpdateChecksum(std::string instance,
                                 std::string checksum_field = "hdr_checksum");
};

struct ActionDef {
  std::string name;
  std::vector<ActionParam> params;
  std::vector<ActionOp> body;

  uint32_t ParamsWidthBits() const {
    uint32_t w = 0;
    for (const auto& p : params) w += p.width_bits;
    return w;
  }
};

// Binds `args_data` (the table entry's action_data, params packed low-bits-
// first in declaration order) to named parameters.
std::map<std::string, mem::BitString> BindActionArgs(
    const ActionDef& action, const mem::BitString& args_data);

// Packs parameter values (declaration order) into action_data layout.
mem::BitString PackActionArgs(const ActionDef& action,
                              const std::vector<mem::BitString>& values);

// Runs the action body. `env.args` is set internally from `args_data`.
Status ExecuteAction(const ActionDef& action, const mem::BitString& args_data,
                     PacketContext& ctx, RegisterFile* regs);

// Runs a raw op list with an existing environment (used for kIf recursion
// and for stage-level miss programs).
Status ExecuteOps(const std::vector<ActionOp>& ops, const EvalEnv& env);

// The canonical no-op action (action_id 0 by convention).
const ActionDef& NoAction();

// True if any expression in the action body uses a fixed-point extern op
// (kSatAdd/kFxpQuantize/kFxpDequantize) — the hw model's unit of pricing
// for the extern ALU.
bool ActionUsesExternOps(const ActionDef& action);

}  // namespace ipsa::arch
