// Epoch-specialized pipeline execution plans.
//
// CompileStage (compiled_stage.h) removed the per-packet name resolution
// inside one stage; the devices still walked a generic per-packet loop over
// their physical structure — every empty PISA stage cost a branch, every
// telemetry/trace hook a test, and the TSP/stage topology was re-derived
// from vectors of optionals on each packet. A PipelinePlan lowers the whole
// installed template into a straight-line walk at config-epoch commit:
//
//   * dead-stage elision — empty physical stages disappear from the walk;
//     their mandatory traversal cycles are folded into the next active
//     group's `entry_cycles` (or the side's `*_tail_cycles` when the
//     pipeline ends in empties), so the cycle ledger stays bit-identical
//     to the generic loop;
//   * pre-resolved program pointers — each PlanProgram carries the compiled
//     stage (or the interpreter source as fallback) plus its telemetry
//     slot, so the packet path chases no optionals;
//   * observer specialization — RunPlan is templated over an Observer
//     policy; the null observer compiles the telemetry and trace hooks out
//     of the loop entirely, the device instantiates the right variant once
//     per batch.
//
// Like the compiled stages the plan dangles on any CCM mutation: the owning
// switch rebuilds it in EnsureCompiled under the same epoch key, and any
// packet processed between mutation and rebuild runs the generic
// interpreter walk (ExecMode::kInterpret / kCompile).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "arch/compiled_stage.h"
#include "arch/ii_model.h"
#include "arch/stage.h"

namespace ipsa::arch {

// How a device executes its installed template. The differential fuzzing
// harness pins devices to each mode and asserts bit-identical outputs.
enum class ExecMode {
  kInterpret,   // name-resolving interpreter (RunStage) for every program
  kCompile,     // compiled stages, generic per-packet structure walk
  kSpecialize,  // compiled stages driven by the flattened PipelinePlan
};

// One stage program inside a plan group. `compiled == nullptr` means the
// program did not compile (unresolvable reference) and runs through the
// interpreter; `source` is always set.
struct PlanProgram {
  const CompiledStage* compiled = nullptr;
  const StageProgram* source = nullptr;
  uint32_t slot = 0;  // telemetry stage slot (Collector::SetStages layout)
};

// One traversal unit: a physical PISA stage or an active IPSA TSP.
struct PlanGroup {
  uint32_t unit = 0;          // trace unit id (physical slot / TSP id)
  uint32_t entry_cycles = 0;  // charged on entering the group (includes any
                              // elided empty stages preceding it)
  std::vector<PlanProgram> programs;
};

struct PipelinePlan {
  std::vector<PlanGroup> ingress;
  std::vector<PlanGroup> egress;
  // Elided empty stages *after* the last active group of a side; charged
  // only when the packet was not dropped (the generic loop's drop-break
  // skips them too).
  uint32_t ingress_tail_cycles = 0;
  uint32_t egress_tail_cycles = 0;
  // Traffic-manager cycles between the sides (IPSA charges 1, PISA 0).
  uint32_t tm_cycles = 0;
  // IPSA TSPs parse just-in-time per program; PISA parses up front.
  bool jit_parse = false;
  // IPSA computes a per-group initiation interval (IpsaTspIi); PISA's II is
  // parser-bound and computed by the caller.
  bool per_group_ii = false;

  std::string ToString() const;  // debug / test introspection
};

struct PlanRunStats {
  // max IpsaTspIi over the traversed groups when `per_group_ii`, else 1.0.
  double worst_ii = 1.0;
};

// Observer with every hook compiled out: the hot path for untraced,
// untelemetered batches.
struct PlanNullObserver {
  static constexpr bool kFillNames = false;
  void OnProgram(const PlanGroup&, const PlanProgram&,
                 const StageRunStats&) const {}
};

// Executes one packet through the plan. Cycle accounting, drop semantics
// and per-stage side effects are bit-identical to the devices' generic
// walks; the specialization regression tests pin this.
template <typename Observer>
Result<PlanRunStats> RunPlan(const PipelinePlan& plan, PacketContext& ctx,
                             const TableCatalog& catalog,
                             const ActionStore& actions, RegisterFile* regs,
                             Observer&& observer) {
  constexpr bool kFillNames = std::remove_reference_t<Observer>::kFillNames;
  PlanRunStats out;
  auto run_side = [&](const std::vector<PlanGroup>& groups,
                      uint32_t tail_cycles) -> Status {
    for (const PlanGroup& group : groups) {
      ctx.ChargeCycles(group.entry_cycles);
      uint64_t parse_bytes = 0;
      uint64_t access = 0;
      for (const PlanProgram& program : group.programs) {
        StageRunStats run_stats;
        if (program.compiled != nullptr) {
          IPSA_ASSIGN_OR_RETURN(
              run_stats, RunCompiledStage(*program.compiled, ctx, regs,
                                          plan.jit_parse, kFillNames));
        } else {
          IPSA_ASSIGN_OR_RETURN(run_stats,
                                RunStage(*program.source, ctx, catalog,
                                         actions, regs, plan.jit_parse));
        }
        parse_bytes += run_stats.parse_bytes;
        if (run_stats.access_cycles > access) access = run_stats.access_cycles;
        observer.OnProgram(group, program, run_stats);
        if (ctx.dropped()) break;
      }
      if (plan.per_group_ii) {
        double ii = IpsaTspIi(parse_bytes, access);
        if (ii > out.worst_ii) out.worst_ii = ii;
      }
      // A drop ends the side immediately; trailing elided stages are never
      // reached (the generic loop breaks before charging them).
      if (ctx.dropped()) return OkStatus();
    }
    ctx.ChargeCycles(tail_cycles);
    return OkStatus();
  };
  IPSA_RETURN_IF_ERROR(run_side(plan.ingress, plan.ingress_tail_cycles));
  if (!ctx.dropped()) {
    ctx.ChargeCycles(plan.tm_cycles);
    IPSA_RETURN_IF_ERROR(run_side(plan.egress, plan.egress_tail_cycles));
  }
  return out;
}

}  // namespace ipsa::arch
