#include "arch/phv.h"

namespace ipsa::arch {

const HeaderInstance* Phv::Find(std::string_view name) const {
  for (const auto& h : instances_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

HeaderInstance* Phv::FindMutable(std::string_view name) {
  for (auto& h : instances_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void Phv::ShiftOffsets(uint32_t from_offset, int32_t delta) {
  for (auto& h : instances_) {
    if (h.byte_offset >= from_offset) {
      h.byte_offset = static_cast<uint32_t>(
          static_cast<int64_t>(h.byte_offset) + delta);
    }
  }
}

Status Phv::RemoveInstance(std::string_view name) {
  for (auto it = instances_.begin(); it != instances_.end(); ++it) {
    if (it->name == name) {
      instances_.erase(it);
      return OkStatus();
    }
  }
  return NotFound("PHV has no instance '" + std::string(name) + "'");
}

Status Metadata::Declare(const std::string& name, uint32_t width_bits) {
  auto it = fields_.find(name);
  if (it != fields_.end()) {
    if (it->second.bit_width() != width_bits) {
      return AlreadyExists("metadata field '" + name +
                           "' redeclared with different width");
    }
    return OkStatus();
  }
  fields_.emplace(name, mem::BitString(width_bits));
  return OkStatus();
}

uint32_t Metadata::WidthOf(std::string_view name) const {
  auto it = fields_.find(std::string(name));
  return it == fields_.end() ? 0
                             : static_cast<uint32_t>(it->second.bit_width());
}

Result<mem::BitString> Metadata::Read(std::string_view name) const {
  auto it = fields_.find(std::string(name));
  if (it == fields_.end()) {
    return NotFound("metadata field '" + std::string(name) + "' not declared");
  }
  return it->second;
}

Status Metadata::Write(std::string_view name, const mem::BitString& value) {
  auto it = fields_.find(std::string(name));
  if (it == fields_.end()) {
    return NotFound("metadata field '" + std::string(name) + "' not declared");
  }
  it->second = mem::BitString::FromBytes(value.bytes(), it->second.bit_width());
  return OkStatus();
}

uint64_t Metadata::ReadUint(std::string_view name) const {
  auto it = fields_.find(std::string(name));
  return it == fields_.end() ? 0 : it->second.ToUint64();
}

Status Metadata::WriteUint(std::string_view name, uint64_t value) {
  auto it = fields_.find(std::string(name));
  if (it == fields_.end()) {
    return NotFound("metadata field '" + std::string(name) + "' not declared");
  }
  mem::BitString v(it->second.bit_width());
  v.SetBits(0, std::min<size_t>(64, v.bit_width()), value);
  it->second = std::move(v);
  return OkStatus();
}

void Metadata::Reset() {
  for (auto& [name, value] : fields_) {
    value = mem::BitString(value.bit_width());
  }
}

Metadata Metadata::Standard() {
  Metadata m;
  (void)m.Declare("ingress_port", 9);
  (void)m.Declare("egress_spec", 9);
  (void)m.Declare("drop", 1);
  (void)m.Declare("mark", 1);
  // The base L2/L3 design's user metadata (Fig. 4 stages A-J).
  (void)m.Declare("if_index", 16);
  (void)m.Declare("bd", 16);
  (void)m.Declare("vrf", 16);
  (void)m.Declare("l3", 1);        // 1 = route, 0 = bridge
  (void)m.Declare("nexthop", 16);
  return m;
}

std::vector<std::string> Metadata::FieldNames() const {
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const auto& [name, value] : fields_) out.push_back(name);
  return out;
}

}  // namespace ipsa::arch
