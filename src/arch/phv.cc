#include "arch/phv.h"

#include <algorithm>

namespace ipsa::arch {

const HeaderInstance* Phv::Find(std::string_view name) const {
  for (const auto& h : instances_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

HeaderInstance* Phv::FindMutable(std::string_view name) {
  for (auto& h : instances_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void Phv::ShiftOffsets(uint32_t from_offset, int32_t delta) {
  for (auto& h : instances_) {
    if (h.byte_offset >= from_offset) {
      h.byte_offset = static_cast<uint32_t>(
          static_cast<int64_t>(h.byte_offset) + delta);
    }
  }
}

Status Phv::RemoveInstance(std::string_view name) {
  for (auto it = instances_.begin(); it != instances_.end(); ++it) {
    if (it->name == name) {
      instances_.erase(it);
      ++generation_;
      return OkStatus();
    }
  }
  return NotFound("PHV has no instance '" + std::string(name) + "'");
}

Status Metadata::Declare(const std::string& name, uint32_t width_bits) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    if (values_[static_cast<size_t>(it->second)].bit_width() != width_bits) {
      return AlreadyExists("metadata field '" + name +
                           "' redeclared with different width");
    }
    return OkStatus();
  }
  int slot = static_cast<int>(values_.size());
  values_.emplace_back(width_bits);
  names_.push_back(name);
  index_.emplace(name, slot);
  if (name == "drop") {
    drop_slot_ = slot;
  } else if (name == "mark") {
    mark_slot_ = slot;
  } else if (name == "egress_spec") {
    egress_spec_slot_ = slot;
  }
  return OkStatus();
}

uint32_t Metadata::WidthOf(std::string_view name) const {
  int slot = SlotOf(name);
  return slot == kInvalidSlot
             ? 0
             : static_cast<uint32_t>(
                   values_[static_cast<size_t>(slot)].bit_width());
}

Result<mem::BitString> Metadata::Read(std::string_view name) const {
  int slot = SlotOf(name);
  if (slot == kInvalidSlot) {
    return NotFound("metadata field '" + std::string(name) + "' not declared");
  }
  return values_[static_cast<size_t>(slot)];
}

Status Metadata::Write(std::string_view name, const mem::BitString& value) {
  int slot = SlotOf(name);
  if (slot == kInvalidSlot) {
    return NotFound("metadata field '" + std::string(name) + "' not declared");
  }
  SlotWrite(slot, value);
  return OkStatus();
}

uint64_t Metadata::ReadUint(std::string_view name) const {
  int slot = SlotOf(name);
  return slot == kInvalidSlot ? 0 : SlotReadUint(slot);
}

Status Metadata::WriteUint(std::string_view name, uint64_t value) {
  int slot = SlotOf(name);
  if (slot == kInvalidSlot) {
    return NotFound("metadata field '" + std::string(name) + "' not declared");
  }
  SlotWriteUint(slot, value);
  return OkStatus();
}

void Metadata::SlotWriteUint(int slot, uint64_t value) {
  mem::BitString& v = values_[static_cast<size_t>(slot)];
  v.Zero();
  v.SetBits(0, std::min<size_t>(64, v.bit_width()), value);
}

void Metadata::Reset() {
  for (auto& value : values_) value.Zero();
}

void Metadata::CopyValuesFrom(const Metadata& other) {
  for (size_t i = 0; i < values_.size(); ++i) {
    values_[i].Assign(other.values_[i]);
  }
}

Metadata Metadata::Standard() {
  Metadata m;
  (void)m.Declare("ingress_port", 9);
  (void)m.Declare("egress_spec", 9);
  (void)m.Declare("drop", 1);
  (void)m.Declare("mark", 1);
  // The base L2/L3 design's user metadata (Fig. 4 stages A-J).
  (void)m.Declare("if_index", 16);
  (void)m.Declare("bd", 16);
  (void)m.Declare("vrf", 16);
  (void)m.Declare("l3", 1);        // 1 = route, 0 = bridge
  (void)m.Declare("nexthop", 16);
  return m;
}

std::vector<std::string> Metadata::FieldNames() const {
  std::vector<std::string> out(names_.begin(), names_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ipsa::arch
