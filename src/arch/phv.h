// Parsed-header vector (PHV) and metadata.
//
// The PHV records which header instances have been located in the packet,
// at what byte offset and size. In IPSA it is *accumulated* across stages —
// a stage parses only what it needs and later stages reuse the result
// (paper §2.1, "parsed headers are passed to later pipeline stages to avoid
// unnecessary re-parsing"). In PISA the front parser fills it completely
// before the pipeline.
//
// Metadata is a bag of named BitString fields: user metadata comes from the
// rP4 <struct_def>s, standard metadata (ingress_port, egress_spec, drop,
// mark, ...) is predeclared.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/block.h"
#include "util/hash.h"
#include "util/status.h"

namespace ipsa::arch {

class HeaderTypeDef;

struct HeaderInstance {
  std::string type_name;   // header type in the registry
  std::string name;        // instance name (== type name in our programs)
  uint32_t byte_offset = 0;
  uint32_t size_bytes = 0;
  bool valid = false;
  // Type definition resolved when the instance was created, so the parse
  // chain never re-hashes type_name. May be null (e.g. pushed instances);
  // consumers fall back to a registry lookup. Valid for the lifetime of the
  // packet: registry mutations happen between packets and bump the config
  // epoch, and the PHV is per-packet state.
  const HeaderTypeDef* def = nullptr;
};

class Phv {
 public:
  void Clear() {
    instances_.clear();
    ++generation_;
  }

  // Appends a parsed instance (parse order == wire order).
  void Add(HeaderInstance instance) {
    instances_.push_back(std::move(instance));
    ++generation_;
  }

  // Bumped whenever the instance list changes (add/remove/clear), so
  // resolved name->index entries can be cached and revalidated cheaply
  // (PacketContext::FindInstanceFast).
  uint32_t generation() const { return generation_; }

  const HeaderInstance* Find(std::string_view name) const;
  HeaderInstance* FindMutable(std::string_view name);
  bool IsValid(std::string_view name) const {
    const HeaderInstance* h = Find(name);
    return h != nullptr && h->valid;
  }

  const std::vector<HeaderInstance>& instances() const { return instances_; }

  // Last instance in wire order (where parsing resumes from).
  const HeaderInstance* Last() const {
    return instances_.empty() ? nullptr : &instances_.back();
  }

  // Shifts the byte offsets of every instance at or beyond `from_offset` by
  // `delta` (after header insertion/removal in the packet).
  void ShiftOffsets(uint32_t from_offset, int32_t delta);

  // Drops an instance (header removed from the packet).
  Status RemoveInstance(std::string_view name);

 private:
  std::vector<HeaderInstance> instances_;
  uint32_t generation_ = 0;
};

// Named metadata fields with declared widths.
//
// Values live in a slot vector; the name index maps to a slot. Slots are
// append-only, so a slot resolved once (e.g. by the compiled stage) stays
// valid as long as no field is declared out from under it — callers guard
// with the device config epoch. All name-based accessors probe the index
// transparently (no std::string temporaries).
class Metadata {
 public:
  static constexpr int kInvalidSlot = -1;

  // Declares a field (idempotent if same width).
  Status Declare(const std::string& name, uint32_t width_bits);
  bool Has(std::string_view name) const {
    return index_.find(name) != index_.end();
  }
  uint32_t WidthOf(std::string_view name) const;

  Result<mem::BitString> Read(std::string_view name) const;
  Status Write(std::string_view name, const mem::BitString& value);
  // Convenience for narrow fields.
  uint64_t ReadUint(std::string_view name) const;
  Status WriteUint(std::string_view name, uint64_t value);

  // Slot interface: resolve the name once, then access with no hashing.
  int SlotOf(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kInvalidSlot : it->second;
  }
  // The verdict fields every pipeline consults per packet, cached at
  // declaration time so dropped()/marked()/egress_spec() never hash.
  int drop_slot() const { return drop_slot_; }
  int mark_slot() const { return mark_slot_; }
  int egress_spec_slot() const { return egress_spec_slot_; }
  size_t slot_count() const { return values_.size(); }
  const mem::BitString& SlotRead(int slot) const {
    return values_[static_cast<size_t>(slot)];
  }
  void SlotWrite(int slot, const mem::BitString& value) {
    values_[static_cast<size_t>(slot)].Assign(value);
  }
  uint64_t SlotReadUint(int slot) const {
    return values_[static_cast<size_t>(slot)].ToUint64();
  }
  void SlotWriteUint(int slot, uint64_t value);

  void Reset();  // zeroes all fields in place, keeps declarations

  // Copies every slot value from `other` in place (no allocation). Both
  // objects must have been built by the same declaration sequence.
  void CopyValuesFrom(const Metadata& other);

  // The standard metadata every packet context carries.
  static Metadata Standard();

  // Sorted, for deterministic enumeration.
  std::vector<std::string> FieldNames() const;

 private:
  std::vector<mem::BitString> values_;  // slot -> value
  std::vector<std::string> names_;      // slot -> name
  int drop_slot_ = kInvalidSlot;
  int mark_slot_ = kInvalidSlot;
  int egress_spec_slot_ = kInvalidSlot;
  std::unordered_map<std::string, int, util::StringHash, std::equal_to<>>
      index_;
};

}  // namespace ipsa::arch
