// Parsed-header vector (PHV) and metadata.
//
// The PHV records which header instances have been located in the packet,
// at what byte offset and size. In IPSA it is *accumulated* across stages —
// a stage parses only what it needs and later stages reuse the result
// (paper §2.1, "parsed headers are passed to later pipeline stages to avoid
// unnecessary re-parsing"). In PISA the front parser fills it completely
// before the pipeline.
//
// Metadata is a bag of named BitString fields: user metadata comes from the
// rP4 <struct_def>s, standard metadata (ingress_port, egress_spec, drop,
// mark, ...) is predeclared.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mem/block.h"
#include "util/status.h"

namespace ipsa::arch {

struct HeaderInstance {
  std::string type_name;   // header type in the registry
  std::string name;        // instance name (== type name in our programs)
  uint32_t byte_offset = 0;
  uint32_t size_bytes = 0;
  bool valid = false;
};

class Phv {
 public:
  void Clear() { instances_.clear(); }

  // Appends a parsed instance (parse order == wire order).
  void Add(HeaderInstance instance) {
    instances_.push_back(std::move(instance));
  }

  const HeaderInstance* Find(std::string_view name) const;
  HeaderInstance* FindMutable(std::string_view name);
  bool IsValid(std::string_view name) const {
    const HeaderInstance* h = Find(name);
    return h != nullptr && h->valid;
  }

  const std::vector<HeaderInstance>& instances() const { return instances_; }

  // Last instance in wire order (where parsing resumes from).
  const HeaderInstance* Last() const {
    return instances_.empty() ? nullptr : &instances_.back();
  }

  // Shifts the byte offsets of every instance at or beyond `from_offset` by
  // `delta` (after header insertion/removal in the packet).
  void ShiftOffsets(uint32_t from_offset, int32_t delta);

  // Drops an instance (header removed from the packet).
  Status RemoveInstance(std::string_view name);

 private:
  std::vector<HeaderInstance> instances_;
};

// Named metadata fields with declared widths.
class Metadata {
 public:
  // Declares a field (idempotent if same width).
  Status Declare(const std::string& name, uint32_t width_bits);
  bool Has(std::string_view name) const {
    return fields_.count(std::string(name)) > 0;
  }
  uint32_t WidthOf(std::string_view name) const;

  Result<mem::BitString> Read(std::string_view name) const;
  Status Write(std::string_view name, const mem::BitString& value);
  // Convenience for narrow fields.
  uint64_t ReadUint(std::string_view name) const;
  Status WriteUint(std::string_view name, uint64_t value);

  void Reset();  // zeroes all fields, keeps declarations

  // The standard metadata every packet context carries.
  static Metadata Standard();

  std::vector<std::string> FieldNames() const;

 private:
  std::map<std::string, mem::BitString> fields_;
};

}  // namespace ipsa::arch
