// Compiled fast path for StagePrograms.
//
// A StageProgram is pure data: every table, action, header field and
// metadata field is referenced by name, and the interpreter (RunStage)
// resolves those names per packet. CompileStage resolves them ONCE — at
// template-write / design-load time, mirroring how a real TSP's template
// download binds table pointers and action primitives into hardware — so the
// per-packet path does no string hashing and no map lookups:
//
//   * table names        -> table::MatchTable* + a key-extraction plan
//   * action names       -> const ActionDef* + a compiled op list
//   * metadata fields    -> interned slot indices (Metadata::SlotOf)
//   * header fields      -> (instance, bit offset, width) triples
//   * action parameters  -> bit ranges within the entry's action_data
//
// RunCompiledStage charges exactly the cycles RunStage charges and produces
// bit-identical results; the fastpath regression tests assert this.
//
// Compiled state dangles when the device mutates (a table destroyed, an
// action replaced, a header relinked): the owning switch tracks a config
// epoch, bumps it on every CCM mutation, and lazily recompiles before the
// next packet. CompileStage fails cleanly when a reference cannot be
// resolved; the caller then falls back to the interpreter for that stage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/catalog.h"
#include "arch/stage.h"
#include "table/table.h"

namespace ipsa::arch {

// A FieldRef resolved to its physical location. Header instances are still
// found by name in the PHV (a linear scan over the few parsed headers — the
// instance's byte offset is per-packet state), but the field's bit range
// within the header is fixed here.
struct CompiledField {
  bool is_meta = false;
  int meta_slot = -1;       // metadata slot (is_meta)
  std::string instance;     // header instance name (!is_meta)
  uint32_t offset_bits = 0; // bit offset within the header (!is_meta)
  uint32_t width_bits = 0;
};

struct CompiledExpr;
using CompiledExprPtr = std::unique_ptr<CompiledExpr>;

// An Expr with every name reference resolved. Same node kinds and operator
// semantics as Expr (the operator kernels are shared, see expr.h).
struct CompiledExpr {
  Expr::Kind kind = Expr::Kind::kConst;
  Expr::Op op = Expr::Op::kNone;
  mem::BitString constant;    // kConst
  CompiledField field;        // kField
  std::string name;           // kRaw / kIsValid instance, kRegister array
  uint32_t raw_width = 0;     // kRaw
  uint32_t param_offset = 0;  // kParam: bit range within action_data
  uint32_t param_width = 0;
  CompiledExprPtr lhs;        // kRaw offset / kRegister index / operands
  CompiledExprPtr rhs;
  // True when some node in this subtree can produce a value wider than 64
  // bits, which forces the BitString evaluator. Set once at compile time;
  // narrow subtrees (the common case: every field, constant and parameter
  // in the example designs) run on the scalar lane, which evaluates on
  // masked (uint64, width) pairs and creates no BitString temporaries.
  bool wide = false;
};

// An ActionOp with destinations and operands resolved.
struct CompiledOp {
  ActionOp::Kind kind = ActionOp::Kind::kNoop;
  CompiledField dest;            // kAssign / kDrop / kMark / kForward /
                                 // kUpdateChecksum (the written field)
  std::string instance;          // kAssignRaw/kPush/kPop/kUpdateChecksum
  std::string after_instance;    // kPushHeader
  std::string reg;               // kRegWrite
  uint32_t raw_width = 0;        // kAssignRaw
  uint32_t push_fixed_size = 0;  // kPushHeader: the type's fixed byte size
  CompiledExprPtr value;         // kAssign/kAssignRaw/kForward/kRegWrite
  CompiledExprPtr offset;        // kAssignRaw
  CompiledExprPtr index;         // kRegWrite
  CompiledExprPtr cond;          // kIf
  CompiledExprPtr push_size;     // kPushHeader size override
  std::vector<CompiledOp> then_ops;
  std::vector<CompiledOp> else_ops;
};

struct CompiledAction {
  const ActionDef* def = nullptr;  // stats/trace names
  std::vector<CompiledOp> body;
};

// One slice of a rule's fused key-extraction plan. Key fields concatenate
// low-bits-first (like TableCatalog::BuildKey); a segment copies one
// contiguous run of wire (or metadata) bits into key bits
// [dest_bits, dest_bits + width_bits). Header instances are deduplicated
// into CompiledRule::key_instances so a lookup resolves each instance in
// the PHV exactly once, no matter how many fields it contributes, and
// wire-contiguous fields of one instance collapse into a single segment.
struct KeySegment {
  bool is_meta = false;
  int meta_slot = -1;         // metadata slot (is_meta)
  uint32_t instance = 0;      // index into key_instances (!is_meta)
  uint32_t offset_bits = 0;   // bit offset within the header (!is_meta)
  uint32_t width_bits = 0;
  uint32_t dest_bits = 0;     // low-bit position within the key
};

struct CompiledRule {
  CompiledExprPtr guard;           // null = unconditional
  bool has_table = false;          // false = explicit "no table" branch
  table::MatchTable* table = nullptr;
  std::vector<std::string> key_instances;  // unique instances, first-use order
  std::vector<KeySegment> key;     // fused extraction plan
  uint32_t key_width_bits = 0;
};

struct CompiledStage {
  const StageProgram* source = nullptr;  // parse_set + trace names
  std::vector<CompiledRule> rules;
  std::vector<uint32_t> branch_tags;           // sorted ascending
  std::vector<CompiledAction> branch_actions;  // parallel to branch_tags
  CompiledAction miss;
  // True when any guard or reachable action body touches the register file;
  // the parallel executor serialises such pipelines to stay deterministic.
  bool uses_registers = false;
};

// Resolves `stage` against the device stores. `stage` must outlive the
// result (the compiled stage keeps pointers into it). Fails when any
// referenced table/action/header/metadata field cannot be resolved; the
// caller should then fall back to RunStage for this stage.
Result<CompiledStage> CompileStage(const StageProgram& stage,
                                   const TableCatalog& catalog,
                                   const ActionStore& actions,
                                   const HeaderRegistry& registry,
                                   const Metadata& metadata_proto);

// Executes a compiled stage. Semantics and cycle accounting are identical
// to RunStage on the source program. `fill_names` controls whether the
// stats' applied_table / executed_action strings are populated (they
// allocate; pass true only when tracing).
Result<StageRunStats> RunCompiledStage(const CompiledStage& stage,
                                       PacketContext& ctx, RegisterFile* regs,
                                       bool jit_parse, bool fill_names);

// Conservative register-usage scan of an uncompiled program (used when
// compilation fails and the interpreter fallback must still be classified
// for the parallel executor). Actions missing from the store count as using
// registers.
bool StageMayUseRegisters(const StageProgram& stage, const ActionStore& actions);

// Debug-only fault injection for the differential fuzzing harness
// (tools/rp4fuzz --inject-fault): while enabled, CompileStage perturbs the
// first assignment/forward it compiles (+1 on the written value), so compiled
// configurations diverge from the interpreter on purpose. Proves the harness
// actually detects, shrinks and replays a real divergence. Never enable
// outside tests.
void SetCompiledStageFault(bool enabled);
bool CompiledStageFaultEnabled();

}  // namespace ipsa::arch
