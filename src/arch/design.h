// A complete data-plane design: the unit the compilers emit and devices load.
//
// For the PISA flow this is the monolithic "binary" — any change means
// regenerating and reloading the whole thing (and repopulating tables).
// For the IPSA flow rp4bc emits a DesignConfig for the base design once, and
// afterwards only *deltas*: new TSP templates, new tables, header linkage
// and selector changes. That asymmetry is exactly what Table 1 measures.
#pragma once

#include <string>
#include <vector>

#include "arch/catalog.h"
#include "arch/header_types.h"
#include "arch/stage.h"
#include "table/table.h"
#include "util/json.h"
#include "util/status.h"

namespace ipsa::arch {

struct TableDecl {
  table::TableSpec spec;
  TableBinding binding;
};

struct RegisterDecl {
  std::string name;
  uint32_t size = 0;
};

struct MetadataDecl {
  std::string name;
  uint32_t width_bits = 0;
};

struct DesignConfig {
  std::string name;
  HeaderRegistry headers;
  std::vector<MetadataDecl> metadata;
  std::vector<ActionDef> actions;
  std::vector<TableDecl> tables;
  std::vector<RegisterDecl> registers;
  std::vector<StageProgram> ingress_stages;
  std::vector<StageProgram> egress_stages;

  // Serialization (the interchange format between compilers, controller and
  // devices; see serde.cc for the schema).
  util::Json ToJson() const;
  static Result<DesignConfig> FromJson(const util::Json& json);

  // Config volume in 32-bit words for device-load accounting: headers,
  // actions, table shapes and stage templates all have to be written to the
  // device on a full load.
  uint64_t TotalConfigWords() const;

  const StageProgram* FindStage(std::string_view name) const;
  std::vector<std::string> StageNames() const;
};

// Piecewise serde used by both DesignConfig and the rp4bc template output.
util::Json ExprToJson(const ExprPtr& expr);
Result<ExprPtr> ExprFromJson(const util::Json& json);
util::Json ActionOpToJson(const ActionOp& op);
Result<ActionOp> ActionOpFromJson(const util::Json& json);
util::Json ActionDefToJson(const ActionDef& def);
Result<ActionDef> ActionDefFromJson(const util::Json& json);
util::Json StageProgramToJson(const StageProgram& stage);
Result<StageProgram> StageProgramFromJson(const util::Json& json);
util::Json HeaderTypeToJson(const HeaderTypeDef& def);
Result<HeaderTypeDef> HeaderTypeFromJson(const util::Json& json);
util::Json TableDeclToJson(const TableDecl& decl);
Result<TableDecl> TableDeclFromJson(const util::Json& json);
util::Json FieldRefToJson(const FieldRef& ref);
Result<FieldRef> FieldRefFromJson(const util::Json& json);

}  // namespace ipsa::arch
