// JSON (de)serialization for designs, stage templates, actions, and
// expressions — the interchange format between p4lite/rp4fc/rp4bc, the
// controller, and the two behavioral devices.
#include <cctype>

#include "arch/design.h"
#include "util/strings.h"

namespace ipsa::arch {

namespace {

using util::Json;
using util::JsonArray;

Json BitStringToJson(const mem::BitString& v) {
  Json j = Json::Object();
  j["width"] = v.bit_width();
  j["hex"] = v.ToHex();
  return j;
}

Result<mem::BitString> BitStringFromJson(const Json& j) {
  if (!j.is_object()) return InvalidArgument("bitstring: expected object");
  size_t width = static_cast<size_t>(j.GetInt("width"));
  std::string hex = j.GetString("hex", "0x0");
  if (util::StartsWith(hex, "0x") || util::StartsWith(hex, "0X")) {
    hex = hex.substr(2);
  }
  mem::BitString out(width);
  // Hex digits are most-significant-first.
  size_t nibble_count = hex.size();
  for (size_t i = 0; i < nibble_count; ++i) {
    char c = hex[nibble_count - 1 - i];  // LSB-first processing
    uint8_t v;
    if (c >= '0' && c <= '9') {
      v = static_cast<uint8_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<uint8_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<uint8_t>(c - 'A' + 10);
    } else {
      return InvalidArgument("bitstring: bad hex digit");
    }
    for (int b = 0; b < 4; ++b) {
      size_t bit = i * 4 + static_cast<size_t>(b);
      if (bit < width && ((v >> b) & 1)) out.SetBit(bit, true);
    }
  }
  return out;
}

struct OpNamePair {
  Expr::Op op;
  std::string_view name;
  bool unary;
};

constexpr OpNamePair kOps[] = {
    {Expr::Op::kNot, "!", true},      {Expr::Op::kBitNot, "~", true},
    {Expr::Op::kEq, "==", false},     {Expr::Op::kNe, "!=", false},
    {Expr::Op::kLt, "<", false},      {Expr::Op::kLe, "<=", false},
    {Expr::Op::kGt, ">", false},      {Expr::Op::kGe, ">=", false},
    {Expr::Op::kAnd, "&&", false},    {Expr::Op::kOr, "||", false},
    {Expr::Op::kAdd, "+", false},     {Expr::Op::kSub, "-", false},
    {Expr::Op::kMul, "*", false},     {Expr::Op::kBitAnd, "&", false},
    {Expr::Op::kBitOr, "|", false},   {Expr::Op::kBitXor, "^", false},
    {Expr::Op::kShl, "<<", false},    {Expr::Op::kShr, ">>", false},
    {Expr::Op::kSatAdd, "sat_add", false},
    {Expr::Op::kFxpQuantize, "fxp_quantize", false},
    {Expr::Op::kFxpDequantize, "fxp_dequantize", false},
};

Result<OpNamePair> OpFromName(std::string_view name) {
  for (const auto& p : kOps) {
    if (p.name == name) return p;
  }
  return InvalidArgument("unknown operator '" + std::string(name) + "'");
}

}  // namespace

Json FieldRefToJson(const FieldRef& ref) { return Json(ref.ToString()); }

Result<FieldRef> FieldRefFromJson(const Json& json) {
  if (!json.is_string()) return InvalidArgument("field ref: expected string");
  const std::string& s = json.as_string();
  size_t dot = s.find('.');
  if (dot == std::string::npos) {
    return InvalidArgument("field ref '" + s + "': missing '.'");
  }
  std::string scope = s.substr(0, dot);
  std::string field = s.substr(dot + 1);
  if (scope == "meta") return FieldRef::Meta(field);
  return FieldRef::Header(scope, field);
}

Json ExprToJson(const ExprPtr& expr) {
  if (expr == nullptr) return Json(nullptr);
  Json j = Json::Object();
  switch (expr->kind()) {
    case Expr::Kind::kConst:
      j["const"] = BitStringToJson(expr->constant());
      break;
    case Expr::Kind::kField:
      j["field"] = FieldRefToJson(expr->field());
      break;
    case Expr::Kind::kRaw:
      j["raw"] = expr->name();
      j["offset"] = ExprToJson(expr->lhs());
      j["width"] = expr->raw_width();
      break;
    case Expr::Kind::kParam:
      j["param"] = expr->name();
      break;
    case Expr::Kind::kRegister:
      j["reg"] = expr->name();
      j["index"] = ExprToJson(expr->lhs());
      break;
    case Expr::Kind::kIsValid:
      j["valid"] = expr->name();
      break;
    case Expr::Kind::kUnary: {
      j["op"] = std::string(OpName(expr->op()));
      Json args = Json::Array();
      args.push_back(ExprToJson(expr->lhs()));
      j["args"] = std::move(args);
      break;
    }
    case Expr::Kind::kBinary: {
      j["op"] = std::string(OpName(expr->op()));
      Json args = Json::Array();
      args.push_back(ExprToJson(expr->lhs()));
      args.push_back(ExprToJson(expr->rhs()));
      j["args"] = std::move(args);
      break;
    }
  }
  return j;
}

Result<ExprPtr> ExprFromJson(const Json& json) {
  if (json.is_null()) return ExprPtr(nullptr);
  if (!json.is_object()) return InvalidArgument("expr: expected object");
  if (const Json* c = json.Find("const")) {
    IPSA_ASSIGN_OR_RETURN(mem::BitString v, BitStringFromJson(*c));
    return Expr::Const(std::move(v));
  }
  if (const Json* f = json.Find("field")) {
    IPSA_ASSIGN_OR_RETURN(FieldRef ref, FieldRefFromJson(*f));
    return Expr::Field(std::move(ref));
  }
  if (const Json* r = json.Find("raw")) {
    const Json* off = json.Find("offset");
    if (off == nullptr) return InvalidArgument("raw expr: missing offset");
    IPSA_ASSIGN_OR_RETURN(ExprPtr offset, ExprFromJson(*off));
    uint32_t width = static_cast<uint32_t>(json.GetInt("width", 8));
    return Expr::Raw(r->as_string(), std::move(offset), width);
  }
  if (const Json* p = json.Find("param")) {
    return Expr::Param(p->as_string());
  }
  if (const Json* r = json.Find("reg")) {
    const Json* idx = json.Find("index");
    if (idx == nullptr) return InvalidArgument("reg expr: missing index");
    IPSA_ASSIGN_OR_RETURN(ExprPtr index, ExprFromJson(*idx));
    return Expr::Register(r->as_string(), std::move(index));
  }
  if (const Json* v = json.Find("valid")) {
    return Expr::IsValid(v->as_string());
  }
  if (const Json* op = json.Find("op")) {
    IPSA_ASSIGN_OR_RETURN(OpNamePair pair, OpFromName(op->as_string()));
    const Json* args = json.Find("args");
    if (args == nullptr || !args->is_array()) {
      return InvalidArgument("operator expr: missing args");
    }
    const JsonArray& arr = args->as_array();
    if (pair.unary) {
      if (arr.size() != 1) return InvalidArgument("unary op needs 1 arg");
      IPSA_ASSIGN_OR_RETURN(ExprPtr a, ExprFromJson(arr[0]));
      return Expr::Unary(pair.op, std::move(a));
    }
    if (arr.size() != 2) return InvalidArgument("binary op needs 2 args");
    IPSA_ASSIGN_OR_RETURN(ExprPtr a, ExprFromJson(arr[0]));
    IPSA_ASSIGN_OR_RETURN(ExprPtr b, ExprFromJson(arr[1]));
    return Expr::Binary(pair.op, std::move(a), std::move(b));
  }
  return InvalidArgument("expr: unrecognized form");
}

Json ActionOpToJson(const ActionOp& op) {
  Json j = Json::Object();
  switch (op.kind) {
    case ActionOp::Kind::kNoop:
      j["op"] = "noop";
      break;
    case ActionOp::Kind::kAssign:
      j["op"] = "assign";
      j["dest"] = FieldRefToJson(op.dest);
      j["value"] = ExprToJson(op.value);
      break;
    case ActionOp::Kind::kAssignRaw:
      j["op"] = "assign_raw";
      j["instance"] = op.instance;
      j["offset"] = ExprToJson(op.raw_offset);
      j["width"] = op.raw_width;
      j["value"] = ExprToJson(op.value);
      break;
    case ActionOp::Kind::kPushHeader:
      j["op"] = "push_header";
      j["header"] = op.instance;
      j["after"] = op.after_instance;
      if (op.push_size_bytes != nullptr) {
        j["size"] = ExprToJson(op.push_size_bytes);
      }
      break;
    case ActionOp::Kind::kPopHeader:
      j["op"] = "pop_header";
      j["header"] = op.instance;
      break;
    case ActionOp::Kind::kDrop:
      j["op"] = "drop";
      break;
    case ActionOp::Kind::kMark:
      j["op"] = "mark";
      break;
    case ActionOp::Kind::kForward:
      j["op"] = "forward";
      j["value"] = ExprToJson(op.value);
      break;
    case ActionOp::Kind::kRegWrite:
      j["op"] = "reg_write";
      j["reg"] = op.reg;
      j["index"] = ExprToJson(op.index);
      j["value"] = ExprToJson(op.value);
      break;
    case ActionOp::Kind::kUpdateChecksum:
      j["op"] = "update_checksum";
      j["header"] = op.instance;
      j["field"] = op.checksum_field;
      break;
    case ActionOp::Kind::kIf: {
      j["op"] = "if";
      j["cond"] = ExprToJson(op.cond);
      Json then_arr = Json::Array();
      for (const auto& o : op.then_ops) then_arr.push_back(ActionOpToJson(o));
      j["then"] = std::move(then_arr);
      Json else_arr = Json::Array();
      for (const auto& o : op.else_ops) else_arr.push_back(ActionOpToJson(o));
      j["else"] = std::move(else_arr);
      break;
    }
  }
  return j;
}

namespace {

Result<std::vector<ActionOp>> OpsFromJson(const Json& arr) {
  if (!arr.is_array()) return InvalidArgument("ops: expected array");
  std::vector<ActionOp> out;
  out.reserve(arr.as_array().size());
  for (const Json& j : arr.as_array()) {
    IPSA_ASSIGN_OR_RETURN(ActionOp op, ActionOpFromJson(j));
    out.push_back(std::move(op));
  }
  return out;
}

}  // namespace

Result<ActionOp> ActionOpFromJson(const Json& json) {
  if (!json.is_object()) return InvalidArgument("action op: expected object");
  std::string kind = json.GetString("op");
  if (kind == "noop") return ActionOp::Noop();
  if (kind == "assign") {
    const Json* dest = json.Find("dest");
    const Json* value = json.Find("value");
    if (dest == nullptr || value == nullptr) {
      return InvalidArgument("assign: missing dest/value");
    }
    IPSA_ASSIGN_OR_RETURN(FieldRef ref, FieldRefFromJson(*dest));
    IPSA_ASSIGN_OR_RETURN(ExprPtr v, ExprFromJson(*value));
    return ActionOp::Assign(std::move(ref), std::move(v));
  }
  if (kind == "assign_raw") {
    const Json* off = json.Find("offset");
    const Json* value = json.Find("value");
    if (off == nullptr || value == nullptr) {
      return InvalidArgument("assign_raw: missing offset/value");
    }
    IPSA_ASSIGN_OR_RETURN(ExprPtr offset, ExprFromJson(*off));
    IPSA_ASSIGN_OR_RETURN(ExprPtr v, ExprFromJson(*value));
    return ActionOp::AssignRaw(json.GetString("instance"), std::move(offset),
                               static_cast<uint32_t>(json.GetInt("width")),
                               std::move(v));
  }
  if (kind == "push_header") {
    ExprPtr size;
    if (const Json* s = json.Find("size"); s != nullptr && !s->is_null()) {
      IPSA_ASSIGN_OR_RETURN(size, ExprFromJson(*s));
    }
    return ActionOp::PushHeader(json.GetString("header"),
                                json.GetString("after"), std::move(size));
  }
  if (kind == "pop_header") {
    return ActionOp::PopHeader(json.GetString("header"));
  }
  if (kind == "drop") return ActionOp::Drop();
  if (kind == "mark") return ActionOp::Mark();
  if (kind == "forward") {
    const Json* value = json.Find("value");
    if (value == nullptr) return InvalidArgument("forward: missing value");
    IPSA_ASSIGN_OR_RETURN(ExprPtr v, ExprFromJson(*value));
    return ActionOp::Forward(std::move(v));
  }
  if (kind == "reg_write") {
    const Json* idx = json.Find("index");
    const Json* value = json.Find("value");
    if (idx == nullptr || value == nullptr) {
      return InvalidArgument("reg_write: missing index/value");
    }
    IPSA_ASSIGN_OR_RETURN(ExprPtr i, ExprFromJson(*idx));
    IPSA_ASSIGN_OR_RETURN(ExprPtr v, ExprFromJson(*value));
    return ActionOp::RegWrite(json.GetString("reg"), std::move(i),
                              std::move(v));
  }
  if (kind == "update_checksum") {
    return ActionOp::UpdateChecksum(json.GetString("header"),
                                    json.GetString("field", "hdr_checksum"));
  }
  if (kind == "if") {
    const Json* cond = json.Find("cond");
    if (cond == nullptr) return InvalidArgument("if: missing cond");
    IPSA_ASSIGN_OR_RETURN(ExprPtr c, ExprFromJson(*cond));
    std::vector<ActionOp> then_ops, else_ops;
    if (const Json* t = json.Find("then")) {
      IPSA_ASSIGN_OR_RETURN(then_ops, OpsFromJson(*t));
    }
    if (const Json* e = json.Find("else")) {
      IPSA_ASSIGN_OR_RETURN(else_ops, OpsFromJson(*e));
    }
    return ActionOp::If(std::move(c), std::move(then_ops),
                        std::move(else_ops));
  }
  return InvalidArgument("action op: unknown kind '" + kind + "'");
}

Json ActionDefToJson(const ActionDef& def) {
  Json j = Json::Object();
  j["name"] = def.name;
  Json params = Json::Array();
  for (const auto& p : def.params) {
    Json pj = Json::Object();
    pj["name"] = p.name;
    pj["width"] = p.width_bits;
    params.push_back(std::move(pj));
  }
  j["params"] = std::move(params);
  Json body = Json::Array();
  for (const auto& op : def.body) body.push_back(ActionOpToJson(op));
  j["body"] = std::move(body);
  return j;
}

Result<ActionDef> ActionDefFromJson(const Json& json) {
  if (!json.is_object()) return InvalidArgument("action: expected object");
  ActionDef def;
  def.name = json.GetString("name");
  if (const Json* params = json.Find("params"); params && params->is_array()) {
    for (const Json& pj : params->as_array()) {
      def.params.push_back(ActionParam{
          pj.GetString("name"), static_cast<uint32_t>(pj.GetInt("width"))});
    }
  }
  if (const Json* body = json.Find("body")) {
    IPSA_ASSIGN_OR_RETURN(def.body, OpsFromJson(*body));
  }
  return def;
}

Json StageProgramToJson(const StageProgram& stage) {
  Json j = Json::Object();
  j["name"] = stage.name;
  Json parser = Json::Array();
  for (const auto& h : stage.parse_set) parser.push_back(h);
  j["parser"] = std::move(parser);
  Json matcher = Json::Array();
  for (const auto& rule : stage.matcher) {
    Json rj = Json::Object();
    rj["guard"] = ExprToJson(rule.guard);
    rj["table"] = rule.table;
    matcher.push_back(std::move(rj));
  }
  j["matcher"] = std::move(matcher);
  Json executor = Json::Object();
  for (const auto& [tag, action] : stage.executor) {
    executor[std::to_string(tag)] = action;
  }
  executor["default"] = stage.miss_action;
  j["executor"] = std::move(executor);
  return j;
}

Result<StageProgram> StageProgramFromJson(const Json& json) {
  if (!json.is_object()) return InvalidArgument("stage: expected object");
  StageProgram stage;
  stage.name = json.GetString("name");
  if (const Json* parser = json.Find("parser"); parser && parser->is_array()) {
    for (const Json& h : parser->as_array()) {
      stage.parse_set.push_back(h.as_string());
    }
  }
  if (const Json* matcher = json.Find("matcher");
      matcher && matcher->is_array()) {
    for (const Json& rj : matcher->as_array()) {
      MatchRule rule;
      if (const Json* g = rj.Find("guard"); g != nullptr && !g->is_null()) {
        IPSA_ASSIGN_OR_RETURN(rule.guard, ExprFromJson(*g));
      }
      rule.table = rj.GetString("table");
      stage.matcher.push_back(std::move(rule));
    }
  }
  if (const Json* executor = json.Find("executor");
      executor && executor->is_object()) {
    for (const auto& [key, value] : executor->as_object()) {
      if (key == "default") {
        stage.miss_action = value.as_string();
      } else {
        auto tag = util::ParseUint(key);
        if (!tag) return InvalidArgument("executor: bad tag '" + key + "'");
        stage.executor[static_cast<uint32_t>(*tag)] = value.as_string();
      }
    }
  }
  return stage;
}

Json HeaderTypeToJson(const HeaderTypeDef& def) {
  Json j = Json::Object();
  j["name"] = def.name();
  Json fields = Json::Array();
  for (const auto& f : def.fields()) {
    Json fj = Json::Object();
    fj["name"] = f.name;
    fj["width"] = f.width_bits;
    fields.push_back(std::move(fj));
  }
  j["fields"] = std::move(fields);
  if (def.selector_field().has_value()) {
    j["selector"] = *def.selector_field();
  }
  Json links = Json::Object();
  for (const auto& [tag, next] : def.links()) {
    links[std::to_string(tag)] = next;
  }
  j["links"] = std::move(links);
  if (def.var_size().has_value()) {
    Json vs = Json::Object();
    vs["len_field"] = def.var_size()->len_field;
    vs["add"] = def.var_size()->add;
    vs["multiplier"] = def.var_size()->multiplier;
    j["var_size"] = std::move(vs);
  }
  return j;
}

Result<HeaderTypeDef> HeaderTypeFromJson(const Json& json) {
  if (!json.is_object()) return InvalidArgument("header: expected object");
  std::vector<FieldDef> fields;
  if (const Json* fs = json.Find("fields"); fs && fs->is_array()) {
    for (const Json& fj : fs->as_array()) {
      fields.push_back(FieldDef{fj.GetString("name"),
                                static_cast<uint32_t>(fj.GetInt("width"))});
    }
  }
  HeaderTypeDef def(json.GetString("name"), std::move(fields));
  if (const Json* sel = json.Find("selector"); sel && sel->is_string()) {
    def.SetSelectorField(sel->as_string());
  }
  if (const Json* links = json.Find("links"); links && links->is_object()) {
    for (const auto& [tag, next] : links->as_object()) {
      auto t = util::ParseUint(tag);
      if (!t) return InvalidArgument("header link: bad tag '" + tag + "'");
      def.SetLink(*t, next.as_string());
    }
  }
  if (const Json* vs = json.Find("var_size"); vs && vs->is_object()) {
    def.SetVarSize(VarSizeRule{
        .len_field = vs->GetString("len_field"),
        .add = static_cast<uint32_t>(vs->GetInt("add")),
        .multiplier = static_cast<uint32_t>(vs->GetInt("multiplier", 1))});
  }
  return def;
}

Json TableDeclToJson(const TableDecl& decl) {
  Json j = Json::Object();
  j["name"] = decl.spec.name;
  j["match"] = std::string(table::MatchKindName(decl.spec.match_kind));
  j["key_width"] = decl.spec.key_width_bits;
  j["action_data_width"] = decl.spec.action_data_width_bits;
  j["size"] = decl.spec.size;
  j["default_action_id"] = decl.spec.default_action_id;
  if (decl.spec.default_action_data.bit_width() > 0) {
    j["default_action_data"] = BitStringToJson(decl.spec.default_action_data);
  }
  Json key = Json::Array();
  for (const auto& f : decl.binding.key_fields) {
    key.push_back(FieldRefToJson(f));
  }
  j["key"] = std::move(key);
  return j;
}

Result<TableDecl> TableDeclFromJson(const Json& json) {
  if (!json.is_object()) return InvalidArgument("table: expected object");
  TableDecl decl;
  decl.spec.name = json.GetString("name");
  IPSA_ASSIGN_OR_RETURN(decl.spec.match_kind,
                        table::MatchKindFromName(json.GetString("match")));
  decl.spec.key_width_bits = static_cast<uint32_t>(json.GetInt("key_width"));
  decl.spec.action_data_width_bits =
      static_cast<uint32_t>(json.GetInt("action_data_width"));
  decl.spec.size = static_cast<uint32_t>(json.GetInt("size", 1024));
  decl.spec.default_action_id =
      static_cast<uint32_t>(json.GetInt("default_action_id"));
  if (const Json* d = json.Find("default_action_data")) {
    IPSA_ASSIGN_OR_RETURN(decl.spec.default_action_data,
                          BitStringFromJson(*d));
  }
  if (const Json* key = json.Find("key"); key && key->is_array()) {
    for (const Json& fj : key->as_array()) {
      IPSA_ASSIGN_OR_RETURN(FieldRef ref, FieldRefFromJson(fj));
      decl.binding.key_fields.push_back(std::move(ref));
    }
  }
  return decl;
}

Json DesignConfig::ToJson() const {
  Json j = Json::Object();
  j["name"] = name;
  j["entry_header"] = headers.entry_type();
  Json hdrs = Json::Array();
  for (const auto& type_name : headers.TypeNames()) {
    auto def = headers.Get(type_name);
    if (def.ok()) hdrs.push_back(HeaderTypeToJson(**def));
  }
  j["headers"] = std::move(hdrs);
  Json meta = Json::Array();
  for (const auto& m : metadata) {
    Json mj = Json::Object();
    mj["name"] = m.name;
    mj["width"] = m.width_bits;
    meta.push_back(std::move(mj));
  }
  j["metadata"] = std::move(meta);
  Json acts = Json::Array();
  for (const auto& a : actions) acts.push_back(ActionDefToJson(a));
  j["actions"] = std::move(acts);
  Json tbls = Json::Array();
  for (const auto& t : tables) tbls.push_back(TableDeclToJson(t));
  j["tables"] = std::move(tbls);
  Json regs = Json::Array();
  for (const auto& r : registers) {
    Json rj = Json::Object();
    rj["name"] = r.name;
    rj["size"] = r.size;
    regs.push_back(std::move(rj));
  }
  j["registers"] = std::move(regs);
  Json ing = Json::Array();
  for (const auto& s : ingress_stages) ing.push_back(StageProgramToJson(s));
  j["ingress"] = std::move(ing);
  Json eg = Json::Array();
  for (const auto& s : egress_stages) eg.push_back(StageProgramToJson(s));
  j["egress"] = std::move(eg);
  return j;
}

Result<DesignConfig> DesignConfig::FromJson(const Json& json) {
  if (!json.is_object()) return InvalidArgument("design: expected object");
  DesignConfig d;
  d.name = json.GetString("name");
  if (const Json* hdrs = json.Find("headers"); hdrs && hdrs->is_array()) {
    for (const Json& hj : hdrs->as_array()) {
      IPSA_ASSIGN_OR_RETURN(HeaderTypeDef def, HeaderTypeFromJson(hj));
      IPSA_RETURN_IF_ERROR(d.headers.Add(std::move(def)));
    }
  }
  d.headers.SetEntryType(json.GetString("entry_header", "ethernet"));
  if (const Json* meta = json.Find("metadata"); meta && meta->is_array()) {
    for (const Json& mj : meta->as_array()) {
      d.metadata.push_back(MetadataDecl{
          mj.GetString("name"), static_cast<uint32_t>(mj.GetInt("width"))});
    }
  }
  if (const Json* acts = json.Find("actions"); acts && acts->is_array()) {
    for (const Json& aj : acts->as_array()) {
      IPSA_ASSIGN_OR_RETURN(ActionDef def, ActionDefFromJson(aj));
      d.actions.push_back(std::move(def));
    }
  }
  if (const Json* tbls = json.Find("tables"); tbls && tbls->is_array()) {
    for (const Json& tj : tbls->as_array()) {
      IPSA_ASSIGN_OR_RETURN(TableDecl decl, TableDeclFromJson(tj));
      d.tables.push_back(std::move(decl));
    }
  }
  if (const Json* regs = json.Find("registers"); regs && regs->is_array()) {
    for (const Json& rj : regs->as_array()) {
      d.registers.push_back(RegisterDecl{
          rj.GetString("name"), static_cast<uint32_t>(rj.GetInt("size"))});
    }
  }
  if (const Json* ing = json.Find("ingress"); ing && ing->is_array()) {
    for (const Json& sj : ing->as_array()) {
      IPSA_ASSIGN_OR_RETURN(StageProgram s, StageProgramFromJson(sj));
      d.ingress_stages.push_back(std::move(s));
    }
  }
  if (const Json* eg = json.Find("egress"); eg && eg->is_array()) {
    for (const Json& sj : eg->as_array()) {
      IPSA_ASSIGN_OR_RETURN(StageProgram s, StageProgramFromJson(sj));
      d.egress_stages.push_back(std::move(s));
    }
  }
  return d;
}

uint64_t DesignConfig::TotalConfigWords() const {
  uint64_t words = 4;  // design header
  for (const auto& type_name : headers.TypeNames()) {
    auto def = headers.Get(type_name);
    if (def.ok()) {
      words += 2 + (*def)->fields().size() + (*def)->links().size();
    }
  }
  words += metadata.size();
  for (const auto& a : actions) {
    words += 2 + a.params.size() + a.body.size() * 2;
  }
  words += tables.size() * 4;
  words += registers.size();
  for (const auto& s : ingress_stages) words += s.ConfigWords();
  for (const auto& s : egress_stages) words += s.ConfigWords();
  return words;
}

const StageProgram* DesignConfig::FindStage(std::string_view name) const {
  for (const auto& s : ingress_stages) {
    if (s.name == name) return &s;
  }
  for (const auto& s : egress_stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> DesignConfig::StageNames() const {
  std::vector<std::string> out;
  for (const auto& s : ingress_stages) out.push_back(s.name);
  for (const auto& s : egress_stages) out.push_back(s.name);
  return out;
}

}  // namespace ipsa::arch
