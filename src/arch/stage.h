// The parse-match-action triad of one logical stage.
//
// A StageProgram is the *data* both architectures execute: in IPSA it is a
// TSP template (downloadable at runtime, paper §2.2); in PISA it is the
// configuration of one physical match-action stage. Running a stage:
//
//   1. parser:   ensure every instance in `parse_set` is in the PHV
//                (IPSA parses just-in-time here; PISA parsed up-front).
//   2. matcher:  first rule whose guard holds applies its table; the lookup
//                key comes from the table's binding.
//   3. executor: the hit entry's action_id selects the executor branch
//                (rP4's `<switch_tag>: <switch_actions>`), bound with the
//                entry's action data. On miss the default branch runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arch/catalog.h"
#include "arch/expr.h"
#include "arch/parse_engine.h"
#include "util/status.h"

namespace ipsa::arch {

struct MatchRule {
  ExprPtr guard;      // null = unconditional
  std::string table;  // table to apply when the guard holds
};

struct StageProgram {
  std::string name;
  std::vector<std::string> parse_set;       // header instances needed
  std::vector<MatchRule> matcher;           // evaluated in order
  std::map<uint32_t, std::string> executor; // action_id (tag) -> action name
  std::string miss_action = "NoAction";     // run when no table/rule hits

  // Rough config volume of this template in 32-bit words; the device model
  // charges load time per word (paper: writing a template takes a few
  // clock cycles per word).
  uint32_t ConfigWords() const;
};

struct StageRunStats {
  bool table_applied = false;
  bool hit = false;
  std::string applied_table;
  std::string executed_action;
  uint64_t parse_cycles = 0;
  uint64_t parse_bytes = 0;    // header bytes extracted just-in-time here
  uint64_t match_cycles = 0;   // rule evaluations + memory access
  uint64_t access_cycles = 0;  // memory access alone (1 xbar + bus beats)
  uint64_t action_cycles = 0;
};

// Executes one stage against a packet context. `jit_parse` selects IPSA
// (true: parse parse_set on demand) vs PISA (false: PHV assumed complete).
Result<StageRunStats> RunStage(const StageProgram& stage, PacketContext& ctx,
                               const TableCatalog& catalog,
                               const ActionStore& actions, RegisterFile* regs,
                               bool jit_parse);

}  // namespace ipsa::arch
