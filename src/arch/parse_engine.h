// Generic, descriptor-driven packet parsing.
//
// IPSA mode (`ParseUntil`): just-in-time parsing — a stage requests the
// header instances its matcher/executor needs; parsing resumes from the last
// parsed header and stops as soon as all requested instances are in the PHV
// (paper §2.1). Already-parsed headers are never re-parsed.
//
// PISA mode (`ParseAll`): the standalone front-end parser walks the whole
// parse graph before the pipeline.
#pragma once

#include <string>
#include <vector>

#include "arch/context.h"
#include "util/status.h"

namespace ipsa::arch {

struct ParseStats {
  uint32_t headers_parsed = 0;
  uint64_t bytes_parsed = 0;
  uint64_t cycles = 0;
};

class ParseEngine {
 public:
  // Cycle cost per extracted header (state transition + extract).
  static constexpr uint64_t kCyclesPerHeader = 1;

  // Parses forward until every name in `wanted` is a valid PHV instance, the
  // parse chain ends, or the packet is exhausted. Missing headers are not an
  // error (a v6-only stage simply doesn't fire on a v4 packet).
  static Result<ParseStats> ParseUntil(PacketContext& ctx,
                                       const std::vector<std::string>& wanted);

  // Parses the entire chain (PISA front parser).
  static Result<ParseStats> ParseAll(PacketContext& ctx);

 private:
  // Parses exactly one more header; returns false when the chain ends.
  static Result<bool> ParseNext(PacketContext& ctx, ParseStats& stats);
};

}  // namespace ipsa::arch
