// Generic header type system.
//
// Both switch models parse packets from *descriptors*, not hard-coded code:
// a HeaderTypeDef lists ordered fields (big-endian bit ranges) plus the
// rP4 "implicit parser" linkage — which field selects the next header and
// which tag values map to which successor types (Fig. 2 <parser_def>).
//
// The linkage is mutable at runtime: the controller's
// `link_header --pre IPv6 --next SRH --tag 43` command (Fig. 5c) edits this
// registry on the live device, which is what lets SRv6 be loaded in-situ.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/hash.h"
#include "util/status.h"

namespace ipsa::arch {

struct FieldDef {
  std::string name;
  uint32_t width_bits = 0;
};

// Variable-size rule: size_bytes = (value(len_field) + add) * multiplier.
// E.g. the SRH: (hdr_ext_len + 1) * 8.
struct VarSizeRule {
  std::string len_field;
  uint32_t add = 0;
  uint32_t multiplier = 1;
};

class HeaderTypeDef {
 public:
  // Bit range of one field within the header, MSB-first.
  struct FieldSpan {
    uint32_t offset_bits = 0;
    uint32_t width_bits = 0;
  };

  HeaderTypeDef() = default;
  HeaderTypeDef(std::string name, std::vector<FieldDef> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {
    uint32_t off = 0;
    for (const FieldDef& f : fields_) {
      spans_[f.name] = FieldSpan{off, f.width_bits};
      off += f.width_bits;
    }
    total_bits_ = off;
  }

  const std::string& name() const { return name_; }
  const std::vector<FieldDef>& fields() const { return fields_; }
  uint32_t total_bits() const { return total_bits_; }
  uint32_t fixed_size_bytes() const { return (total_bits_ + 7) / 8; }

  bool HasField(std::string_view field) const {
    return spans_.find(field) != spans_.end();
  }
  // Bit offset of `field` from the start of the header, MSB-first.
  Result<uint32_t> FieldOffsetBits(std::string_view field) const;
  Result<uint32_t> FieldWidthBits(std::string_view field) const;
  // Offset + width in one probe (the per-packet field-access path).
  Result<FieldSpan> FieldSpanOf(std::string_view field) const;

  // Parser linkage.
  void SetSelectorField(std::string field) {
    selector_field_ = std::move(field);
    auto it = spans_.find(*selector_field_);
    selector_span_ =
        it == spans_.end() ? std::nullopt : std::optional(it->second);
  }
  const std::optional<std::string>& selector_field() const {
    return selector_field_;
  }
  // Bit range of the selector field, resolved once at SetSelectorField so
  // the per-packet parse step never hashes the field name. Empty when no
  // selector is set or the named field does not exist.
  const std::optional<FieldSpan>& selector_span() const {
    return selector_span_;
  }
  void SetLink(uint64_t tag, std::string next_header) {
    links_[tag] = std::move(next_header);
  }
  Status RemoveLink(uint64_t tag);
  std::optional<std::string> NextFor(uint64_t tag) const;
  const std::map<uint64_t, std::string>& links() const { return links_; }

  // Variable size.
  void SetVarSize(VarSizeRule rule) {
    var_size_ = std::move(rule);
    auto it = spans_.find(var_size_->len_field);
    var_len_span_ =
        it == spans_.end() ? std::nullopt : std::optional(it->second);
  }
  const std::optional<VarSizeRule>& var_size() const { return var_size_; }
  // Length-field span resolved once at SetVarSize (same contract as
  // selector_span()).
  const std::optional<FieldSpan>& var_len_span() const {
    return var_len_span_;
  }

 private:
  std::string name_;
  std::vector<FieldDef> fields_;
  std::unordered_map<std::string, FieldSpan, util::StringHash,
                     std::equal_to<>>
      spans_;
  uint32_t total_bits_ = 0;
  std::optional<std::string> selector_field_;
  std::optional<FieldSpan> selector_span_;
  std::map<uint64_t, std::string> links_;
  std::optional<VarSizeRule> var_size_;
  std::optional<FieldSpan> var_len_span_;
};

// Registry of header types for one device, plus the parse entry point.
class HeaderRegistry {
 public:
  Status Add(HeaderTypeDef def);
  Status Remove(std::string_view name);
  bool Has(std::string_view name) const {
    return types_.find(name) != types_.end();
  }
  Result<const HeaderTypeDef*> Get(std::string_view name) const;
  Result<HeaderTypeDef*> GetMutable(std::string_view name);

  void SetEntryType(std::string name) { entry_type_ = std::move(name); }
  const std::string& entry_type() const { return entry_type_; }

  // Runtime linkage edits (controller `link_header` / `unlink_header`).
  Status LinkHeader(std::string_view pre, std::string_view next, uint64_t tag);
  Status UnlinkHeader(std::string_view pre, uint64_t tag);

  // Sorted, for deterministic enumeration (serde golden output).
  std::vector<std::string> TypeNames() const;

  // Bumped on any type/linkage mutation; compiled fast paths holding
  // HeaderTypeDef-derived offsets revalidate against this.
  uint64_t version() const { return version_; }

  // Installs Ethernet/VLAN/IPv4/IPv6/TCP/UDP with their standard linkage;
  // the base L2/L3 design and tests start from this. SRH is intentionally
  // NOT pre-installed: loading it at runtime is use case C2.
  static HeaderRegistry StandardL2L3();

  // The SRH type definition used by the SRv6 use case.
  static HeaderTypeDef SrhType();

 private:
  std::unordered_map<std::string, HeaderTypeDef, util::StringHash,
                     std::equal_to<>>
      types_;
  std::string entry_type_ = "ethernet";
  uint64_t version_ = 0;
};

}  // namespace ipsa::arch
