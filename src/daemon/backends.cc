#include "daemon/backends.h"

#include "controller/designs.h"

namespace ipsa::daemon {

namespace {

// Shared between both backends: device counters + per-table stats.
rpc::StatsResponse StatsFrom(const pisa::DeviceStats& st,
                             const arch::TableCatalog& catalog) {
  rpc::StatsResponse resp;
  resp.packets_in = st.packets_in;
  resp.packets_out = st.packets_out;
  resp.packets_dropped = st.packets_dropped;
  resp.packets_marked = st.packets_marked;
  resp.config_words_written = st.config_words_written;
  resp.full_loads = st.full_loads;
  resp.template_writes = st.template_writes;
  resp.table_ops = st.table_ops;
  for (const std::string& name : catalog.TableNames()) {
    auto t = catalog.Get(name);
    if (!t.ok()) continue;
    rpc::TableStatsRow row;
    row.table = name;
    row.match_kind = static_cast<uint8_t>((*t)->spec().match_kind);
    row.entries = (*t)->entry_count();
    row.size = (*t)->spec().size;
    row.hits = (*t)->hits();
    row.misses = (*t)->misses();
    resp.tables.push_back(std::move(row));
  }
  return resp;
}

// Per-table telemetry rows come from the catalog's own hit/miss counters,
// keeping the telemetry layer table-agnostic.
void FillTableRows(const arch::TableCatalog& catalog,
                   telemetry::MetricsSnapshot& snap) {
  for (const std::string& name : catalog.TableNames()) {
    auto t = catalog.Get(name);
    if (!t.ok()) continue;
    telemetry::TableRow row;
    row.table = name;
    row.match_kind = static_cast<uint8_t>((*t)->spec().match_kind);
    row.entries = (*t)->entry_count();
    row.size = (*t)->spec().size;
    row.hits = (*t)->hits();
    row.misses = (*t)->misses();
    snap.tables.push_back(std::move(row));
  }
}

// Applies one bulk frame with per-table batched publication: every table
// the frame touches defers its index republish to EndEntryBatch, so the
// frame's entries become visible to lookups in one swap per table instead
// of one per op. Failures are collected per-op — the frame (and stream)
// never aborts, and publication still happens for the ops that succeeded.
template <typename Device, typename Fn>
rpc::TableBulkResponse ApplyBulkFrame(Device& device,
                                      const rpc::TableBulkRequest& req,
                                      Fn&& apply_one) {
  // Distinct tables in first-seen order. Frames touch one or two tables in
  // practice, so a linear scan beats a hash set here. A table that fails
  // BeginEntryBatch (unknown name) is left out; its ops fail individually.
  std::vector<const std::string*> batched;
  for (const rpc::TableOp& op : req.ops) {
    bool seen = false;
    for (const std::string* t : batched) {
      if (*t == op.table) {
        seen = true;
        break;
      }
    }
    if (!seen && device.BeginEntryBatch(op.table).ok()) {
      batched.push_back(&op.table);
    }
  }
  rpc::TableBulkResponse resp;
  for (uint32_t i = 0; i < req.ops.size(); ++i) {
    Status s = apply_one(req.ops[i]);
    if (s.ok()) {
      ++resp.applied;
    } else {
      resp.failures.push_back(
          rpc::BulkFailure{i, static_cast<uint16_t>(s.code()), s.message()});
    }
  }
  for (const std::string* t : batched) (void)device.EndEntryBatch(*t);
  return resp;
}

}  // namespace

std::string_view ArchName(ArchKind arch) {
  return arch == ArchKind::kPisa ? "pisa" : "ipsa";
}

Result<ArchKind> ArchFromName(std::string_view name) {
  if (name == "pisa" || name == "pbm") return ArchKind::kPisa;
  if (name == "ipsa" || name == "ipbm") return ArchKind::kIpsa;
  return InvalidArgument("unknown arch '" + std::string(name) +
                         "' (expected pisa|ipsa)");
}

std::vector<TxPacket> CollectTx(net::PortSet& ports) {
  std::vector<TxPacket> out;
  CollectTxInto(ports, out);
  return out;
}

void CollectTxInto(net::PortSet& ports, std::vector<TxPacket>& out) {
  for (uint32_t p = 0; p < ports.count(); ++p) {
    while (auto pkt = ports.port(p).tx().Pop()) {
      out.push_back(TxPacket{p, std::move(*pkt)});
    }
  }
}

Result<std::vector<TxPacket>> InjectAndDrain(DeviceBackend& dev,
                                             net::Packet packet,
                                             uint32_t in_port,
                                             uint32_t workers) {
  if (in_port >= dev.ports().count()) {
    return InvalidArgument("no such port " + std::to_string(in_port));
  }
  if (!dev.ports().port(in_port).rx().Push(std::move(packet))) {
    return ResourceExhausted("port " + std::to_string(in_port) +
                             " RX queue is full");
  }
  IPSA_RETURN_IF_ERROR(dev.RunToCompletion(workers).status());
  return CollectTx(dev.ports());
}

// --- IpsaBackend -------------------------------------------------------------

IpsaBackend::IpsaBackend(ipbm::IpbmOptions options,
                         compiler::Rp4bcOptions compiler_options)
    : device_(options), controller_(device_, std::move(compiler_options)) {}

rpc::BackendInfo IpsaBackend::Info() {
  rpc::BackendInfo info;
  info.arch = std::string(ArchName(ArchKind::kIpsa));
  info.port_count = device_.ports().count();
  info.has_design = has_design_;
  info.epoch = epoch_;
  return info;
}

Result<rpc::InstallOutcome> IpsaBackend::Install(rpc::InstallKind kind,
                                                 const std::string& source) {
  Result<controller::FlowTiming> timing = InvalidArgument("unset");
  switch (kind) {
    case rpc::InstallKind::kBaseP4:
      timing = controller_.LoadBaseFromP4(source);
      break;
    case rpc::InstallKind::kBaseRp4:
      timing = controller_.LoadBaseFromRp4(source);
      break;
    case rpc::InstallKind::kScript:
      if (!has_design_) {
        return FailedPrecondition("no base design to update");
      }
      // Snippet file names inside the script resolve against the built-in
      // designs (ecmp.rp4 / srv6.rp4 / probe.rp4 / ...).
      timing = controller_.ApplyScript(source,
                                       controller::designs::ResolveSnippet);
      break;
  }
  IPSA_RETURN_IF_ERROR(timing.status());
  has_design_ = true;
  ++epoch_;
  rpc::InstallOutcome out;
  out.compile_ms = timing->compile_ms;
  out.load_ms = timing->load_ms;
  out.epoch = epoch_;
  return out;
}

Status IpsaBackend::ApplyTableOp(const rpc::TableOp& op) {
  if (!has_design_) return FailedPrecondition("no design installed");
  return ApplyOne(op, /*strict_add=*/false);
}

Status IpsaBackend::ApplyOne(const rpc::TableOp& op, bool strict_add) {
  switch (op.op) {
    case rpc::TableOpKind::kAdd:
      return controller_.AddEntry(op.table, op.entry, /*upsert=*/!strict_add);
    case rpc::TableOpKind::kModify: {
      Status erased = device_.EraseEntry(op.table, op.entry);
      if (!erased.ok() && erased.code() != StatusCode::kNotFound) {
        return erased;
      }
      return controller_.AddEntry(op.table, op.entry);
    }
    case rpc::TableOpKind::kDelete:
      return device_.EraseEntry(op.table, op.entry);
  }
  return InvalidArgument("bad table op");
}

Result<rpc::TableBulkResponse> IpsaBackend::ApplyTableBulk(
    const rpc::TableBulkRequest& req) {
  if (!has_design_) return FailedPrecondition("no design installed");
  return ApplyBulkFrame(device_, req, [this](const rpc::TableOp& op) {
    return ApplyOne(op, /*strict_add=*/true);
  });
}

Result<compiler::ApiSpec> IpsaBackend::Api() {
  if (!has_design_) return FailedPrecondition("no design installed");
  return controller_.api();
}

Result<rpc::StatsResponse> IpsaBackend::QueryStats() {
  return StatsFrom(device_.stats(), device_.catalog());
}

Result<uint32_t> IpsaBackend::Drain(uint32_t workers) {
  return device_.RunToCompletion(workers);
}

Result<rpc::MetricsResponse> IpsaBackend::QueryMetrics() {
  rpc::MetricsResponse resp;
  resp.arch = std::string(ArchName(ArchKind::kIpsa));
  resp.snapshot =
      device_.telemetry().Snapshot(device_.config_epoch(), device_.stats());
  FillTableRows(device_.catalog(), resp.snapshot);
  return resp;
}

Result<rpc::TracesResponse> IpsaBackend::DrainTraces(uint32_t max) {
  if (max == 0 || max > rpc::kMaxTraceRecords) max = rpc::kMaxTraceRecords;
  rpc::TracesResponse resp;
  resp.traces = device_.telemetry().DrainTraces(max);
  return resp;
}

Status IpsaBackend::ResetMetrics() {
  device_.telemetry().Reset();
  return OkStatus();
}

// --- PisaBackend -------------------------------------------------------------

PisaBackend::PisaBackend(pisa::PisaOptions options,
                         compiler::PisaBackendOptions compiler_options)
    : device_(options), controller_(device_, std::move(compiler_options)) {}

rpc::BackendInfo PisaBackend::Info() {
  rpc::BackendInfo info;
  info.arch = std::string(ArchName(ArchKind::kPisa));
  info.port_count = device_.ports().count();
  info.has_design = has_design_;
  info.epoch = epoch_;
  return info;
}

Result<rpc::InstallOutcome> PisaBackend::Install(rpc::InstallKind kind,
                                                 const std::string& source) {
  if (kind != rpc::InstallKind::kBaseP4) {
    // The whole point of the baseline: no incremental surface. A "runtime
    // update" on PISA is a full recompile+reload of the complete program.
    return Unimplemented(
        "pisa accepts only full P4 programs (kBaseP4); recompile the whole "
        "design to change it");
  }
  IPSA_ASSIGN_OR_RETURN(controller::FlowTiming timing,
                        controller_.CompileAndLoad(source));
  has_design_ = true;
  ++epoch_;
  rpc::InstallOutcome out;
  out.compile_ms = timing.compile_ms;
  out.load_ms = timing.load_ms;
  out.epoch = epoch_;
  return out;
}

Status PisaBackend::ApplyTableOp(const rpc::TableOp& op) {
  if (!has_design_) return FailedPrecondition("no design installed");
  return ApplyOne(op, /*strict_add=*/false);
}

Status PisaBackend::ApplyOne(const rpc::TableOp& op, bool strict_add) {
  switch (op.op) {
    case rpc::TableOpKind::kAdd:
      // Goes through the flow controller so the shadow store keeps a copy
      // for repopulation after the next full reload.
      return controller_.AddEntry(op.table, op.entry, /*upsert=*/!strict_add);
    case rpc::TableOpKind::kModify: {
      Status erased = device_.EraseEntry(op.table, op.entry);
      if (!erased.ok() && erased.code() != StatusCode::kNotFound) {
        return erased;
      }
      return controller_.AddEntry(op.table, op.entry);
    }
    case rpc::TableOpKind::kDelete:
      // Device-only: the shadow keeps the entry and restores it on the next
      // reload, mirroring how a real driver's delete bypasses the
      // controller's repopulation snapshot unless the controller is told.
      return device_.EraseEntry(op.table, op.entry);
  }
  return InvalidArgument("bad table op");
}

Result<rpc::TableBulkResponse> PisaBackend::ApplyTableBulk(
    const rpc::TableBulkRequest& req) {
  if (!has_design_) return FailedPrecondition("no design installed");
  return ApplyBulkFrame(device_, req, [this](const rpc::TableOp& op) {
    return ApplyOne(op, /*strict_add=*/true);
  });
}

Result<compiler::ApiSpec> PisaBackend::Api() {
  if (!has_design_) return FailedPrecondition("no design installed");
  return controller_.api();
}

Result<rpc::StatsResponse> PisaBackend::QueryStats() {
  return StatsFrom(device_.stats(), device_.catalog());
}

Result<uint32_t> PisaBackend::Drain(uint32_t workers) {
  return device_.RunToCompletion(workers);
}

Result<rpc::MetricsResponse> PisaBackend::QueryMetrics() {
  rpc::MetricsResponse resp;
  resp.arch = std::string(ArchName(ArchKind::kPisa));
  resp.snapshot =
      device_.telemetry().Snapshot(device_.config_epoch(), device_.stats());
  FillTableRows(device_.catalog(), resp.snapshot);
  return resp;
}

Result<rpc::TracesResponse> PisaBackend::DrainTraces(uint32_t max) {
  if (max == 0 || max > rpc::kMaxTraceRecords) max = rpc::kMaxTraceRecords;
  rpc::TracesResponse resp;
  resp.traces = device_.telemetry().DrainTraces(max);
  return resp;
}

Status PisaBackend::ResetMetrics() {
  device_.telemetry().Reset();
  return OkStatus();
}

std::unique_ptr<DeviceBackend> MakeBackend(ArchKind arch,
                                           const PoolTuning& tuning) {
  // The compiler's allocation solver models the same pool geometry the
  // device constructs; both must see the tuning or the solver would reject
  // tables the deepened pool could actually hold.
  if (arch == ArchKind::kPisa) {
    pisa::PisaOptions opt;
    compiler::PisaBackendOptions copt;
    if (tuning.sram_blocks) {
      opt.sram_blocks_per_stage = tuning.sram_blocks;
      copt.sram_blocks_per_stage = tuning.sram_blocks;
    }
    if (tuning.sram_depth) {
      opt.sram_depth = tuning.sram_depth;
      copt.sram_depth = tuning.sram_depth;
    }
    if (tuning.tcam_blocks) {
      opt.tcam_blocks_per_stage = tuning.tcam_blocks;
      copt.tcam_blocks_per_stage = tuning.tcam_blocks;
    }
    if (tuning.tcam_depth) {
      opt.tcam_depth = tuning.tcam_depth;
      copt.tcam_depth = tuning.tcam_depth;
    }
    return std::make_unique<PisaBackend>(opt, copt);
  }
  ipbm::IpbmOptions opt;
  compiler::Rp4bcOptions copt;
  if (tuning.sram_blocks) {
    opt.sram_blocks = tuning.sram_blocks;
    copt.sram_blocks = tuning.sram_blocks;
  }
  if (tuning.sram_depth) {
    opt.sram_depth = tuning.sram_depth;
    copt.sram_depth = tuning.sram_depth;
  }
  if (tuning.tcam_blocks) {
    opt.tcam_blocks = tuning.tcam_blocks;
    copt.tcam_blocks = tuning.tcam_blocks;
  }
  if (tuning.tcam_depth) {
    opt.tcam_depth = tuning.tcam_depth;
    copt.tcam_depth = tuning.tcam_depth;
  }
  return std::make_unique<IpsaBackend>(opt, copt);
}

}  // namespace ipsa::daemon
