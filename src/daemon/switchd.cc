#include "daemon/switchd.h"

#include <errno.h>
#include <poll.h>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>

#include "telemetry/export.h"

namespace ipsa::daemon {

namespace {

// A full-size Ethernet jumbo frame fits with room to spare.
constexpr size_t kUdpBufBytes = 64 * 1024;

}  // namespace

Switchd::Switchd(SwitchdOptions options)
    : options_(std::move(options)),
      backend_(MakeBackend(options_.arch, options_.pool)) {
  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = options_.telemetry;
  tcfg.trace.sample_every = options_.trace_sample_every;
  backend_->ConfigureTelemetry(tcfg);
}

Switchd::~Switchd() {
  Stop();
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status Switchd::Bind() {
  auto check_batch = [](const char* name, uint32_t v) -> Status {
    if (v < wire::kMinUdpBatch || v > wire::kMaxUdpBatch) {
      return InvalidArgument(std::string(name) + " must be in [" +
                             std::to_string(wire::kMinUdpBatch) + ", " +
                             std::to_string(wire::kMaxUdpBatch) + "], got " +
                             std::to_string(v));
    }
    return OkStatus();
  };
  IPSA_RETURN_IF_ERROR(check_batch("rx_batch", options_.rx_batch));
  IPSA_RETURN_IF_ERROR(check_batch("tx_batch", options_.tx_batch));
  udp_batch_rx_.emplace(options_.rx_batch, kUdpBufBytes);
  udp_batch_tx_.emplace(options_.tx_batch);

  IPSA_ASSIGN_OR_RETURN(listen_,
                        wire::TcpListen(options_.bind, options_.control_port));
  IPSA_ASSIGN_OR_RETURN(control_port_, wire::LocalPort(listen_));
  IPSA_RETURN_IF_ERROR(wire::SetNonBlocking(listen_.fd(), true));

  IPSA_ASSIGN_OR_RETURN(metrics_listen_,
                        wire::TcpListen(options_.bind, options_.metrics_port));
  IPSA_ASSIGN_OR_RETURN(metrics_port_, wire::LocalPort(metrics_listen_));
  IPSA_RETURN_IF_ERROR(wire::SetNonBlocking(metrics_listen_.fd(), true));

  uint32_t device_ports = backend_->ports().count();
  if (options_.udp_ports > device_ports) {
    return InvalidArgument("cannot expose " +
                           std::to_string(options_.udp_ports) +
                           " UDP ports; the device has " +
                           std::to_string(device_ports));
  }
  for (uint32_t i = 0; i < options_.udp_ports; ++i) {
    uint16_t want = options_.udp_port_base == 0
                        ? 0
                        : static_cast<uint16_t>(options_.udp_port_base + i);
    IPSA_ASSIGN_OR_RETURN(wire::Socket sock,
                          wire::UdpBind(options_.bind, want));
    IPSA_ASSIGN_OR_RETURN(uint16_t bound, wire::LocalPort(sock));
    IPSA_RETURN_IF_ERROR(wire::SetNonBlocking(sock.fd(), true));
    udp_socks_.push_back(std::move(sock));
    udp_ports_.push_back(bound);
    udp_peers_.emplace_back();
  }

  if (::pipe(wake_pipe_) < 0) {
    return InternalError(std::string("pipe: ") + ::strerror(errno));
  }
  IPSA_RETURN_IF_ERROR(wire::SetNonBlocking(wake_pipe_[0], true));
  return OkStatus();
}

Status Switchd::Start() {
  if (running()) return FailedPrecondition("already running");
  IPSA_RETURN_IF_ERROR(Bind());
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return OkStatus();
}

void Switchd::RequestStop() {
  stop_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    uint8_t byte = 0;
    // A full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Switchd::Stop() {
  RequestStop();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void Switchd::AcceptAll() {
  while (true) {
    int fd = ::accept(listen_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays registered
    }
    wire::Socket sock(fd);
    if (!wire::SetNonBlocking(fd, true).ok()) continue;
    conns_.emplace_back(std::move(sock), *backend_);
    ++counters_.control_accepts;
  }
}

bool Switchd::ServiceConn(Conn& conn) {
  uint8_t buf[kUdpBufBytes];
  while (true) {
    ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
    if (n == 0) return false;  // orderly shutdown (mid-frame or not)
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.decoder.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
  }
  while (true) {
    auto next = conn.decoder.Next();
    if (!next.ok()) {
      // Corrupt framing: the stream cannot be re-synchronized. Drop the
      // session; the daemon and every other session keep running.
      ++counters_.framing_errors;
      if (options_.verbose) {
        std::fprintf(stderr, "switchd: dropping session: %s\n",
                     next.status().ToString().c_str());
      }
      return false;
    }
    if (!next->has_value()) return true;
    ++counters_.control_frames;
    wire::Frame resp = conn.dispatcher.Handle(**next);
    Status sent = wire::SendAll(conn.sock.fd(), wire::EncodeFrame(resp),
                                options_.send_timeout_ms);
    if (!sent.ok()) return false;
  }
}

void Switchd::ServiceUdp(uint32_t port_index) {
  // Drain the socket until EAGAIN, a burst at a time: one recvmmsg pulls up
  // to rx_batch datagrams (the portable fallback loops recvfrom to the same
  // effect), so a flood costs ~1/rx_batch the syscalls it used to.
  wire::UdpBatchReceiver& rx = *udp_batch_rx_;
  while (true) {
    auto received = rx.Recv(udp_socks_[port_index].fd());
    if (!received.ok() || *received == 0) return;
    for (uint32_t i = 0; i < *received; ++i) {
      // Peer lifecycle: a zero-length datagram is an explicit registration
      // and atomically re-points the port's packet-out peer even when one
      // is already registered (a restarted consumer re-homes the port with
      // a single datagram; the poll loop serializes it against TX replay,
      // so no packet is split between old and new peer). A non-empty
      // datagram only *learns* the peer when none is registered yet — a
      // data source can bootstrap a fresh port but cannot hijack
      // packet-out from the registered peer mid-stream.
      const sockaddr_in& from = rx.from(i);
      std::span<uint8_t> payload = rx.data(i);
      if (payload.empty()) {
        udp_peers_[port_index] = from;  // registration datagram
        continue;
      }
      if (!udp_peers_[port_index].has_value()) {
        udp_peers_[port_index] = from;
      }
      net::Packet packet;
      if (!pkt_pool_.empty()) {
        packet = std::move(pkt_pool_.back());
        pkt_pool_.pop_back();
      }
      packet.Assign(std::span<const uint8_t>(payload));
      if (backend_->ports().port(port_index).rx().Push(std::move(packet))) {
        ++counters_.udp_rx;
      }
    }
  }
}

void Switchd::AcceptMetrics() {
  while (true) {
    int fd = ::accept(metrics_listen_.fd(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient failure; listener stays
    wire::Socket sock(fd);
    if (!wire::SetNonBlocking(fd, true).ok()) continue;
    http_conns_.emplace_back(std::move(sock));
  }
}

std::string Switchd::RenderMetricsBody() {
  auto metrics = backend_->QueryMetrics();
  if (!metrics.ok()) return std::string();
  return telemetry::RenderPrometheus(metrics->snapshot, metrics->arch);
}

bool Switchd::ServiceHttp(HttpConn& conn) {
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.request.append(buf, static_cast<size_t>(n));
    if (conn.request.size() > 64 * 1024) return false;  // header bound
  }
  // Wait for the end of the request head; the body (none expected) is
  // ignored. HTTP/1.0 one-shot: respond and close.
  if (conn.request.find("\r\n\r\n") == std::string::npos &&
      conn.request.find("\n\n") == std::string::npos) {
    return true;
  }
  bool get_metrics = conn.request.rfind("GET /metrics", 0) == 0 ||
                     conn.request.rfind("GET / ", 0) == 0;
  std::string body;
  std::string head;
  if (get_metrics) {
    body = RenderMetricsBody();
    head = "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; "
           "charset=utf-8\r\n";
    ++counters_.metrics_scrapes;
  } else {
    body = "not found\n";
    head = "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\n";
  }
  head += "Content-Length: " + std::to_string(body.size()) +
          "\r\nConnection: close\r\n\r\n";
  std::string response = head + body;
  std::vector<uint8_t> bytes(response.begin(), response.end());
  (void)wire::SendAll(conn.sock.fd(), bytes, options_.send_timeout_ms);
  return false;
}

void Switchd::PumpDataPlane() {
  if (backend_->ports().PendingRx() == 0) return;
  auto processed = backend_->RunToCompletion(options_.drain_workers);
  if (!processed.ok() && options_.verbose) {
    std::fprintf(stderr, "switchd: drain failed: %s\n",
                 processed.status().ToString().c_str());
  }
  // CollectTx yields packets grouped by egress port; consecutive packets to
  // one port (whose peer is one address) batch into a single sendmmsg of up
  // to tx_batch datagrams. The TxPacket vector owns the payload bytes until
  // after every flush.
  tx_scratch_.clear();
  CollectTxInto(backend_->ports(), tx_scratch_);
  std::vector<TxPacket>& txs = tx_scratch_;
  wire::UdpBatchSender& sender = *udp_batch_tx_;
  size_t i = 0;
  while (i < txs.size()) {
    const uint32_t port = txs[i].port;
    if (port >= udp_socks_.size()) {
      ++counters_.udp_unmapped;
      ++i;
      continue;
    }
    if (!udp_peers_[port].has_value()) {
      ++counters_.udp_no_peer;
      ++i;
      continue;
    }
    const sockaddr_in& peer = *udp_peers_[port];
    while (i < txs.size() && txs[i].port == port) {
      if (!sender.Add(txs[i].packet.bytes(), peer)) break;
      ++i;
    }
    auto sent = sender.Flush(udp_socks_[port].fd());
    if (sent.ok()) counters_.udp_tx += *sent;
  }
  // Every datagram is flushed; recycle the sent buffers for the next RX
  // burst. The cap bounds pool memory after a one-off flood.
  constexpr size_t kPoolCap = 1024;
  for (TxPacket& tx : txs) {
    if (pkt_pool_.size() >= kPoolCap) break;
    pkt_pool_.push_back(std::move(tx.packet));
  }
  txs.clear();
}

void Switchd::Loop() {
  std::vector<pollfd> pfds;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    pfds.push_back(pollfd{listen_.fd(), POLLIN, 0});
    pfds.push_back(pollfd{metrics_listen_.fd(), POLLIN, 0});
    for (const wire::Socket& s : udp_socks_) {
      pfds.push_back(pollfd{s.fd(), POLLIN, 0});
    }
    // Connections accepted during this iteration are appended after
    // `polled_conns`, so the event walk below must not run past it.
    const size_t polled_conns = conns_.size();
    for (const Conn& c : conns_) {
      pfds.push_back(pollfd{c.sock.fd(), POLLIN, 0});
    }
    const size_t polled_http = http_conns_.size();
    for (const HttpConn& c : http_conns_) {
      pfds.push_back(pollfd{c.sock.fd(), POLLIN, 0});
    }

    int n = ::poll(pfds.data(), pfds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (pfds[0].revents & POLLIN) {
      uint8_t drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) AcceptAll();
    if (pfds[2].revents & POLLIN) AcceptMetrics();
    for (size_t i = 0; i < udp_socks_.size(); ++i) {
      if (pfds[3 + i].revents & (POLLIN | POLLERR)) {
        ServiceUdp(static_cast<uint32_t>(i));
      }
    }
    size_t idx = 3 + udp_socks_.size();
    {
      auto it = conns_.begin();
      for (size_t c = 0; c < polled_conns; ++c, ++idx) {
        bool keep = true;
        if (pfds[idx].revents & (POLLIN | POLLHUP | POLLERR)) {
          keep = ServiceConn(*it);
        }
        if (keep) {
          ++it;
        } else {
          ++counters_.control_disconnects;
          it = conns_.erase(it);
        }
      }
    }
    {
      auto it = http_conns_.begin();
      for (size_t c = 0; c < polled_http; ++c, ++idx) {
        bool keep = true;
        if (pfds[idx].revents & (POLLIN | POLLHUP | POLLERR)) {
          keep = ServiceHttp(*it);
        }
        if (keep) {
          ++it;
        } else {
          it = http_conns_.erase(it);
        }
      }
    }
    PumpDataPlane();
  }
  conns_.clear();
  http_conns_.clear();
  running_.store(false, std::memory_order_release);
}

}  // namespace ipsa::daemon
