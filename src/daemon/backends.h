// Device backends for the switchd daemon: each owns a behavioral device and
// its flow controller and implements the control-channel Backend interface
// on top, plus the data-plane surface the daemon's packet loop needs.
//
// The same objects work headless: ipbm_sim drives an IpsaBackend through
// the identical injection path the daemon uses for UDP packet-in, so the
// interactive tool and the networked daemon cannot diverge.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "net/packet.h"
#include "net/ports.h"
#include "rpc/backend.h"
#include "telemetry/collector.h"
#include "telemetry/device_stats.h"
#include "util/status.h"

namespace ipsa::daemon {

enum class ArchKind { kPisa, kIpsa };

std::string_view ArchName(ArchKind arch);
Result<ArchKind> ArchFromName(std::string_view name);

// rpc::Backend plus direct data-plane access.
class DeviceBackend : public rpc::Backend {
 public:
  virtual net::PortSet& ports() = 0;
  virtual Result<uint32_t> RunToCompletion(uint32_t workers) = 0;
  // Single-packet path with optional tracing (ipbm_sim's `trace` command).
  virtual Result<telemetry::ProcessResult> ProcessOne(
      net::Packet& packet, uint32_t in_port,
      telemetry::ProcessTrace* trace = nullptr) = 0;
  virtual const arch::TableCatalog& catalog() const = 0;
  // Configures the device's telemetry collector (the daemon enables it at
  // startup unless --no-telemetry); a disabled collector costs one branch
  // per packet.
  virtual void ConfigureTelemetry(const telemetry::TelemetryConfig& config) = 0;
  // Pins the hosted device to the name-resolving interpreter (the reference
  // configuration every differential oracle compares against) or back to
  // the default specialized plan. Flipping it invalidates compiled state
  // like any other config change.
  virtual void SetForceInterpreter(bool force) = 0;
};

// One packet leaving the device: which port it egressed and its bytes.
struct TxPacket {
  uint32_t port = 0;
  net::Packet packet;
};

// Pops every TX queue in port order (the deterministic drain order the
// loopback equivalence test relies on).
std::vector<TxPacket> CollectTx(net::PortSet& ports);

// Same drain, appending into a caller-owned vector so a steady-state pump
// loop can reuse its capacity (clear() + CollectTxInto per iteration).
void CollectTxInto(net::PortSet& ports, std::vector<TxPacket>& out);

// The daemon's packet-injection path: push into `in_port`'s RX queue, drain
// the device, collect everything that egressed. Shared with ipbm_sim.
Result<std::vector<TxPacket>> InjectAndDrain(DeviceBackend& dev,
                                             net::Packet packet,
                                             uint32_t in_port,
                                             uint32_t workers = 1);

class IpsaBackend : public DeviceBackend {
 public:
  explicit IpsaBackend(ipbm::IpbmOptions options = {},
                       compiler::Rp4bcOptions compiler_options = {});

  // rpc::Backend
  rpc::BackendInfo Info() override;
  Result<rpc::InstallOutcome> Install(rpc::InstallKind kind,
                                      const std::string& source) override;
  Status ApplyTableOp(const rpc::TableOp& op) override;
  Result<rpc::TableBulkResponse> ApplyTableBulk(
      const rpc::TableBulkRequest& req) override;
  Result<compiler::ApiSpec> Api() override;
  Result<rpc::StatsResponse> QueryStats() override;
  Result<uint32_t> Drain(uint32_t workers) override;
  Result<rpc::MetricsResponse> QueryMetrics() override;
  Result<rpc::TracesResponse> DrainTraces(uint32_t max) override;
  Status ResetMetrics() override;

  // DeviceBackend
  net::PortSet& ports() override { return device_.ports(); }
  Result<uint32_t> RunToCompletion(uint32_t workers) override {
    return device_.RunToCompletion(workers);
  }
  Result<telemetry::ProcessResult> ProcessOne(net::Packet& packet, uint32_t in_port,
                                         telemetry::ProcessTrace* trace) override {
    return device_.Process(packet, in_port, trace);
  }
  const arch::TableCatalog& catalog() const override {
    return device_.catalog();
  }
  void ConfigureTelemetry(const telemetry::TelemetryConfig& config) override {
    device_.ConfigureTelemetry(config);
  }
  void SetForceInterpreter(bool force) override {
    device_.SetForceInterpreter(force);
  }

  ipbm::IpbmSwitch& device() { return device_; }
  controller::Rp4FlowController& controller() { return controller_; }

 private:
  Status ApplyOne(const rpc::TableOp& op, bool strict_add);
  ipbm::IpbmSwitch device_;
  controller::Rp4FlowController controller_;
  uint64_t epoch_ = 0;
  bool has_design_ = false;
};

class PisaBackend : public DeviceBackend {
 public:
  explicit PisaBackend(pisa::PisaOptions options = {},
                       compiler::PisaBackendOptions compiler_options = {});

  rpc::BackendInfo Info() override;
  Result<rpc::InstallOutcome> Install(rpc::InstallKind kind,
                                      const std::string& source) override;
  Status ApplyTableOp(const rpc::TableOp& op) override;
  Result<rpc::TableBulkResponse> ApplyTableBulk(
      const rpc::TableBulkRequest& req) override;
  Result<compiler::ApiSpec> Api() override;
  Result<rpc::StatsResponse> QueryStats() override;
  Result<uint32_t> Drain(uint32_t workers) override;
  Result<rpc::MetricsResponse> QueryMetrics() override;
  Result<rpc::TracesResponse> DrainTraces(uint32_t max) override;
  Status ResetMetrics() override;

  net::PortSet& ports() override { return device_.ports(); }
  Result<uint32_t> RunToCompletion(uint32_t workers) override {
    return device_.RunToCompletion(workers);
  }
  Result<telemetry::ProcessResult> ProcessOne(net::Packet& packet, uint32_t in_port,
                                         telemetry::ProcessTrace* trace) override {
    return device_.Process(packet, in_port, trace);
  }
  const arch::TableCatalog& catalog() const override {
    return device_.catalog();
  }
  void ConfigureTelemetry(const telemetry::TelemetryConfig& config) override {
    device_.ConfigureTelemetry(config);
  }
  void SetForceInterpreter(bool force) override {
    device_.SetForceInterpreter(force);
  }

  pisa::PisaSwitch& device() { return device_; }
  controller::PisaFlowController& controller() { return controller_; }

 private:
  Status ApplyOne(const rpc::TableOp& op, bool strict_add);
  pisa::PisaSwitch device_;
  controller::PisaFlowController controller_;
  uint64_t epoch_ = 0;
  bool has_design_ = false;
};

// Optional pool sizing overrides (0 = keep the arch default). Million-entry
// tables need far deeper pools than the defaults; the daemon exposes these
// as --sram-depth / --sram-blocks flags. For PISA, block counts apply
// per stage (its memory is prorated, which is exactly the contrast the
// paper draws).
struct PoolTuning {
  uint32_t sram_blocks = 0;
  uint32_t sram_depth = 0;
  uint32_t tcam_blocks = 0;
  uint32_t tcam_depth = 0;
};

std::unique_ptr<DeviceBackend> MakeBackend(ArchKind arch,
                                           const PoolTuning& tuning = {});

}  // namespace ipsa::daemon
