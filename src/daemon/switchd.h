// switchd — the networked switch daemon.
//
// One poll(2) event loop hosts:
//  * a TCP listener for the control channel (wire frames -> rpc::Dispatcher,
//    one dispatcher per connection so each session handshakes on its own);
//  * one UDP socket per exposed device port for packet-in/packet-out: a
//    datagram's payload is a raw Ethernet frame injected into that port's RX
//    queue; after the pipeline drains, TX queues replay to each port's peer.
//    A zero-length datagram registers (or atomically re-points) the port's
//    peer without injecting anything; a data datagram from an unknown source
//    only becomes the peer when the port has none registered yet.
//
// Control and data plane share the loop thread, so CCM commands and packet
// processing are serialized exactly like the in-process tests — no locks,
// and the forwarding output is bit-identical to RunToCompletion.
//
// A third listener serves the device's telemetry snapshot in Prometheus
// text-exposition format over minimal HTTP (GET /metrics). It lives in the
// same poll loop, so a scrape observes a self-consistent, epoch-tagged
// snapshot — never a half-applied in-situ update.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "daemon/backends.h"
#include "rpc/server.h"
#include "wire/socket.h"
#include "wire/udp_batch.h"
#include "wire/wire.h"

namespace ipsa::daemon {

struct SwitchdOptions {
  ArchKind arch = ArchKind::kIpsa;
  std::string bind = "127.0.0.1";
  uint16_t control_port = 0;   // 0 = kernel-assigned
  uint16_t udp_port_base = 0;  // 0 = ephemeral per port; else base+i for port i
  uint32_t udp_ports = 4;      // device ports exposed over UDP (0..n-1)
  uint32_t drain_workers = 1;  // workers for the RX drain after packet-in
  int send_timeout_ms = 2000;  // control-channel response write deadline
  bool verbose = false;
  // Telemetry: enabled by default in the daemon (a disabled collector would
  // still cost its one branch, and an operator-facing daemon wants metrics).
  bool telemetry = true;
  uint32_t trace_sample_every = 0;  // 0 = packet tracing off; N = 1-in-N
  uint16_t metrics_port = 0;        // Prometheus endpoint; 0 = kernel-assigned
  // Datagram burst sizes for the batched packet plane (recvmmsg/sendmmsg,
  // or the portable drain loop). Start() rejects values outside
  // [wire::kMinUdpBatch, wire::kMaxUdpBatch].
  uint32_t rx_batch = 64;
  uint32_t tx_batch = 64;
  // Pool sizing overrides (0 = arch default) — million-entry tables need a
  // deeper pool than the defaults provide.
  PoolTuning pool;
};

// Daemon-side counters (the device's own stats travel via the stats RPC).
struct SwitchdCounters {
  uint64_t udp_rx = 0;            // datagrams injected
  uint64_t udp_tx = 0;            // datagrams replayed out
  uint64_t udp_no_peer = 0;       // TX dropped: egress port has no peer yet
  uint64_t udp_unmapped = 0;      // TX dropped: egress port has no UDP socket
  uint64_t control_accepts = 0;
  uint64_t control_disconnects = 0;
  uint64_t control_frames = 0;
  uint64_t framing_errors = 0;    // sessions killed by corrupt framing
  uint64_t metrics_scrapes = 0;   // HTTP requests answered on the metrics port
};

class Switchd {
 public:
  explicit Switchd(SwitchdOptions options);
  ~Switchd();

  Switchd(const Switchd&) = delete;
  Switchd& operator=(const Switchd&) = delete;

  // Binds all sockets (resolving ephemeral ports) and spawns the loop
  // thread. After Start() returns OK the daemon is serving.
  Status Start();
  // Signal-safe stop request (atomic flag + self-pipe write).
  void RequestStop();
  // RequestStop + join. Idempotent.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  uint16_t control_port() const { return control_port_; }
  // The Prometheus text-exposition endpoint (GET /metrics).
  uint16_t metrics_port() const { return metrics_port_; }
  // The UDP port bound for device port `device_port`.
  uint16_t udp_port(uint32_t device_port) const {
    return udp_ports_.at(device_port);
  }

  DeviceBackend& backend() { return *backend_; }
  const SwitchdCounters& counters() const { return counters_; }

 private:
  struct Conn {
    wire::Socket sock;
    wire::FrameDecoder decoder;
    rpc::Dispatcher dispatcher;

    explicit Conn(wire::Socket s, rpc::Backend& backend)
        : sock(std::move(s)), dispatcher(backend) {}
  };

  // One in-flight HTTP scrape on the metrics port (request bytes buffered
  // until the header terminator arrives; the response is written in one go).
  struct HttpConn {
    wire::Socket sock;
    std::string request;

    explicit HttpConn(wire::Socket s) : sock(std::move(s)) {}
  };

  Status Bind();
  void Loop();
  void AcceptAll();
  // Returns false when the connection must be closed.
  bool ServiceConn(Conn& conn);
  void ServiceUdp(uint32_t port_index);
  void AcceptMetrics();
  // Returns false when the scrape connection is finished (always closed
  // after one response — HTTP/1.0 semantics keep the loop stateless).
  bool ServiceHttp(HttpConn& conn);
  std::string RenderMetricsBody();
  // Drains pending RX through the device and replays TX over UDP.
  void PumpDataPlane();

  SwitchdOptions options_;
  std::unique_ptr<DeviceBackend> backend_;

  wire::Socket listen_;
  wire::Socket metrics_listen_;
  std::vector<wire::Socket> udp_socks_;
  // Shared across the per-port sockets: the loop thread services one socket
  // at a time, so one burst's buffers can be reused for every port.
  std::optional<wire::UdpBatchReceiver> udp_batch_rx_;
  std::optional<wire::UdpBatchSender> udp_batch_tx_;
  std::vector<std::optional<sockaddr_in>> udp_peers_;
  // Packet-buffer recycling: after a pump's TX flush, the sent packets'
  // buffers return here and ServiceUdp refills them for the next burst
  // (Packet::Assign), so the steady-state packet path mallocs nothing.
  std::vector<net::Packet> pkt_pool_;
  // Reused CollectTx output (cleared per pump, capacity kept).
  std::vector<TxPacket> tx_scratch_;
  std::vector<uint16_t> udp_ports_;
  uint16_t control_port_ = 0;
  uint16_t metrics_port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  std::list<Conn> conns_;
  std::list<HttpConn> http_conns_;
  SwitchdCounters counters_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
};

}  // namespace ipsa::daemon
