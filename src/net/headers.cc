#include "net/headers.h"

#include <cstdio>

#include "net/checksum.h"
#include "util/strings.h"

namespace ipsa::net {

MacAddr MacAddr::FromUint64(uint64_t v) {
  MacAddr m;
  for (int i = 5; i >= 0; --i) {
    m.bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(v);
    v >>= 8;
  }
  return m;
}

uint64_t MacAddr::ToUint64() const {
  uint64_t v = 0;
  for (uint8_t b : bytes) v = (v << 8) | b;
  return v;
}

std::string MacAddr::ToString() const {
  return util::Format("%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1],
                      bytes[2], bytes[3], bytes[4], bytes[5]);
}

Ipv4Addr Ipv4Addr::FromOctets(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return {static_cast<uint32_t>(a) << 24 | static_cast<uint32_t>(b) << 16 |
          static_cast<uint32_t>(c) << 8 | d};
}

Ipv4Addr Ipv4Addr::FromString(std::string_view s) {
  auto parts = util::Split(s, '.');
  if (parts.size() != 4) return {};
  uint32_t v = 0;
  for (const auto& p : parts) {
    auto octet = util::ParseUint(p);
    if (!octet || *octet > 255) return {};
    v = (v << 8) | static_cast<uint32_t>(*octet);
  }
  return {v};
}

std::string Ipv4Addr::ToString() const {
  return util::Format("%u.%u.%u.%u", value >> 24, (value >> 16) & 0xFF,
                      (value >> 8) & 0xFF, value & 0xFF);
}

Ipv6Addr Ipv6Addr::FromGroups(const std::array<uint16_t, 8>& groups) {
  Ipv6Addr a;
  for (size_t i = 0; i < 8; ++i) {
    a.bytes[2 * i] = static_cast<uint8_t>(groups[i] >> 8);
    a.bytes[2 * i + 1] = static_cast<uint8_t>(groups[i]);
  }
  return a;
}

std::string Ipv6Addr::ToString() const {
  std::string out;
  for (size_t i = 0; i < 8; ++i) {
    if (i > 0) out += ':';
    out += util::Format("%x", util::LoadBe16(bytes.data() + 2 * i));
  }
  return out;
}

MacAddr EthernetView::dst() const {
  MacAddr m;
  std::copy(b_.begin(), b_.begin() + 6, m.bytes.begin());
  return m;
}

MacAddr EthernetView::src() const {
  MacAddr m;
  std::copy(b_.begin() + 6, b_.begin() + 12, m.bytes.begin());
  return m;
}

void EthernetView::set_dst(const MacAddr& m) {
  std::copy(m.bytes.begin(), m.bytes.end(), b_.begin());
}

void EthernetView::set_src(const MacAddr& m) {
  std::copy(m.bytes.begin(), m.bytes.end(), b_.begin() + 6);
}

void VlanView::set_vid(uint16_t vid) {
  uint16_t tci = util::LoadBe16(b_.data());
  tci = static_cast<uint16_t>((tci & 0xF000) | (vid & 0x0FFF));
  util::StoreBe16(b_.data(), tci);
}

void VlanView::set_pcp(uint8_t pcp) {
  uint16_t tci = util::LoadBe16(b_.data());
  tci = static_cast<uint16_t>((tci & 0x1FFF) | (static_cast<uint16_t>(pcp & 0x7) << 13));
  util::StoreBe16(b_.data(), tci);
}

void Ipv4View::UpdateChecksum() {
  set_checksum(0);
  set_checksum(InternetChecksum(b_.subspan(0, kSize)));
}

Ipv6Addr Ipv6View::src() const {
  Ipv6Addr a;
  std::copy(b_.begin() + 8, b_.begin() + 24, a.bytes.begin());
  return a;
}

Ipv6Addr Ipv6View::dst() const {
  Ipv6Addr a;
  std::copy(b_.begin() + 24, b_.begin() + 40, a.bytes.begin());
  return a;
}

void Ipv6View::set_flow_label(uint32_t v) {
  uint32_t word = util::LoadBe32(b_.data());
  word = (word & 0xFFF00000u) | (v & 0x000FFFFFu);
  util::StoreBe32(b_.data(), word);
}

void Ipv6View::set_src(const Ipv6Addr& a) {
  std::copy(a.bytes.begin(), a.bytes.end(), b_.begin() + 8);
}

void Ipv6View::set_dst(const Ipv6Addr& a) {
  std::copy(a.bytes.begin(), a.bytes.end(), b_.begin() + 24);
}

Ipv6Addr SrhView::segment(size_t i) const {
  Ipv6Addr a;
  auto off = static_cast<std::ptrdiff_t>(kFixedSize + 16 * i);
  std::copy(b_.begin() + off, b_.begin() + off + 16, a.bytes.begin());
  return a;
}

void SrhView::set_segment(size_t i, const Ipv6Addr& a) {
  auto off = static_cast<std::ptrdiff_t>(kFixedSize + 16 * i);
  std::copy(a.bytes.begin(), a.bytes.end(), b_.begin() + off);
}

}  // namespace ipsa::net
