// In-memory switch ports.
//
// The paper's ipbm Communication Module bypasses the OS protocol stack for
// direct packet I/O. In this reproduction ports are bounded FIFO queues that
// workload generators push into and collectors drain from, which keeps every
// experiment deterministic and privilege-free (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/packet.h"

namespace ipsa::net {

// A unidirectional bounded packet queue.
class PortQueue {
 public:
  explicit PortQueue(size_t capacity = 4096) : capacity_(capacity) {}

  // Returns false (drops) when the queue is full.
  bool Push(Packet packet) {
    if (queue_.size() >= capacity_) {
      ++drops_;
      return false;
    }
    queue_.push_back(std::move(packet));
    return true;
  }

  std::optional<Packet> Pop() {
    if (queue_.empty()) return std::nullopt;
    Packet p = std::move(queue_.front());
    queue_.pop_front();
    return p;
  }

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  uint64_t drops() const { return drops_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::deque<Packet> queue_;
  uint64_t drops_ = 0;
};

// A full-duplex port: an RX queue (towards the switch) and a TX queue
// (towards the wire/collector).
class Port {
 public:
  explicit Port(uint32_t id, size_t capacity = 4096)
      : id_(id), rx_(capacity), tx_(capacity) {}

  uint32_t id() const { return id_; }
  PortQueue& rx() { return rx_; }
  PortQueue& tx() { return tx_; }
  const PortQueue& rx() const { return rx_; }
  const PortQueue& tx() const { return tx_; }

 private:
  uint32_t id_;
  PortQueue rx_;
  PortQueue tx_;
};

// The set of ports of one device.
class PortSet {
 public:
  explicit PortSet(uint32_t count, size_t capacity = 4096) {
    ports_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) ports_.emplace_back(i, capacity);
  }

  uint32_t count() const { return static_cast<uint32_t>(ports_.size()); }
  Port& port(uint32_t id) { return ports_.at(id); }
  const Port& port(uint32_t id) const { return ports_.at(id); }

  // Total packets waiting across all RX queues.
  size_t PendingRx() const {
    size_t n = 0;
    for (const auto& p : ports_) n += p.rx().size();
    return n;
  }

 private:
  std::vector<Port> ports_;
};

}  // namespace ipsa::net
