#include "net/packet_builder.h"

#include <cassert>

namespace ipsa::net {

PacketBuilder& PacketBuilder::Ethernet(const MacAddr& dst, const MacAddr& src,
                                       uint16_t ether_type) {
  size_t off = bytes_.size();
  bytes_.resize(off + EthernetView::kSize);
  EthernetView view(std::span<uint8_t>(bytes_).subspan(off));
  view.set_dst(dst);
  view.set_src(src);
  view.set_ether_type(ether_type);
  return *this;
}

PacketBuilder& PacketBuilder::Vlan(uint16_t vid, uint16_t inner_ether_type) {
  size_t off = bytes_.size();
  bytes_.resize(off + VlanView::kSize);
  VlanView view(std::span<uint8_t>(bytes_).subspan(off));
  view.set_vid(vid);
  view.set_ether_type(inner_ether_type);
  return *this;
}

PacketBuilder& PacketBuilder::Ipv4(Ipv4Addr src, Ipv4Addr dst,
                                   uint8_t protocol, uint8_t ttl,
                                   uint8_t dscp) {
  size_t off = bytes_.size();
  bytes_.resize(off + Ipv4View::kSize);
  Ipv4View view(std::span<uint8_t>(bytes_).subspan(off));
  view.set_version_ihl(4, 5);
  view.set_dscp(dscp);
  view.set_ttl(ttl);
  view.set_protocol(protocol);
  view.set_src(src);
  view.set_dst(dst);
  fixups_.push_back({Fixup::Kind::kIpv4, off});
  return *this;
}

PacketBuilder& PacketBuilder::Ipv6(const Ipv6Addr& src, const Ipv6Addr& dst,
                                   uint8_t next_header, uint8_t hop_limit) {
  size_t off = bytes_.size();
  bytes_.resize(off + Ipv6View::kSize);
  Ipv6View view(std::span<uint8_t>(bytes_).subspan(off));
  view.set_version(6);
  view.set_next_header(next_header);
  view.set_hop_limit(hop_limit);
  view.set_src(src);
  view.set_dst(dst);
  fixups_.push_back({Fixup::Kind::kIpv6, off});
  return *this;
}

PacketBuilder& PacketBuilder::Srh(const std::vector<Ipv6Addr>& segments,
                                  uint8_t segments_left, uint8_t next_header) {
  assert(!segments.empty());
  size_t off = bytes_.size();
  size_t size = SrhView::SizeForSegments(segments.size());
  bytes_.resize(off + size);
  SrhView view(std::span<uint8_t>(bytes_).subspan(off, size));
  view.set_next_header(next_header);
  view.set_hdr_ext_len(static_cast<uint8_t>(size / 8 - 1));
  view.set_routing_type(4);
  view.set_segments_left(segments_left);
  view.set_last_entry(static_cast<uint8_t>(segments.size() - 1));
  for (size_t i = 0; i < segments.size(); ++i) {
    view.set_segment(i, segments[i]);
  }
  return *this;
}

PacketBuilder& PacketBuilder::Udp(uint16_t src_port, uint16_t dst_port) {
  size_t off = bytes_.size();
  bytes_.resize(off + UdpView::kSize);
  UdpView view(std::span<uint8_t>(bytes_).subspan(off));
  view.set_src_port(src_port);
  view.set_dst_port(dst_port);
  fixups_.push_back({Fixup::Kind::kUdp, off});
  return *this;
}

PacketBuilder& PacketBuilder::Tcp(uint16_t src_port, uint16_t dst_port,
                                  uint32_t seq) {
  size_t off = bytes_.size();
  bytes_.resize(off + TcpView::kSize);
  TcpView view(std::span<uint8_t>(bytes_).subspan(off));
  view.set_src_port(src_port);
  view.set_dst_port(dst_port);
  view.set_seq(seq);
  view.set_data_offset(5);
  return *this;
}

PacketBuilder& PacketBuilder::Payload(size_t size, uint8_t fill) {
  size_t off = bytes_.size();
  bytes_.resize(off + size);
  for (size_t i = 0; i < size; ++i) {
    bytes_[off + i] = static_cast<uint8_t>(fill + i);
  }
  return *this;
}

PacketBuilder& PacketBuilder::RawBytes(std::span<const uint8_t> raw) {
  bytes_.insert(bytes_.end(), raw.begin(), raw.end());
  return *this;
}

Packet PacketBuilder::Build() {
  // Apply length/checksum fixups from the innermost header outwards so outer
  // lengths include inner ones.
  for (auto it = fixups_.rbegin(); it != fixups_.rend(); ++it) {
    std::span<uint8_t> rest = std::span<uint8_t>(bytes_).subspan(it->offset);
    switch (it->kind) {
      case Fixup::Kind::kIpv4: {
        Ipv4View view(rest);
        view.set_total_length(static_cast<uint16_t>(rest.size()));
        view.UpdateChecksum();
        break;
      }
      case Fixup::Kind::kIpv6: {
        Ipv6View view(rest);
        view.set_payload_length(
            static_cast<uint16_t>(rest.size() - Ipv6View::kSize));
        break;
      }
      case Fixup::Kind::kUdp: {
        UdpView view(rest);
        view.set_length(static_cast<uint16_t>(rest.size()));
        break;
      }
    }
  }
  return Packet(bytes_);
}

}  // namespace ipsa::net
