// Packet buffer with headroom, supporting header push/pop in place.
//
// The buffer keeps `headroom` spare bytes in front of the packet data so
// inserting a header (e.g. SRv6 pushing an SRH) is a bounded memmove of the
// preceding headers rather than a reallocation. This mirrors how the paper's
// ipbm Communication Module hands contiguous frames to the pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace ipsa::net {

class Packet {
 public:
  static constexpr size_t kDefaultHeadroom = 128;

  Packet() : Packet(std::span<const uint8_t>{}) {}
  explicit Packet(std::span<const uint8_t> bytes,
                  size_t headroom = kDefaultHeadroom);

  // Refills this packet in place with new contents, reusing the buffer's
  // capacity. A recycled packet (e.g. from a daemon TX->RX buffer pool)
  // reaches steady state with no per-packet allocation.
  void Assign(std::span<const uint8_t> bytes,
              size_t headroom = kDefaultHeadroom);

  size_t size() const { return buffer_.size() - offset_; }
  bool empty() const { return size() == 0; }
  size_t headroom() const { return offset_; }

  std::span<uint8_t> bytes() {
    return std::span<uint8_t>(buffer_.data() + offset_, size());
  }
  std::span<const uint8_t> bytes() const {
    return std::span<const uint8_t>(buffer_.data() + offset_, size());
  }

  uint8_t* data() { return buffer_.data() + offset_; }
  const uint8_t* data() const { return buffer_.data() + offset_; }

  // Inserts `count` zero bytes at byte offset `at` (0 = front). Headers
  // before `at` are shifted into headroom when available, otherwise the
  // trailing bytes are shifted back (grows the buffer).
  Status InsertBytes(size_t at, size_t count);

  // Removes `count` bytes at offset `at`, closing the gap by shifting the
  // preceding headers backwards (cheap for front-of-packet headers).
  Status RemoveBytes(size_t at, size_t count);

  // Appends raw bytes at the tail (payload building).
  void Append(std::span<const uint8_t> bytes);

  bool operator==(const Packet& other) const {
    auto a = bytes();
    auto b = other.bytes();
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  std::vector<uint8_t> buffer_;
  size_t offset_;  // start of packet data within buffer_
};

}  // namespace ipsa::net
