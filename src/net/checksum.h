// Internet checksum (RFC 1071) used by the IPv4 header and the L3 rewrite
// action primitives (incremental TTL-decrement update).
#pragma once

#include <cstdint>
#include <span>

namespace ipsa::net {

// One's-complement sum of 16-bit words, folded and complemented.
uint16_t InternetChecksum(std::span<const uint8_t> data);

// Incremental checksum update per RFC 1624 when a 16-bit word changes from
// `old_word` to `new_word`.
uint16_t ChecksumIncrementalUpdate(uint16_t old_checksum, uint16_t old_word,
                                   uint16_t new_word);

}  // namespace ipsa::net
