#include "net/workload.h"

#include <cmath>

#include "net/packet_builder.h"

namespace ipsa::net {

Workload::Workload(const WorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  flows_.reserve(config_.flow_count);
  for (uint32_t i = 0; i < config_.flow_count; ++i) {
    FlowSpec f;
    f.is_ipv6 = rng_.NextDouble() < config_.ipv6_fraction;
    f.mac_src = MacAddr::FromUint64(0x02'00'00'00'0000ull + i);
    f.mac_dst = MacAddr::FromUint64(0x02'11'11'11'0000ull + (i % 16));
    f.v4_src = {0xC0A80000u + static_cast<uint32_t>(rng_.Next() & 0xFFFF)};  // 192.168.x.x
    f.v4_dst = {config_.v4_dst_base +
                static_cast<uint32_t>(rng_.NextBelow(config_.v4_dst_count))};
    std::array<uint16_t, 8> src_groups = {0x2001, 0x0db8, 0, 0, 0, 0, 0,
                                          static_cast<uint16_t>(i + 1)};
    std::array<uint16_t, 8> dst_groups = {
        0x2001, 0x0db8, 0xFF, 0, 0, 0, 0,
        static_cast<uint16_t>(rng_.NextBelow(config_.v4_dst_count) + 1)};
    f.v6_src = Ipv6Addr::FromGroups(src_groups);
    f.v6_dst = Ipv6Addr::FromGroups(dst_groups);
    f.src_port = static_cast<uint16_t>(1024 + rng_.NextBelow(60000));
    f.dst_port = static_cast<uint16_t>(rng_.NextBool() ? 80 : 443);
    f.protocol = rng_.NextBool(0.7) ? kIpProtoUdp : kIpProtoTcp;
    flows_.push_back(f);
  }

  // Zipf(skew) popularity over flows, precomputed as a CDF.
  cdf_.resize(flows_.size());
  double total = 0;
  for (size_t i = 0; i < flows_.size(); ++i) {
    double w = config_.skew <= 0.0
                   ? 1.0
                   : 1.0 / std::pow(static_cast<double>(i + 1), config_.skew);
    total += w;
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t Workload::DrawFlowIndex() {
  double u = rng_.NextDouble();
  // Binary search the CDF.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Packet Workload::NextPacket() { return PacketForFlow(DrawFlowIndex()); }

Packet Workload::PacketForFlow(size_t flow_index) const {
  const FlowSpec& f = flows_.at(flow_index);
  PacketBuilder b;
  if (f.is_ipv6) {
    b.Ethernet(f.mac_dst, f.mac_src, kEtherTypeIpv6)
        .Ipv6(f.v6_src, f.v6_dst,
              f.protocol == kIpProtoTcp ? kIpProtoTcp : kIpProtoUdp);
  } else {
    b.Ethernet(f.mac_dst, f.mac_src, kEtherTypeIpv4)
        .Ipv4(f.v4_src, f.v4_dst, f.protocol);
  }
  if (f.protocol == kIpProtoTcp) {
    b.Tcp(f.src_port, f.dst_port);
  } else {
    b.Udp(f.src_port, f.dst_port);
  }
  b.Payload(config_.payload_size);
  return b.Build();
}

Packet Workload::Srv6Packet(const Ipv6Addr& active_segment,
                            const std::vector<Ipv6Addr>& segments,
                            uint8_t segments_left) const {
  const FlowSpec& f = flows_.front();
  PacketBuilder b;
  b.Ethernet(f.mac_dst, f.mac_src, kEtherTypeIpv6)
      .Ipv6(f.v6_src, active_segment, kIpProtoRouting)
      .Srh(segments, segments_left, kIpProtoIpv4)
      .Ipv4(f.v4_src, f.v4_dst, kIpProtoUdp)
      .Udp(f.src_port, f.dst_port)
      .Payload(config_.payload_size);
  return b.Build();
}

}  // namespace ipsa::net
