#include "net/checksum.h"

namespace ipsa::net {

uint16_t InternetChecksum(std::span<const uint8_t> data) {
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint16_t ChecksumIncrementalUpdate(uint16_t old_checksum, uint16_t old_word,
                                   uint16_t new_word) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  uint32_t sum = static_cast<uint16_t>(~old_checksum);
  sum += static_cast<uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

}  // namespace ipsa::net
