#include "net/packet.h"

#include <algorithm>
#include <cstring>

namespace ipsa::net {

Packet::Packet(std::span<const uint8_t> bytes, size_t headroom)
    : buffer_(headroom + bytes.size()), offset_(headroom) {
  std::copy(bytes.begin(), bytes.end(), buffer_.begin() + offset_);
}

void Packet::Assign(std::span<const uint8_t> bytes, size_t headroom) {
  buffer_.resize(headroom + bytes.size());
  offset_ = headroom;
  std::copy(bytes.begin(), bytes.end(), buffer_.begin() + offset_);
}

Status Packet::InsertBytes(size_t at, size_t count) {
  if (at > size()) {
    return OutOfRange("insert offset beyond packet end");
  }
  if (count == 0) return OkStatus();
  if (offset_ >= count) {
    // Shift the leading `at` bytes forward into headroom.
    std::memmove(buffer_.data() + offset_ - count, buffer_.data() + offset_,
                 at);
    offset_ -= count;
  } else {
    // Not enough headroom: grow at the tail and shift the trailing bytes.
    size_t old_size = buffer_.size();
    buffer_.resize(old_size + count);
    std::memmove(buffer_.data() + offset_ + at + count,
                 buffer_.data() + offset_ + at, old_size - offset_ - at);
  }
  std::memset(buffer_.data() + offset_ + at, 0, count);
  return OkStatus();
}

Status Packet::RemoveBytes(size_t at, size_t count) {
  if (at + count > size()) {
    return OutOfRange("remove range beyond packet end");
  }
  if (count == 0) return OkStatus();
  // Shift the preceding bytes backwards; reclaims them as headroom.
  std::memmove(buffer_.data() + offset_ + count, buffer_.data() + offset_, at);
  offset_ += count;
  return OkStatus();
}

void Packet::Append(std::span<const uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

}  // namespace ipsa::net
