// Workload generation for the evaluation benchmarks.
//
// The paper's use cases process L2/L3 unicast traffic (base design), ECMP'd
// IPv4/IPv6 flows (C1), SRv6-encapsulated traffic (C2), and a hot IPv4 flow
// for the event-triggered probe (C3). These generators produce deterministic
// packet streams with controllable flow counts and v4/v6 mix.
#pragma once

#include <cstdint>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"
#include "util/rng.h"

namespace ipsa::net {

// A 5-tuple-ish flow identity the generators draw packets from.
struct FlowSpec {
  bool is_ipv6 = false;
  Ipv4Addr v4_src, v4_dst;
  Ipv6Addr v6_src, v6_dst;
  uint16_t src_port = 0, dst_port = 0;
  uint8_t protocol = kIpProtoUdp;
  MacAddr mac_src, mac_dst;
};

struct WorkloadConfig {
  uint64_t seed = 42;
  uint32_t flow_count = 64;
  double ipv6_fraction = 0.0;  // fraction of flows that are IPv6
  size_t payload_size = 64;
  // Zipf-ish skew: 0 = uniform; larger concentrates traffic on few flows.
  double skew = 0.0;
  // Destination prefix pool the v4 FIB entries are drawn from, so generated
  // packets actually hit installed routes.
  uint32_t v4_dst_base = 0x0A000000;  // 10.0.0.0
  uint32_t v4_dst_count = 256;        // distinct /32 destinations
};

class Workload {
 public:
  explicit Workload(const WorkloadConfig& config);

  const std::vector<FlowSpec>& flows() const { return flows_; }

  // Draws the next flow (respecting skew) and builds one packet for it.
  Packet NextPacket();

  // Builds a packet for a specific flow index.
  Packet PacketForFlow(size_t flow_index) const;

  // SRv6 traffic: IPv6 + SRH(list of segments) + inner IPv4/UDP.
  Packet Srv6Packet(const Ipv6Addr& active_segment,
                    const std::vector<Ipv6Addr>& segments,
                    uint8_t segments_left) const;

 private:
  size_t DrawFlowIndex();

  WorkloadConfig config_;
  mutable util::Rng rng_;
  std::vector<FlowSpec> flows_;
  std::vector<double> cdf_;  // cumulative flow-popularity distribution
};

}  // namespace ipsa::net
