// Concrete wire-format header views for the protocols the paper's use cases
// exercise: Ethernet, VLAN, IPv4, IPv6, the SRv6 SRH extension header, UDP
// and TCP.
//
// These are *views*: lightweight accessors over bytes inside a Packet. The
// switches themselves parse headers generically from HeaderType descriptors
// (src/arch/header_types.h); these concrete views exist so tests, workload
// generators and examples can build and check packets precisely.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/bitops.h"

namespace ipsa::net {

// ---------------------------------------------------------------------------
// Address types
// ---------------------------------------------------------------------------

struct MacAddr {
  std::array<uint8_t, 6> bytes{};

  static MacAddr FromUint64(uint64_t v);
  uint64_t ToUint64() const;
  std::string ToString() const;  // "aa:bb:cc:dd:ee:ff"
  bool operator==(const MacAddr&) const = default;
};

struct Ipv4Addr {
  uint32_t value = 0;  // host byte order

  static Ipv4Addr FromOctets(uint8_t a, uint8_t b, uint8_t c, uint8_t d);
  // Parses dotted-quad "10.0.0.1"; returns zero address on malformed input.
  static Ipv4Addr FromString(std::string_view s);
  std::string ToString() const;
  bool operator==(const Ipv4Addr&) const = default;
};

struct Ipv6Addr {
  std::array<uint8_t, 16> bytes{};

  // Builds from 8 16-bit groups, host order (g0 is the leftmost group).
  static Ipv6Addr FromGroups(const std::array<uint16_t, 8>& groups);
  std::string ToString() const;  // full form, no :: compression
  bool operator==(const Ipv6Addr&) const = default;
};

// ---------------------------------------------------------------------------
// EtherTypes / IP protocol numbers used in the use cases
// ---------------------------------------------------------------------------

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeIpv6 = 0x86DD;
inline constexpr uint16_t kEtherTypeVlan = 0x8100;

inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;
inline constexpr uint8_t kIpProtoIpv4 = 4;    // IPv4-in-IPv6
inline constexpr uint8_t kIpProtoIpv6 = 41;   // IPv6-in-IPv6
inline constexpr uint8_t kIpProtoRouting = 43;  // routing ext header (SRH)

// ---------------------------------------------------------------------------
// Header views
// ---------------------------------------------------------------------------

class EthernetView {
 public:
  static constexpr size_t kSize = 14;
  explicit EthernetView(std::span<uint8_t> bytes) : b_(bytes) {}

  MacAddr dst() const;
  MacAddr src() const;
  uint16_t ether_type() const { return util::LoadBe16(b_.data() + 12); }

  void set_dst(const MacAddr& m);
  void set_src(const MacAddr& m);
  void set_ether_type(uint16_t v) { util::StoreBe16(b_.data() + 12, v); }

 private:
  std::span<uint8_t> b_;
};

class VlanView {
 public:
  static constexpr size_t kSize = 4;
  explicit VlanView(std::span<uint8_t> bytes) : b_(bytes) {}

  uint16_t vid() const { return util::LoadBe16(b_.data()) & 0x0FFF; }
  uint8_t pcp() const { return static_cast<uint8_t>(b_[0] >> 5); }
  uint16_t ether_type() const { return util::LoadBe16(b_.data() + 2); }

  void set_vid(uint16_t vid);
  void set_pcp(uint8_t pcp);
  void set_ether_type(uint16_t v) { util::StoreBe16(b_.data() + 2, v); }

 private:
  std::span<uint8_t> b_;
};

class Ipv4View {
 public:
  static constexpr size_t kSize = 20;  // no options in our workloads
  explicit Ipv4View(std::span<uint8_t> bytes) : b_(bytes) {}

  uint8_t version() const { return b_[0] >> 4; }
  uint8_t ihl() const { return b_[0] & 0x0F; }
  uint8_t dscp() const { return b_[1] >> 2; }
  uint16_t total_length() const { return util::LoadBe16(b_.data() + 2); }
  uint16_t identification() const { return util::LoadBe16(b_.data() + 4); }
  uint8_t ttl() const { return b_[8]; }
  uint8_t protocol() const { return b_[9]; }
  uint16_t checksum() const { return util::LoadBe16(b_.data() + 10); }
  Ipv4Addr src() const { return {util::LoadBe32(b_.data() + 12)}; }
  Ipv4Addr dst() const { return {util::LoadBe32(b_.data() + 16)}; }

  void set_version_ihl(uint8_t version, uint8_t ihl) {
    b_[0] = static_cast<uint8_t>(version << 4 | (ihl & 0x0F));
  }
  void set_dscp(uint8_t v) {
    b_[1] = static_cast<uint8_t>((v << 2) | (b_[1] & 0x03));
  }
  void set_total_length(uint16_t v) { util::StoreBe16(b_.data() + 2, v); }
  void set_identification(uint16_t v) { util::StoreBe16(b_.data() + 4, v); }
  void set_ttl(uint8_t v) { b_[8] = v; }
  void set_protocol(uint8_t v) { b_[9] = v; }
  void set_checksum(uint16_t v) { util::StoreBe16(b_.data() + 10, v); }
  void set_src(Ipv4Addr a) { util::StoreBe32(b_.data() + 12, a.value); }
  void set_dst(Ipv4Addr a) { util::StoreBe32(b_.data() + 16, a.value); }

  // Recomputes and stores the header checksum over the fixed 20 bytes.
  void UpdateChecksum();

 private:
  std::span<uint8_t> b_;
};

class Ipv6View {
 public:
  static constexpr size_t kSize = 40;
  explicit Ipv6View(std::span<uint8_t> bytes) : b_(bytes) {}

  uint8_t version() const { return b_[0] >> 4; }
  uint32_t flow_label() const {
    return util::LoadBe32(b_.data()) & 0x000FFFFF;
  }
  uint16_t payload_length() const { return util::LoadBe16(b_.data() + 4); }
  uint8_t next_header() const { return b_[6]; }
  uint8_t hop_limit() const { return b_[7]; }
  Ipv6Addr src() const;
  Ipv6Addr dst() const;

  void set_version(uint8_t v) {
    b_[0] = static_cast<uint8_t>((v << 4) | (b_[0] & 0x0F));
  }
  void set_flow_label(uint32_t v);
  void set_payload_length(uint16_t v) { util::StoreBe16(b_.data() + 4, v); }
  void set_next_header(uint8_t v) { b_[6] = v; }
  void set_hop_limit(uint8_t v) { b_[7] = v; }
  void set_src(const Ipv6Addr& a);
  void set_dst(const Ipv6Addr& a);

 private:
  std::span<uint8_t> b_;
};

// IPv6 Segment Routing Header (RFC 8754). Fixed 8 bytes + 16 per segment.
class SrhView {
 public:
  static constexpr size_t kFixedSize = 8;
  static size_t SizeForSegments(size_t n) { return kFixedSize + 16 * n; }

  explicit SrhView(std::span<uint8_t> bytes) : b_(bytes) {}

  uint8_t next_header() const { return b_[0]; }
  uint8_t hdr_ext_len() const { return b_[1]; }  // in 8-byte units minus 1
  uint8_t routing_type() const { return b_[2]; }  // 4 for SRH
  uint8_t segments_left() const { return b_[3]; }
  uint8_t last_entry() const { return b_[4]; }
  Ipv6Addr segment(size_t i) const;
  size_t segment_count() const { return static_cast<size_t>(last_entry()) + 1; }
  size_t size_bytes() const { return (static_cast<size_t>(hdr_ext_len()) + 1) * 8; }

  void set_next_header(uint8_t v) { b_[0] = v; }
  void set_hdr_ext_len(uint8_t v) { b_[1] = v; }
  void set_routing_type(uint8_t v) { b_[2] = v; }
  void set_segments_left(uint8_t v) { b_[3] = v; }
  void set_last_entry(uint8_t v) { b_[4] = v; }
  void set_segment(size_t i, const Ipv6Addr& a);

 private:
  std::span<uint8_t> b_;
};

class UdpView {
 public:
  static constexpr size_t kSize = 8;
  explicit UdpView(std::span<uint8_t> bytes) : b_(bytes) {}

  uint16_t src_port() const { return util::LoadBe16(b_.data()); }
  uint16_t dst_port() const { return util::LoadBe16(b_.data() + 2); }
  uint16_t length() const { return util::LoadBe16(b_.data() + 4); }

  void set_src_port(uint16_t v) { util::StoreBe16(b_.data(), v); }
  void set_dst_port(uint16_t v) { util::StoreBe16(b_.data() + 2, v); }
  void set_length(uint16_t v) { util::StoreBe16(b_.data() + 4, v); }

 private:
  std::span<uint8_t> b_;
};

class TcpView {
 public:
  static constexpr size_t kSize = 20;
  explicit TcpView(std::span<uint8_t> bytes) : b_(bytes) {}

  uint16_t src_port() const { return util::LoadBe16(b_.data()); }
  uint16_t dst_port() const { return util::LoadBe16(b_.data() + 2); }
  uint32_t seq() const { return util::LoadBe32(b_.data() + 4); }

  void set_src_port(uint16_t v) { util::StoreBe16(b_.data(), v); }
  void set_dst_port(uint16_t v) { util::StoreBe16(b_.data() + 2, v); }
  void set_seq(uint32_t v) { util::StoreBe32(b_.data() + 4, v); }
  void set_data_offset(uint8_t words) {
    b_[12] = static_cast<uint8_t>((words & 0x0F) << 4);
  }

 private:
  std::span<uint8_t> b_;
};

}  // namespace ipsa::net
