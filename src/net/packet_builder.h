// Fluent packet construction for tests, examples and workload generation.
//
//   Packet p = PacketBuilder()
//                  .Ethernet(dst, src, kEtherTypeIpv4)
//                  .Ipv4(src_ip, dst_ip, kIpProtoUdp)
//                  .Udp(1234, 80)
//                  .Payload(64)
//                  .Build();
//
// Length and checksum fields are fixed up in Build().
#pragma once

#include <cstdint>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace ipsa::net {

class PacketBuilder {
 public:
  PacketBuilder& Ethernet(const MacAddr& dst, const MacAddr& src,
                          uint16_t ether_type);
  PacketBuilder& Vlan(uint16_t vid, uint16_t inner_ether_type);
  PacketBuilder& Ipv4(Ipv4Addr src, Ipv4Addr dst, uint8_t protocol,
                      uint8_t ttl = 64, uint8_t dscp = 0);
  PacketBuilder& Ipv6(const Ipv6Addr& src, const Ipv6Addr& dst,
                      uint8_t next_header, uint8_t hop_limit = 64);
  // SRv6 SRH with the given segment list; segments_left indexes into it.
  PacketBuilder& Srh(const std::vector<Ipv6Addr>& segments,
                     uint8_t segments_left, uint8_t next_header);
  PacketBuilder& Udp(uint16_t src_port, uint16_t dst_port);
  PacketBuilder& Tcp(uint16_t src_port, uint16_t dst_port, uint32_t seq = 0);
  // Appends `size` deterministic filler bytes.
  PacketBuilder& Payload(size_t size, uint8_t fill = 0xAB);
  PacketBuilder& RawBytes(std::span<const uint8_t> bytes);

  // Fixes up IPv4 total_length/checksum, IPv6 payload_length and UDP length
  // fields, then returns the finished packet.
  Packet Build();

 private:
  struct Fixup {
    enum class Kind { kIpv4, kIpv6, kUdp } kind;
    size_t offset;
  };

  std::vector<uint8_t> bytes_;
  std::vector<Fixup> fixups_;
};

}  // namespace ipsa::net
