#include "rpc/client.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

namespace ipsa::rpc {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Client::Close() {
  sock_.Close();
  decoder_.Reset();
}

void Client::SeverConnectionForTest() { sock_.Close(); }

Status Client::DialOnce() {
  decoder_.Reset();
  IPSA_ASSIGN_OR_RETURN(
      sock_, wire::TcpConnect(options_.host, options_.port,
                              options_.connect_timeout_ms));
  // Handshake inline so a version-mismatched server is rejected before any
  // real call goes out.
  HelloRequest hello;
  hello.client = options_.client_name;
  wire::Writer w;
  hello.Encode(w);
  auto body = Call(MsgType::kHelloReq, w.Take());
  if (!body.ok()) {
    sock_.Close();
    return body.status();
  }
  wire::Reader r(*body);
  auto info = HelloResponse::Decode(r);
  if (!info.ok()) {
    sock_.Close();
    return info.status();
  }
  info_ = std::move(*info);
  return OkStatus();
}

Status Client::Connect() { return EnsureConnected(); }

Status Client::EnsureConnected() {
  if (sock_.valid()) return OkStatus();
  int delay_ms = options_.backoff_initial_ms;
  Status last = Unavailable("not connected");
  for (int attempt = 0; attempt < options_.max_connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      delay_ms = std::min(delay_ms * 2, options_.backoff_max_ms);
    }
    last = DialOnce();
    if (last.ok()) return OkStatus();
  }
  return Status(last.code(),
                "giving up after " +
                    std::to_string(options_.max_connect_attempts) +
                    " connect attempts: " + last.message());
}

Result<std::vector<uint8_t>> Client::Call(MsgType type,
                                          std::vector<uint8_t> payload) {
  // The handshake itself calls Call() while the socket is already up; every
  // other entry point goes through EnsureConnected() first.
  if (!sock_.valid() && type != MsgType::kHelloReq) {
    IPSA_RETURN_IF_ERROR(EnsureConnected());
  }
  if (!sock_.valid()) return Unavailable("not connected");

  wire::Frame req;
  req.type = static_cast<uint16_t>(type);
  req.seq = next_seq_++;
  req.payload = std::move(payload);

  const int64_t deadline = NowMs() + options_.call_timeout_ms;
  Status sent = wire::SendAll(sock_.fd(), wire::EncodeFrame(req),
                              options_.call_timeout_ms);
  if (!sent.ok()) {
    // The stream may hold a half-written frame; it is unusable.
    Close();
    return sent;
  }

  uint8_t buf[64 * 1024];
  while (true) {
    // Drain any frames already buffered before touching the socket.
    while (true) {
      auto next = decoder_.Next();
      if (!next.ok()) {
        Close();
        return next.status();
      }
      if (!next->has_value()) break;
      wire::Frame frame = std::move(**next);
      if (frame.seq != req.seq ||
          frame.type != static_cast<uint16_t>(req.type + 1)) {
        // A stale response (e.g. for a call abandoned by a previous timeout
        // on this connection — impossible after Close(), but cheap to
        // tolerate) is dropped, not fatal.
        continue;
      }
      wire::Reader r(frame.payload);
      Status remote = OkStatus();
      IPSA_RETURN_IF_ERROR(GetStatus(r, remote));
      if (!remote.ok()) return remote;
      return std::vector<uint8_t>(frame.payload.begin() + (frame.payload.size() - r.remaining()),
                                  frame.payload.end());
    }
    int64_t left = deadline - NowMs();
    if (left <= 0) {
      Close();
      return DeadlineExceeded(std::string(MsgTypeName(req.type)) +
                              " timed out after " +
                              std::to_string(options_.call_timeout_ms) +
                              " ms");
    }
    auto n = wire::RecvSome(sock_.fd(), buf, static_cast<int>(left));
    if (!n.ok()) {
      Close();
      if (n.status().code() == StatusCode::kDeadlineExceeded) {
        return DeadlineExceeded(std::string(MsgTypeName(req.type)) +
                                " timed out after " +
                                std::to_string(options_.call_timeout_ms) +
                                " ms");
      }
      return n.status();
    }
    if (*n == 0) {
      Close();
      return Unavailable("server closed the connection");
    }
    decoder_.Feed(std::span<const uint8_t>(buf, *n));
  }
}

Result<wire::Frame> Client::RecvResponse(uint16_t want_type, uint32_t want_seq,
                                         int64_t deadline_ms) {
  if (!sock_.valid()) return Unavailable("not connected");
  uint8_t buf[64 * 1024];
  while (true) {
    // Drain any frames already buffered before touching the socket.
    while (true) {
      auto next = decoder_.Next();
      if (!next.ok()) {
        Close();
        return next.status();
      }
      if (!next->has_value()) break;
      wire::Frame frame = std::move(**next);
      if (frame.type == want_type && frame.seq == want_seq) return frame;
      // Stale frame for an abandoned call — drop, not fatal (responses are
      // in-order, so anything else can only be older than what we want).
    }
    int64_t left = deadline_ms - NowMs();
    if (left <= 0) {
      Close();
      return DeadlineExceeded(std::string(MsgTypeName(want_type)) +
                              " timed out");
    }
    auto n = wire::RecvSome(sock_.fd(), buf, static_cast<int>(left));
    if (!n.ok()) {
      Close();
      return n.status();
    }
    if (*n == 0) {
      Close();
      return Unavailable("server closed the connection");
    }
    decoder_.Feed(std::span<const uint8_t>(buf, *n));
  }
}

Result<BulkResult> Client::ApplyBulk(
    const std::vector<TableOp>& ops, const BulkOptions& bulk,
    const std::function<void(const BulkProgress&)>& progress) {
  const uint32_t per_frame =
      std::clamp<uint32_t>(bulk.ops_per_frame, 1, kMaxBatchOps);
  const uint32_t window = std::max<uint32_t>(1, bulk.window);
  IPSA_RETURN_IF_ERROR(EnsureConnected());

  struct Pending {
    uint32_t seq = 0;
    uint64_t first_index = 0;  // global index of this frame's first op
    uint32_t op_count = 0;
  };
  std::deque<Pending> pending;
  BulkResult result;
  BulkProgress prog;
  prog.frames_total = (ops.size() + per_frame - 1) / per_frame;

  // Blocks on the oldest in-flight frame's ack, folding its per-op outcome
  // into the running result (failure indexes rebased to the global list).
  // A frame-level error (bad status prefix: no design installed, decode
  // failure) aborts the stream — per-op failures do not.
  auto await_oldest = [&]() -> Status {
    const Pending p = pending.front();
    pending.pop_front();
    IPSA_ASSIGN_OR_RETURN(
        wire::Frame frame,
        RecvResponse(static_cast<uint16_t>(MsgType::kTableBulkResp), p.seq,
                     NowMs() + options_.call_timeout_ms));
    wire::Reader r(frame.payload);
    Status remote = OkStatus();
    Status prefix = GetStatus(r, remote);
    if (!prefix.ok()) {
      Close();
      return prefix;
    }
    if (!remote.ok()) {
      Close();
      return remote;
    }
    auto resp = TableBulkResponse::Decode(r);
    if (!resp.ok()) {
      Close();
      return resp.status();
    }
    result.applied += resp->applied;
    for (BulkFailure& f : resp->failures) {
      f.index = static_cast<uint32_t>(p.first_index + f.index);
      result.failures.push_back(std::move(f));
    }
    ++prog.frames_acked;
    prog.ops_acked += p.op_count;
    prog.applied = result.applied;
    prog.failed = result.failures.size();
    if (progress) progress(prog);
    return OkStatus();
  };

  for (uint64_t start = 0; start < ops.size(); start += per_frame) {
    const uint32_t count =
        static_cast<uint32_t>(std::min<uint64_t>(per_frame, ops.size() - start));
    wire::Writer w;
    w.U32(count);
    for (uint32_t i = 0; i < count; ++i) ops[start + i].Encode(w);
    wire::Frame req;
    req.type = static_cast<uint16_t>(MsgType::kTableBulkReq);
    req.seq = next_seq_++;
    req.payload = w.Take();
    // The pipelining core: only block once the window is full, so up to
    // `window` frames ride the wire while the server works.
    if (pending.size() >= window) IPSA_RETURN_IF_ERROR(await_oldest());
    Status sent = wire::SendAll(sock_.fd(), wire::EncodeFrame(req),
                                options_.call_timeout_ms);
    if (!sent.ok()) {
      Close();
      return sent;
    }
    pending.push_back(Pending{req.seq, start, count});
  }
  while (!pending.empty()) IPSA_RETURN_IF_ERROR(await_oldest());
  return result;
}

Result<InstallResponse> Client::Install(InstallKind kind,
                                        const std::string& source) {
  InstallRequest req;
  req.kind = kind;
  req.source = source;
  wire::Writer w;
  req.Encode(w);
  IPSA_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        Call(MsgType::kInstallReq, w.Take()));
  wire::Reader r(body);
  return InstallResponse::Decode(r);
}

Status Client::TableCall(TableOpKind kind, const std::string& table,
                         const table::Entry& entry) {
  TableOp op;
  op.op = kind;
  op.table = table;
  op.entry = entry;
  wire::Writer w;
  op.Encode(w);
  return Call(MsgType::kTableOpReq, w.Take()).status();
}

Status Client::AddEntry(const std::string& table, const table::Entry& entry) {
  return TableCall(TableOpKind::kAdd, table, entry);
}

Status Client::ModifyEntry(const std::string& table,
                           const table::Entry& entry) {
  return TableCall(TableOpKind::kModify, table, entry);
}

Status Client::DeleteEntry(const std::string& table,
                           const table::Entry& entry) {
  return TableCall(TableOpKind::kDelete, table, entry);
}

Result<TableBatchResponse> Client::ApplyBatch(const std::vector<TableOp>& ops) {
  TableBatchRequest req;
  req.ops = ops;
  wire::Writer w;
  req.Encode(w);
  IPSA_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        Call(MsgType::kTableBatchReq, w.Take()));
  wire::Reader r(body);
  return TableBatchResponse::Decode(r);
}

Result<TableBatchResponse> Client::ApplyBatchPrepacked(
    std::vector<uint8_t> payload) {
  IPSA_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        Call(MsgType::kTableBatchReq, std::move(payload)));
  wire::Reader r(body);
  return TableBatchResponse::Decode(r);
}

Result<compiler::ApiSpec> Client::FetchApi() {
  IPSA_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        Call(MsgType::kApiReq, {}));
  wire::Reader r(body);
  return GetApiSpec(r);
}

Result<StatsResponse> Client::QueryStats() {
  IPSA_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        Call(MsgType::kStatsReq, {}));
  wire::Reader r(body);
  return StatsResponse::Decode(r);
}

Result<EpochResponse> Client::QueryEpoch() {
  IPSA_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        Call(MsgType::kEpochReq, {}));
  wire::Reader r(body);
  return EpochResponse::Decode(r);
}

Result<DrainResponse> Client::Drain(uint32_t workers) {
  DrainRequest req;
  req.workers = workers;
  wire::Writer w;
  req.Encode(w);
  IPSA_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        Call(MsgType::kDrainReq, w.Take()));
  wire::Reader r(body);
  return DrainResponse::Decode(r);
}

Result<MetricsResponse> Client::QueryMetrics() {
  IPSA_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        Call(MsgType::kMetricsReq, {}));
  wire::Reader r(body);
  return MetricsResponse::Decode(r);
}

Result<TracesResponse> Client::QueryTraces(uint32_t max) {
  TracesRequest req;
  req.max = max;
  wire::Writer w;
  req.Encode(w);
  IPSA_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        Call(MsgType::kTracesReq, w.Take()));
  wire::Reader r(body);
  return TracesResponse::Decode(r);
}

Status Client::ResetMetrics() {
  return Call(MsgType::kResetMetricsReq, {}).status();
}

}  // namespace ipsa::rpc
