// The switchd control protocol (docs/control_plane.md is the spec).
//
// Every message is one wire::Frame; requests use odd tags, the matching
// response is tag+1 with the same seq. A response payload always begins
// with a wire status (code u16 + message string); on a non-OK status the
// type-specific fields are absent. Payload decode failures are per-call
// errors — the frame stream itself stays healthy.
//
// Table entries travel pre-packed (the table::Entry layout the device
// consumes). Clients build them with controller::EntryBuilder against the
// ApiSpec fetched over the channel (kApiReq), so the same population code
// (controller/baseline.cc) runs unchanged in-process or over the wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/rp4fc.h"
#include "table/table.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_ring.h"
#include "util/status.h"
#include "wire/wire.h"

namespace ipsa::rpc {

inline constexpr uint32_t kProtocolVersion = 1;

enum class MsgType : uint16_t {
  kHelloReq = 1,
  kHelloResp = 2,
  kInstallReq = 3,
  kInstallResp = 4,
  kTableOpReq = 5,
  kTableOpResp = 6,
  kTableBatchReq = 7,
  kTableBatchResp = 8,
  kApiReq = 9,
  kApiResp = 10,
  kStatsReq = 11,
  kStatsResp = 12,
  kEpochReq = 13,
  kEpochResp = 14,
  kDrainReq = 15,
  kDrainResp = 16,
  kMetricsReq = 17,
  kMetricsResp = 18,
  kTracesReq = 19,
  kTracesResp = 20,
  kResetMetricsReq = 21,
  kResetMetricsResp = 22,
  kTableBulkReq = 23,
  kTableBulkResp = 24,
};

std::string_view MsgTypeName(uint16_t type);

// --- response status prefix -------------------------------------------------

void PutStatus(wire::Writer& w, const Status& status);
// Decodes the status prefix into `out`. The returned Status reports decode
// failures only (`Result<Status>` would collide with Result's implicit
// Status constructor).
Status GetStatus(wire::Reader& r, Status& out);

// --- handshake ---------------------------------------------------------------

struct HelloRequest {
  uint32_t version = kProtocolVersion;
  std::string client;

  void Encode(wire::Writer& w) const;
  static Result<HelloRequest> Decode(wire::Reader& r);
};

struct HelloResponse {
  uint32_t version = kProtocolVersion;
  std::string arch;         // "pisa" | "ipsa"
  uint32_t port_count = 0;  // device ports
  uint64_t epoch = 0;       // configuration epoch (bumped per install)
  bool has_design = false;

  void Encode(wire::Writer& w) const;
  static Result<HelloResponse> Decode(wire::Reader& r);
};

// --- design install ----------------------------------------------------------

enum class InstallKind : uint8_t {
  kBaseP4 = 0,   // full program; both archs (PISA: monolithic reload)
  kBaseRp4 = 1,  // rP4 base design; ipsa only
  kScript = 2,   // runtime-update script (Fig. 5b/5c); ipsa only
};

struct InstallRequest {
  InstallKind kind = InstallKind::kBaseP4;
  std::string source;

  void Encode(wire::Writer& w) const;
  static Result<InstallRequest> Decode(wire::Reader& r);
};

struct InstallResponse {
  double compile_ms = 0;
  double load_ms = 0;
  uint64_t epoch = 0;

  void Encode(wire::Writer& w) const;
  static Result<InstallResponse> Decode(wire::Reader& r);
};

// --- runtime table ops --------------------------------------------------------

enum class TableOpKind : uint8_t {
  kAdd = 0,
  kModify = 1,  // upsert: erase (if present) + insert
  kDelete = 2,
};

struct TableOp {
  TableOpKind op = TableOpKind::kAdd;
  std::string table;
  table::Entry entry;

  void Encode(wire::Writer& w) const;
  static Result<TableOp> Decode(wire::Reader& r);
};

inline constexpr uint32_t kMaxBatchOps = 65536;

struct TableBatchRequest {
  std::vector<TableOp> ops;

  void Encode(wire::Writer& w) const;
  static Result<TableBatchRequest> Decode(wire::Reader& r);
};

struct TableBatchResponse {
  // Ops applied. On failure the response status is the first failing op's
  // error with its index in the message ("batch op N: ...") and no body.
  uint32_t applied = 0;

  void Encode(wire::Writer& w) const;
  static Result<TableBatchResponse> Decode(wire::Reader& r);
};

// --- streamed bulk inserts ----------------------------------------------------
//
// One frame of a pipelined bulk stream. Unlike kTableBatchReq, (a) the
// server applies EVERY op, collecting per-op failures instead of aborting
// at the first one, so a duplicate key mid-window degrades one entry, not
// the stream; (b) kAdd is strict — a duplicate identity fails with
// kAlreadyExists rather than upserting (use kModify for upserts); (c) each
// distinct table's index publication is batched across the frame, so the
// frame becomes visible to lookups atomically. Clients keep a window of
// these frames in flight before the first ack (see Client::ApplyBulk).

struct TableBulkRequest {
  std::vector<TableOp> ops;

  void Encode(wire::Writer& w) const;
  static Result<TableBulkRequest> Decode(wire::Reader& r);
};

struct BulkFailure {
  uint32_t index = 0;  // op index within this frame
  uint16_t code = 0;   // StatusCode of the failure
  std::string message;
};

struct TableBulkResponse {
  uint32_t applied = 0;  // ops that succeeded in this frame
  std::vector<BulkFailure> failures;

  void Encode(wire::Writer& w) const;
  static Result<TableBulkResponse> Decode(wire::Reader& r);
};

// --- runtime API spec ---------------------------------------------------------

// Serializes the EntryBuilder-relevant subset of the ApiSpec: table name,
// match kind, key field widths, and the action name -> (id, param widths)
// map. FieldRefs (datapath bindings) stay server-side.
void PutApiSpec(wire::Writer& w, const compiler::ApiSpec& api);
Result<compiler::ApiSpec> GetApiSpec(wire::Reader& r);

// --- stats / epoch / drain ----------------------------------------------------

struct TableStatsRow {
  std::string table;
  uint8_t match_kind = 0;  // table::MatchKind
  uint32_t entries = 0;
  uint32_t size = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

struct StatsResponse {
  uint64_t packets_in = 0;
  uint64_t packets_out = 0;
  uint64_t packets_dropped = 0;
  uint64_t packets_marked = 0;
  uint64_t config_words_written = 0;
  uint64_t full_loads = 0;
  uint64_t template_writes = 0;
  uint64_t table_ops = 0;
  std::vector<TableStatsRow> tables;

  void Encode(wire::Writer& w) const;
  static Result<StatsResponse> Decode(wire::Reader& r);
};

struct EpochResponse {
  uint64_t epoch = 0;
  bool has_design = false;
  std::string arch;

  void Encode(wire::Writer& w) const;
  static Result<EpochResponse> Decode(wire::Reader& r);
};

struct DrainRequest {
  uint32_t workers = 1;

  void Encode(wire::Writer& w) const;
  static Result<DrainRequest> Decode(wire::Reader& r);
};

struct DrainResponse {
  uint32_t processed = 0;

  void Encode(wire::Writer& w) const;
  static Result<DrainResponse> Decode(wire::Reader& r);
};

// --- telemetry ---------------------------------------------------------------

// GetMetrics: kMetricsReq carries no payload; the response is the device's
// epoch-tagged telemetry snapshot (per-port/stage/table rows, update and
// drain windows, trace-ring occupancy).
struct MetricsResponse {
  std::string arch;  // "pisa" | "ipsa"
  telemetry::MetricsSnapshot snapshot;

  void Encode(wire::Writer& w) const;
  static Result<MetricsResponse> Decode(wire::Reader& r);
};

// GetTraces: pops up to `max` sampled packet traces (0 = all pending) from
// the device's trace ring without stopping the data plane.
struct TracesRequest {
  uint32_t max = 0;

  void Encode(wire::Writer& w) const;
  static Result<TracesRequest> Decode(wire::Reader& r);
};

inline constexpr uint32_t kMaxTraceRecords = 4096;

struct TracesResponse {
  std::vector<telemetry::TraceRecord> traces;

  void Encode(wire::Writer& w) const;
  static Result<TracesResponse> Decode(wire::Reader& r);
};

// ResetMetrics: kResetMetricsReq and kResetMetricsResp carry no payload
// beyond the response status; counters, histograms, and the trace ring are
// cleared while the telemetry configuration stays.

}  // namespace ipsa::rpc
