// Protocol-level server: turns one request frame into one response frame
// against a Backend. Transport-free so it is testable without sockets; the
// daemon owns the connections and pumps frames through one Dispatcher per
// session (the handshake is per-session state).
#pragma once

#include "rpc/backend.h"
#include "rpc/protocol.h"
#include "wire/wire.h"

namespace ipsa::rpc {

class Dispatcher {
 public:
  explicit Dispatcher(Backend& backend) : backend_(&backend) {}

  // Never fails: protocol-level problems (unknown tag, bad payload, a call
  // before the handshake, version mismatch) come back as error-status
  // responses, so one bad call never kills the session.
  wire::Frame Handle(const wire::Frame& request);

  bool handshaken() const { return hello_done_; }

 private:
  // Builds the response payload for `request`; returns the error to embed
  // instead when the call fails.
  Status Dispatch(const wire::Frame& request, wire::Writer& body);

  Backend* backend_;
  bool hello_done_ = false;
};

}  // namespace ipsa::rpc
