#include "rpc/protocol.h"

namespace ipsa::rpc {

namespace {

// Bounds on repeated elements inside one message; all far below the frame
// payload cap, so a hostile length never triggers a large allocation.
constexpr uint32_t kMaxKeyFields = 256;
constexpr uint32_t kMaxActions = 1024;
constexpr uint32_t kMaxTables = 4096;

Result<table::Entry> DecodeEntry(wire::Reader& r) {
  table::Entry e;
  IPSA_ASSIGN_OR_RETURN(e.key, r.Bits());
  IPSA_ASSIGN_OR_RETURN(e.mask, r.Bits());
  IPSA_ASSIGN_OR_RETURN(e.prefix_len, r.U32());
  IPSA_ASSIGN_OR_RETURN(e.priority, r.U32());
  IPSA_ASSIGN_OR_RETURN(e.action_id, r.U32());
  IPSA_ASSIGN_OR_RETURN(e.action_data, r.Bits());
  return e;
}

void EncodeEntry(wire::Writer& w, const table::Entry& e) {
  w.Bits(e.key);
  w.Bits(e.mask);
  w.U32(e.prefix_len);
  w.U32(e.priority);
  w.U32(e.action_id);
  w.Bits(e.action_data);
}

}  // namespace

std::string_view MsgTypeName(uint16_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHelloReq:
      return "HelloReq";
    case MsgType::kHelloResp:
      return "HelloResp";
    case MsgType::kInstallReq:
      return "InstallReq";
    case MsgType::kInstallResp:
      return "InstallResp";
    case MsgType::kTableOpReq:
      return "TableOpReq";
    case MsgType::kTableOpResp:
      return "TableOpResp";
    case MsgType::kTableBatchReq:
      return "TableBatchReq";
    case MsgType::kTableBatchResp:
      return "TableBatchResp";
    case MsgType::kApiReq:
      return "ApiReq";
    case MsgType::kApiResp:
      return "ApiResp";
    case MsgType::kStatsReq:
      return "StatsReq";
    case MsgType::kStatsResp:
      return "StatsResp";
    case MsgType::kEpochReq:
      return "EpochReq";
    case MsgType::kEpochResp:
      return "EpochResp";
    case MsgType::kDrainReq:
      return "DrainReq";
    case MsgType::kDrainResp:
      return "DrainResp";
    case MsgType::kMetricsReq:
      return "MetricsReq";
    case MsgType::kMetricsResp:
      return "MetricsResp";
    case MsgType::kTracesReq:
      return "TracesReq";
    case MsgType::kTracesResp:
      return "TracesResp";
    case MsgType::kResetMetricsReq:
      return "ResetMetricsReq";
    case MsgType::kResetMetricsResp:
      return "ResetMetricsResp";
    case MsgType::kTableBulkReq:
      return "TableBulkReq";
    case MsgType::kTableBulkResp:
      return "TableBulkResp";
  }
  return "?";
}

void PutStatus(wire::Writer& w, const Status& status) {
  w.U16(static_cast<uint16_t>(status.code()));
  w.Str(status.message());
}

Status GetStatus(wire::Reader& r, Status& out) {
  IPSA_ASSIGN_OR_RETURN(uint16_t code, r.U16());
  IPSA_ASSIGN_OR_RETURN(std::string message, r.Str());
  if (code > static_cast<uint16_t>(StatusCode::kDeadlineExceeded)) {
    return InvalidArgument("wire: unknown status code " + std::to_string(code));
  }
  out = code == 0 ? OkStatus()
                  : Status(static_cast<StatusCode>(code), std::move(message));
  return OkStatus();
}

void HelloRequest::Encode(wire::Writer& w) const {
  w.U32(version);
  w.Str(client);
}

Result<HelloRequest> HelloRequest::Decode(wire::Reader& r) {
  HelloRequest req;
  IPSA_ASSIGN_OR_RETURN(req.version, r.U32());
  IPSA_ASSIGN_OR_RETURN(req.client, r.Str());
  return req;
}

void HelloResponse::Encode(wire::Writer& w) const {
  w.U32(version);
  w.Str(arch);
  w.U32(port_count);
  w.U64(epoch);
  w.Bool(has_design);
}

Result<HelloResponse> HelloResponse::Decode(wire::Reader& r) {
  HelloResponse resp;
  IPSA_ASSIGN_OR_RETURN(resp.version, r.U32());
  IPSA_ASSIGN_OR_RETURN(resp.arch, r.Str());
  IPSA_ASSIGN_OR_RETURN(resp.port_count, r.U32());
  IPSA_ASSIGN_OR_RETURN(resp.epoch, r.U64());
  IPSA_ASSIGN_OR_RETURN(resp.has_design, r.Bool());
  return resp;
}

void InstallRequest::Encode(wire::Writer& w) const {
  w.U8(static_cast<uint8_t>(kind));
  w.Str(source);
}

Result<InstallRequest> InstallRequest::Decode(wire::Reader& r) {
  InstallRequest req;
  IPSA_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  if (kind > static_cast<uint8_t>(InstallKind::kScript)) {
    return InvalidArgument("unknown install kind " + std::to_string(kind));
  }
  req.kind = static_cast<InstallKind>(kind);
  IPSA_ASSIGN_OR_RETURN(req.source, r.Str());
  return req;
}

void InstallResponse::Encode(wire::Writer& w) const {
  w.F64(compile_ms);
  w.F64(load_ms);
  w.U64(epoch);
}

Result<InstallResponse> InstallResponse::Decode(wire::Reader& r) {
  InstallResponse resp;
  IPSA_ASSIGN_OR_RETURN(resp.compile_ms, r.F64());
  IPSA_ASSIGN_OR_RETURN(resp.load_ms, r.F64());
  IPSA_ASSIGN_OR_RETURN(resp.epoch, r.U64());
  return resp;
}

void TableOp::Encode(wire::Writer& w) const {
  w.U8(static_cast<uint8_t>(op));
  w.Str(table);
  EncodeEntry(w, entry);
}

Result<TableOp> TableOp::Decode(wire::Reader& r) {
  TableOp op;
  IPSA_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  if (kind > static_cast<uint8_t>(TableOpKind::kDelete)) {
    return InvalidArgument("unknown table op kind " + std::to_string(kind));
  }
  op.op = static_cast<TableOpKind>(kind);
  IPSA_ASSIGN_OR_RETURN(op.table, r.Str());
  IPSA_ASSIGN_OR_RETURN(op.entry, DecodeEntry(r));
  return op;
}

void TableBatchRequest::Encode(wire::Writer& w) const {
  w.U32(static_cast<uint32_t>(ops.size()));
  for (const TableOp& op : ops) op.Encode(w);
}

Result<TableBatchRequest> TableBatchRequest::Decode(wire::Reader& r) {
  IPSA_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  if (count > kMaxBatchOps) {
    return InvalidArgument("batch of " + std::to_string(count) +
                           " ops exceeds the " + std::to_string(kMaxBatchOps) +
                           " op bound");
  }
  TableBatchRequest req;
  req.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    IPSA_ASSIGN_OR_RETURN(TableOp op, TableOp::Decode(r));
    req.ops.push_back(std::move(op));
  }
  return req;
}

void TableBatchResponse::Encode(wire::Writer& w) const { w.U32(applied); }

Result<TableBatchResponse> TableBatchResponse::Decode(wire::Reader& r) {
  TableBatchResponse resp;
  IPSA_ASSIGN_OR_RETURN(resp.applied, r.U32());
  return resp;
}

void TableBulkRequest::Encode(wire::Writer& w) const {
  w.U32(static_cast<uint32_t>(ops.size()));
  for (const TableOp& op : ops) op.Encode(w);
}

Result<TableBulkRequest> TableBulkRequest::Decode(wire::Reader& r) {
  IPSA_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  if (count > kMaxBatchOps) {
    return InvalidArgument("bulk frame of " + std::to_string(count) +
                           " ops exceeds the " + std::to_string(kMaxBatchOps) +
                           " op bound");
  }
  TableBulkRequest req;
  req.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    IPSA_ASSIGN_OR_RETURN(TableOp op, TableOp::Decode(r));
    req.ops.push_back(std::move(op));
  }
  return req;
}

void TableBulkResponse::Encode(wire::Writer& w) const {
  w.U32(applied);
  w.U32(static_cast<uint32_t>(failures.size()));
  for (const BulkFailure& f : failures) {
    w.U32(f.index);
    w.U16(f.code);
    w.Str(f.message);
  }
}

Result<TableBulkResponse> TableBulkResponse::Decode(wire::Reader& r) {
  TableBulkResponse resp;
  IPSA_ASSIGN_OR_RETURN(resp.applied, r.U32());
  IPSA_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  if (count > kMaxBatchOps) {
    return InvalidArgument("bulk response reports " + std::to_string(count) +
                           " failures, exceeding the op bound");
  }
  resp.failures.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BulkFailure f;
    IPSA_ASSIGN_OR_RETURN(f.index, r.U32());
    IPSA_ASSIGN_OR_RETURN(f.code, r.U16());
    IPSA_ASSIGN_OR_RETURN(f.message, r.Str());
    resp.failures.push_back(std::move(f));
  }
  return resp;
}

void PutApiSpec(wire::Writer& w, const compiler::ApiSpec& api) {
  w.U32(static_cast<uint32_t>(api.tables.size()));
  for (const auto& [name, t] : api.tables) {
    w.Str(name);
    w.U8(static_cast<uint8_t>(t.match_kind));
    w.U32(static_cast<uint32_t>(t.key_field_widths.size()));
    for (uint32_t width : t.key_field_widths) w.U32(width);
    w.U32(static_cast<uint32_t>(t.actions.size()));
    for (const auto& [action, id_params] : t.actions) {
      w.Str(action);
      w.U32(id_params.first);
      w.U32(static_cast<uint32_t>(id_params.second.size()));
      for (uint32_t pw : id_params.second) w.U32(pw);
    }
  }
}

Result<compiler::ApiSpec> GetApiSpec(wire::Reader& r) {
  IPSA_ASSIGN_OR_RETURN(uint32_t table_count, r.U32());
  if (table_count > kMaxTables) {
    return InvalidArgument("api spec table count out of bounds");
  }
  compiler::ApiSpec api;
  for (uint32_t i = 0; i < table_count; ++i) {
    compiler::TableApi t;
    IPSA_ASSIGN_OR_RETURN(t.table, r.Str());
    IPSA_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    if (kind > static_cast<uint8_t>(table::MatchKind::kSelector)) {
      return InvalidArgument("api spec match kind out of range");
    }
    t.match_kind = static_cast<table::MatchKind>(kind);
    IPSA_ASSIGN_OR_RETURN(uint32_t key_count, r.U32());
    if (key_count > kMaxKeyFields) {
      return InvalidArgument("api spec key field count out of bounds");
    }
    t.key_field_widths.reserve(key_count);
    for (uint32_t k = 0; k < key_count; ++k) {
      IPSA_ASSIGN_OR_RETURN(uint32_t width, r.U32());
      t.key_field_widths.push_back(width);
    }
    IPSA_ASSIGN_OR_RETURN(uint32_t action_count, r.U32());
    if (action_count > kMaxActions) {
      return InvalidArgument("api spec action count out of bounds");
    }
    for (uint32_t a = 0; a < action_count; ++a) {
      IPSA_ASSIGN_OR_RETURN(std::string action, r.Str());
      IPSA_ASSIGN_OR_RETURN(uint32_t id, r.U32());
      IPSA_ASSIGN_OR_RETURN(uint32_t param_count, r.U32());
      if (param_count > kMaxKeyFields) {
        return InvalidArgument("api spec param count out of bounds");
      }
      std::vector<uint32_t> params;
      params.reserve(param_count);
      for (uint32_t p = 0; p < param_count; ++p) {
        IPSA_ASSIGN_OR_RETURN(uint32_t pw, r.U32());
        params.push_back(pw);
      }
      t.actions[action] = {id, std::move(params)};
    }
    std::string name = t.table;
    api.tables.emplace(std::move(name), std::move(t));
  }
  return api;
}

void StatsResponse::Encode(wire::Writer& w) const {
  w.U64(packets_in);
  w.U64(packets_out);
  w.U64(packets_dropped);
  w.U64(packets_marked);
  w.U64(config_words_written);
  w.U64(full_loads);
  w.U64(template_writes);
  w.U64(table_ops);
  w.U32(static_cast<uint32_t>(tables.size()));
  for (const TableStatsRow& row : tables) {
    w.Str(row.table);
    w.U8(row.match_kind);
    w.U32(row.entries);
    w.U32(row.size);
    w.U64(row.hits);
    w.U64(row.misses);
  }
}

Result<StatsResponse> StatsResponse::Decode(wire::Reader& r) {
  StatsResponse resp;
  IPSA_ASSIGN_OR_RETURN(resp.packets_in, r.U64());
  IPSA_ASSIGN_OR_RETURN(resp.packets_out, r.U64());
  IPSA_ASSIGN_OR_RETURN(resp.packets_dropped, r.U64());
  IPSA_ASSIGN_OR_RETURN(resp.packets_marked, r.U64());
  IPSA_ASSIGN_OR_RETURN(resp.config_words_written, r.U64());
  IPSA_ASSIGN_OR_RETURN(resp.full_loads, r.U64());
  IPSA_ASSIGN_OR_RETURN(resp.template_writes, r.U64());
  IPSA_ASSIGN_OR_RETURN(resp.table_ops, r.U64());
  IPSA_ASSIGN_OR_RETURN(uint32_t table_count, r.U32());
  if (table_count > kMaxTables) {
    return InvalidArgument("stats table count out of bounds");
  }
  resp.tables.reserve(table_count);
  for (uint32_t i = 0; i < table_count; ++i) {
    TableStatsRow row;
    IPSA_ASSIGN_OR_RETURN(row.table, r.Str());
    IPSA_ASSIGN_OR_RETURN(row.match_kind, r.U8());
    IPSA_ASSIGN_OR_RETURN(row.entries, r.U32());
    IPSA_ASSIGN_OR_RETURN(row.size, r.U32());
    IPSA_ASSIGN_OR_RETURN(row.hits, r.U64());
    IPSA_ASSIGN_OR_RETURN(row.misses, r.U64());
    resp.tables.push_back(std::move(row));
  }
  return resp;
}

void EpochResponse::Encode(wire::Writer& w) const {
  w.U64(epoch);
  w.Bool(has_design);
  w.Str(arch);
}

Result<EpochResponse> EpochResponse::Decode(wire::Reader& r) {
  EpochResponse resp;
  IPSA_ASSIGN_OR_RETURN(resp.epoch, r.U64());
  IPSA_ASSIGN_OR_RETURN(resp.has_design, r.Bool());
  IPSA_ASSIGN_OR_RETURN(resp.arch, r.Str());
  return resp;
}

void DrainRequest::Encode(wire::Writer& w) const { w.U32(workers); }

Result<DrainRequest> DrainRequest::Decode(wire::Reader& r) {
  DrainRequest req;
  IPSA_ASSIGN_OR_RETURN(req.workers, r.U32());
  if (req.workers == 0 || req.workers > 64) {
    return InvalidArgument("drain worker count out of range");
  }
  return req;
}

void DrainResponse::Encode(wire::Writer& w) const { w.U32(processed); }

Result<DrainResponse> DrainResponse::Decode(wire::Reader& r) {
  DrainResponse resp;
  IPSA_ASSIGN_OR_RETURN(resp.processed, r.U32());
  return resp;
}

// --- telemetry ---------------------------------------------------------------

namespace {

constexpr uint32_t kMaxPortRows = 65536;
constexpr uint32_t kMaxStageRows = 65536;
constexpr uint32_t kMaxTraceSteps = 4096;
constexpr uint32_t kMaxTraceHeaders = 1024;

void PutHistogram(wire::Writer& w, const telemetry::Histogram& h) {
  w.U32(telemetry::kHistogramBuckets);
  for (uint64_t b : h.buckets) w.U64(b);
  w.U64(h.count);
  w.U64(h.sum);
  w.U64(h.min);
  w.U64(h.max);
}

Result<telemetry::Histogram> GetHistogram(wire::Reader& r) {
  IPSA_ASSIGN_OR_RETURN(uint32_t buckets, r.U32());
  if (buckets != telemetry::kHistogramBuckets) {
    return InvalidArgument("histogram bucket count mismatch");
  }
  telemetry::Histogram h;
  for (uint64_t& b : h.buckets) {
    IPSA_ASSIGN_OR_RETURN(b, r.U64());
  }
  IPSA_ASSIGN_OR_RETURN(h.count, r.U64());
  IPSA_ASSIGN_OR_RETURN(h.sum, r.U64());
  IPSA_ASSIGN_OR_RETURN(h.min, r.U64());
  IPSA_ASSIGN_OR_RETURN(h.max, r.U64());
  return h;
}

void PutDeviceStats(wire::Writer& w, const telemetry::DeviceStats& d) {
  w.U64(d.config_words_written);
  w.U64(d.full_loads);
  w.U64(d.template_writes);
  w.U64(d.table_ops);
  w.U64(d.packets_in);
  w.U64(d.packets_out);
  w.U64(d.packets_dropped);
  w.U64(d.packets_marked);
  w.U64(d.total_cycles);
}

Result<telemetry::DeviceStats> GetDeviceStats(wire::Reader& r) {
  telemetry::DeviceStats d;
  IPSA_ASSIGN_OR_RETURN(d.config_words_written, r.U64());
  IPSA_ASSIGN_OR_RETURN(d.full_loads, r.U64());
  IPSA_ASSIGN_OR_RETURN(d.template_writes, r.U64());
  IPSA_ASSIGN_OR_RETURN(d.table_ops, r.U64());
  IPSA_ASSIGN_OR_RETURN(d.packets_in, r.U64());
  IPSA_ASSIGN_OR_RETURN(d.packets_out, r.U64());
  IPSA_ASSIGN_OR_RETURN(d.packets_dropped, r.U64());
  IPSA_ASSIGN_OR_RETURN(d.packets_marked, r.U64());
  IPSA_ASSIGN_OR_RETURN(d.total_cycles, r.U64());
  return d;
}

void PutProcessResult(wire::Writer& w, const telemetry::ProcessResult& p) {
  w.Bool(p.dropped);
  w.Bool(p.marked);
  w.U32(p.egress_port);
  w.U64(p.cycles);
  w.U32(p.headers_parsed);
  w.F64(p.pipeline_ii);
}

Result<telemetry::ProcessResult> GetProcessResult(wire::Reader& r) {
  telemetry::ProcessResult p;
  IPSA_ASSIGN_OR_RETURN(p.dropped, r.Bool());
  IPSA_ASSIGN_OR_RETURN(p.marked, r.Bool());
  IPSA_ASSIGN_OR_RETURN(p.egress_port, r.U32());
  IPSA_ASSIGN_OR_RETURN(p.cycles, r.U64());
  IPSA_ASSIGN_OR_RETURN(p.headers_parsed, r.U32());
  IPSA_ASSIGN_OR_RETURN(p.pipeline_ii, r.F64());
  return p;
}

}  // namespace

void MetricsResponse::Encode(wire::Writer& w) const {
  w.Str(arch);
  w.Bool(snapshot.enabled);
  w.U64(snapshot.seq);
  w.U64(snapshot.config_epoch);
  PutDeviceStats(w, snapshot.device);
  w.U32(static_cast<uint32_t>(snapshot.ports.size()));
  for (const telemetry::PortRow& row : snapshot.ports) {
    w.U32(row.port);
    w.U64(row.metrics.packets_in);
    w.U64(row.metrics.packets_out);
    w.U64(row.metrics.packets_dropped);
    w.U64(row.metrics.packets_marked);
    PutHistogram(w, row.metrics.cycles);
  }
  w.U32(static_cast<uint32_t>(snapshot.stages.size()));
  for (const telemetry::StageRow& row : snapshot.stages) {
    w.U32(row.unit);
    w.Str(row.stage);
    w.U64(row.metrics.executions);
    w.U64(row.metrics.hits);
    w.U64(row.metrics.misses);
  }
  w.U32(static_cast<uint32_t>(snapshot.tables.size()));
  for (const telemetry::TableRow& row : snapshot.tables) {
    w.Str(row.table);
    w.U8(row.match_kind);
    w.U32(row.entries);
    w.U32(row.size);
    w.U64(row.hits);
    w.U64(row.misses);
  }
  w.U64(snapshot.updates);
  w.U64(snapshot.last_update_epoch);
  w.F64(snapshot.last_update_ms);
  PutHistogram(w, snapshot.update_window_us);
  PutHistogram(w, snapshot.drain_window_cycles);
  w.U64(snapshot.traces_captured);
  w.U64(snapshot.traces_dropped);
  w.U32(snapshot.traces_pending);
}

Result<MetricsResponse> MetricsResponse::Decode(wire::Reader& r) {
  MetricsResponse resp;
  IPSA_ASSIGN_OR_RETURN(resp.arch, r.Str());
  telemetry::MetricsSnapshot& s = resp.snapshot;
  IPSA_ASSIGN_OR_RETURN(s.enabled, r.Bool());
  IPSA_ASSIGN_OR_RETURN(s.seq, r.U64());
  IPSA_ASSIGN_OR_RETURN(s.config_epoch, r.U64());
  IPSA_ASSIGN_OR_RETURN(s.device, GetDeviceStats(r));
  IPSA_ASSIGN_OR_RETURN(uint32_t port_count, r.U32());
  if (port_count > kMaxPortRows) {
    return InvalidArgument("metrics port row count out of bounds");
  }
  s.ports.reserve(port_count);
  for (uint32_t i = 0; i < port_count; ++i) {
    telemetry::PortRow row;
    IPSA_ASSIGN_OR_RETURN(row.port, r.U32());
    IPSA_ASSIGN_OR_RETURN(row.metrics.packets_in, r.U64());
    IPSA_ASSIGN_OR_RETURN(row.metrics.packets_out, r.U64());
    IPSA_ASSIGN_OR_RETURN(row.metrics.packets_dropped, r.U64());
    IPSA_ASSIGN_OR_RETURN(row.metrics.packets_marked, r.U64());
    IPSA_ASSIGN_OR_RETURN(row.metrics.cycles, GetHistogram(r));
    s.ports.push_back(std::move(row));
  }
  IPSA_ASSIGN_OR_RETURN(uint32_t stage_count, r.U32());
  if (stage_count > kMaxStageRows) {
    return InvalidArgument("metrics stage row count out of bounds");
  }
  s.stages.reserve(stage_count);
  for (uint32_t i = 0; i < stage_count; ++i) {
    telemetry::StageRow row;
    IPSA_ASSIGN_OR_RETURN(row.unit, r.U32());
    IPSA_ASSIGN_OR_RETURN(row.stage, r.Str());
    IPSA_ASSIGN_OR_RETURN(row.metrics.executions, r.U64());
    IPSA_ASSIGN_OR_RETURN(row.metrics.hits, r.U64());
    IPSA_ASSIGN_OR_RETURN(row.metrics.misses, r.U64());
    s.stages.push_back(std::move(row));
  }
  IPSA_ASSIGN_OR_RETURN(uint32_t table_count, r.U32());
  if (table_count > kMaxTables) {
    return InvalidArgument("metrics table row count out of bounds");
  }
  s.tables.reserve(table_count);
  for (uint32_t i = 0; i < table_count; ++i) {
    telemetry::TableRow row;
    IPSA_ASSIGN_OR_RETURN(row.table, r.Str());
    IPSA_ASSIGN_OR_RETURN(row.match_kind, r.U8());
    IPSA_ASSIGN_OR_RETURN(row.entries, r.U32());
    IPSA_ASSIGN_OR_RETURN(row.size, r.U32());
    IPSA_ASSIGN_OR_RETURN(row.hits, r.U64());
    IPSA_ASSIGN_OR_RETURN(row.misses, r.U64());
    s.tables.push_back(std::move(row));
  }
  IPSA_ASSIGN_OR_RETURN(s.updates, r.U64());
  IPSA_ASSIGN_OR_RETURN(s.last_update_epoch, r.U64());
  IPSA_ASSIGN_OR_RETURN(s.last_update_ms, r.F64());
  IPSA_ASSIGN_OR_RETURN(s.update_window_us, GetHistogram(r));
  IPSA_ASSIGN_OR_RETURN(s.drain_window_cycles, GetHistogram(r));
  IPSA_ASSIGN_OR_RETURN(s.traces_captured, r.U64());
  IPSA_ASSIGN_OR_RETURN(s.traces_dropped, r.U64());
  IPSA_ASSIGN_OR_RETURN(s.traces_pending, r.U32());
  return resp;
}

void TracesRequest::Encode(wire::Writer& w) const { w.U32(max); }

Result<TracesRequest> TracesRequest::Decode(wire::Reader& r) {
  TracesRequest req;
  IPSA_ASSIGN_OR_RETURN(req.max, r.U32());
  return req;
}

void TracesResponse::Encode(wire::Writer& w) const {
  w.U32(static_cast<uint32_t>(traces.size()));
  for (const telemetry::TraceRecord& t : traces) {
    w.U64(t.seq);
    w.U64(t.config_epoch);
    w.U32(t.in_port);
    PutProcessResult(w, t.result);
    w.U32(static_cast<uint32_t>(t.trace.parsed_headers.size()));
    for (const std::string& h : t.trace.parsed_headers) w.Str(h);
    w.U32(static_cast<uint32_t>(t.trace.steps.size()));
    for (const telemetry::TraceStep& step : t.trace.steps) {
      w.U32(step.unit);
      w.Str(step.stage);
      w.Str(step.table);
      w.Bool(step.hit);
      w.Str(step.action);
      w.U64(step.parse_bytes);
    }
  }
}

Result<TracesResponse> TracesResponse::Decode(wire::Reader& r) {
  IPSA_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  if (count > kMaxTraceRecords) {
    return InvalidArgument("trace record count out of bounds");
  }
  TracesResponse resp;
  resp.traces.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    telemetry::TraceRecord t;
    IPSA_ASSIGN_OR_RETURN(t.seq, r.U64());
    IPSA_ASSIGN_OR_RETURN(t.config_epoch, r.U64());
    IPSA_ASSIGN_OR_RETURN(t.in_port, r.U32());
    IPSA_ASSIGN_OR_RETURN(t.result, GetProcessResult(r));
    IPSA_ASSIGN_OR_RETURN(uint32_t headers, r.U32());
    if (headers > kMaxTraceHeaders) {
      return InvalidArgument("trace header count out of bounds");
    }
    t.trace.parsed_headers.reserve(headers);
    for (uint32_t h = 0; h < headers; ++h) {
      IPSA_ASSIGN_OR_RETURN(std::string name, r.Str());
      t.trace.parsed_headers.push_back(std::move(name));
    }
    IPSA_ASSIGN_OR_RETURN(uint32_t steps, r.U32());
    if (steps > kMaxTraceSteps) {
      return InvalidArgument("trace step count out of bounds");
    }
    t.trace.steps.reserve(steps);
    for (uint32_t sidx = 0; sidx < steps; ++sidx) {
      telemetry::TraceStep step;
      IPSA_ASSIGN_OR_RETURN(step.unit, r.U32());
      IPSA_ASSIGN_OR_RETURN(step.stage, r.Str());
      IPSA_ASSIGN_OR_RETURN(step.table, r.Str());
      IPSA_ASSIGN_OR_RETURN(step.hit, r.Bool());
      IPSA_ASSIGN_OR_RETURN(step.action, r.Str());
      IPSA_ASSIGN_OR_RETURN(step.parse_bytes, r.U64());
      t.trace.steps.push_back(std::move(step));
    }
    resp.traces.push_back(std::move(t));
  }
  return resp;
}

}  // namespace ipsa::rpc
