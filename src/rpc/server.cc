#include "rpc/server.h"

namespace ipsa::rpc {

namespace {

bool IsRequestType(uint16_t type) {
  return type >= static_cast<uint16_t>(MsgType::kHelloReq) &&
         type <= static_cast<uint16_t>(MsgType::kTableBulkReq) &&
         (type % 2) == 1;
}

}  // namespace

wire::Frame Dispatcher::Handle(const wire::Frame& request) {
  wire::Frame resp;
  resp.seq = request.seq;
  // Unknown request tags still get a well-formed response (tag+1 keeps the
  // req/resp pairing rule even for tags we don't know).
  resp.type = static_cast<uint16_t>(request.type + 1);

  wire::Writer body;
  Status status = Dispatch(request, body);
  wire::Writer payload;
  PutStatus(payload, status);
  if (status.ok()) {
    std::vector<uint8_t> b = body.Take();
    payload.Raw(b);
  }
  resp.payload = payload.Take();
  return resp;
}

Status Dispatcher::Dispatch(const wire::Frame& request, wire::Writer& body) {
  if (!IsRequestType(request.type)) {
    return InvalidArgument("unknown request tag " +
                           std::to_string(request.type));
  }
  MsgType type = static_cast<MsgType>(request.type);
  wire::Reader r(request.payload);

  if (type == MsgType::kHelloReq) {
    IPSA_ASSIGN_OR_RETURN(HelloRequest req, HelloRequest::Decode(r));
    if (req.version != kProtocolVersion) {
      return FailedPrecondition(
          "protocol version mismatch: client " + std::to_string(req.version) +
          ", server " + std::to_string(kProtocolVersion));
    }
    hello_done_ = true;
    BackendInfo info = backend_->Info();
    HelloResponse resp;
    resp.arch = info.arch;
    resp.port_count = info.port_count;
    resp.epoch = info.epoch;
    resp.has_design = info.has_design;
    resp.Encode(body);
    return OkStatus();
  }

  if (!hello_done_) {
    return FailedPrecondition("handshake required before " +
                              std::string(MsgTypeName(request.type)));
  }

  switch (type) {
    case MsgType::kInstallReq: {
      IPSA_ASSIGN_OR_RETURN(InstallRequest req, InstallRequest::Decode(r));
      IPSA_ASSIGN_OR_RETURN(InstallOutcome out,
                            backend_->Install(req.kind, req.source));
      InstallResponse resp;
      resp.compile_ms = out.compile_ms;
      resp.load_ms = out.load_ms;
      resp.epoch = out.epoch;
      resp.Encode(body);
      return OkStatus();
    }
    case MsgType::kTableOpReq: {
      IPSA_ASSIGN_OR_RETURN(TableOp op, TableOp::Decode(r));
      return backend_->ApplyTableOp(op);
    }
    case MsgType::kTableBatchReq: {
      IPSA_ASSIGN_OR_RETURN(TableBatchRequest req,
                            TableBatchRequest::Decode(r));
      TableBatchResponse resp;
      for (uint32_t i = 0; i < req.ops.size(); ++i) {
        Status s = backend_->ApplyTableOp(req.ops[i]);
        if (!s.ok()) {
          // The ops before the failure stay applied (the batch is a latency
          // optimization, not a transaction); the failing index travels in
          // the error message since non-OK responses carry no body.
          return Status(s.code(), "batch op " + std::to_string(i) + ": " +
                                      s.message());
        }
        ++resp.applied;
      }
      resp.Encode(body);
      return OkStatus();
    }
    case MsgType::kTableBulkReq: {
      IPSA_ASSIGN_OR_RETURN(TableBulkRequest req, TableBulkRequest::Decode(r));
      // Bulk frames never abort the stream: per-op failures travel in the
      // response body and the remaining ops still apply.
      IPSA_ASSIGN_OR_RETURN(TableBulkResponse resp,
                            backend_->ApplyTableBulk(req));
      resp.Encode(body);
      return OkStatus();
    }
    case MsgType::kApiReq: {
      IPSA_ASSIGN_OR_RETURN(compiler::ApiSpec api, backend_->Api());
      PutApiSpec(body, api);
      return OkStatus();
    }
    case MsgType::kStatsReq: {
      IPSA_ASSIGN_OR_RETURN(StatsResponse resp, backend_->QueryStats());
      resp.Encode(body);
      return OkStatus();
    }
    case MsgType::kEpochReq: {
      BackendInfo info = backend_->Info();
      EpochResponse resp;
      resp.epoch = info.epoch;
      resp.has_design = info.has_design;
      resp.arch = info.arch;
      resp.Encode(body);
      return OkStatus();
    }
    case MsgType::kDrainReq: {
      IPSA_ASSIGN_OR_RETURN(DrainRequest req, DrainRequest::Decode(r));
      IPSA_ASSIGN_OR_RETURN(uint32_t processed, backend_->Drain(req.workers));
      DrainResponse resp;
      resp.processed = processed;
      resp.Encode(body);
      return OkStatus();
    }
    case MsgType::kMetricsReq: {
      IPSA_ASSIGN_OR_RETURN(MetricsResponse resp, backend_->QueryMetrics());
      resp.Encode(body);
      return OkStatus();
    }
    case MsgType::kTracesReq: {
      IPSA_ASSIGN_OR_RETURN(TracesRequest req, TracesRequest::Decode(r));
      IPSA_ASSIGN_OR_RETURN(TracesResponse resp,
                            backend_->DrainTraces(req.max));
      resp.Encode(body);
      return OkStatus();
    }
    case MsgType::kResetMetricsReq:
      return backend_->ResetMetrics();
    default:
      return InvalidArgument("unhandled request tag " +
                             std::to_string(request.type));
  }
}

}  // namespace ipsa::rpc
