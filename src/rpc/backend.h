// What a control-channel server serves: the Backend interface decouples the
// protocol dispatcher from the device behind it (pbm or ipbm with their flow
// controllers — see daemon/backends.h — or a fake in tests).
#pragma once

#include <cstdint>
#include <string>

#include "rpc/protocol.h"
#include "util/status.h"

namespace ipsa::rpc {

struct BackendInfo {
  std::string arch;
  uint32_t port_count = 0;
  bool has_design = false;
  uint64_t epoch = 0;
};

struct InstallOutcome {
  double compile_ms = 0;
  double load_ms = 0;
  uint64_t epoch = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendInfo Info() = 0;
  virtual Result<InstallOutcome> Install(InstallKind kind,
                                         const std::string& source) = 0;
  virtual Status ApplyTableOp(const TableOp& op) = 0;
  virtual Result<compiler::ApiSpec> Api() = 0;
  virtual Result<StatsResponse> QueryStats() = 0;
  // Drains all pending RX through the pipeline (quiesce); returns the
  // number of packets processed.
  virtual Result<uint32_t> Drain(uint32_t workers) = 0;

  // Telemetry surface. Default-implemented so fakes and backends without a
  // collector keep compiling; real device backends override all three.
  virtual Result<MetricsResponse> QueryMetrics() {
    return Unimplemented("backend has no telemetry");
  }
  virtual Result<TracesResponse> DrainTraces(uint32_t max) {
    (void)max;
    return Unimplemented("backend has no telemetry");
  }
  virtual Status ResetMetrics() {
    return Unimplemented("backend has no telemetry");
  }
};

}  // namespace ipsa::rpc
