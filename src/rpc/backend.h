// What a control-channel server serves: the Backend interface decouples the
// protocol dispatcher from the device behind it (pbm or ipbm with their flow
// controllers — see daemon/backends.h — or a fake in tests).
#pragma once

#include <cstdint>
#include <string>

#include "rpc/protocol.h"
#include "util/status.h"

namespace ipsa::rpc {

struct BackendInfo {
  std::string arch;
  uint32_t port_count = 0;
  bool has_design = false;
  uint64_t epoch = 0;
};

struct InstallOutcome {
  double compile_ms = 0;
  double load_ms = 0;
  uint64_t epoch = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendInfo Info() = 0;
  virtual Result<InstallOutcome> Install(InstallKind kind,
                                         const std::string& source) = 0;
  virtual Status ApplyTableOp(const TableOp& op) = 0;
  // One frame of a pipelined bulk stream: applies every op, collecting
  // per-op failures (strict kAdd — duplicates fail, they don't upsert).
  // Device backends override to batch index publication per table; the
  // default serves fakes by looping ApplyTableOp (kAdd stays upsert there,
  // close enough for backends without real tables).
  virtual Result<TableBulkResponse> ApplyTableBulk(
      const TableBulkRequest& req) {
    TableBulkResponse resp;
    for (uint32_t i = 0; i < req.ops.size(); ++i) {
      Status s = ApplyTableOp(req.ops[i]);
      if (s.ok()) {
        ++resp.applied;
      } else {
        resp.failures.push_back(BulkFailure{
            i, static_cast<uint16_t>(s.code()), s.message()});
      }
    }
    return resp;
  }
  virtual Result<compiler::ApiSpec> Api() = 0;
  virtual Result<StatsResponse> QueryStats() = 0;
  // Drains all pending RX through the pipeline (quiesce); returns the
  // number of packets processed.
  virtual Result<uint32_t> Drain(uint32_t workers) = 0;

  // Telemetry surface. Default-implemented so fakes and backends without a
  // collector keep compiling; real device backends override all three.
  virtual Result<MetricsResponse> QueryMetrics() {
    return Unimplemented("backend has no telemetry");
  }
  virtual Result<TracesResponse> DrainTraces(uint32_t max) {
    (void)max;
    return Unimplemented("backend has no telemetry");
  }
  virtual Status ResetMetrics() {
    return Unimplemented("backend has no telemetry");
  }
};

}  // namespace ipsa::rpc
