// Blocking control-channel client.
//
// Failure model (the part the robustness tests pin down):
//  * Every call has a deadline (ClientOptions::call_timeout_ms). A call that
//    times out fails with kDeadlineExceeded and the connection is dropped —
//    the byte stream can no longer be trusted to be frame-aligned once a
//    response may arrive for an abandoned call.
//  * A dropped or never-established connection is re-dialed transparently on
//    the next call, with exponential backoff between attempts. Only the call
//    that hit the failure reports it; the client object stays usable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/protocol.h"
#include "wire/socket.h"
#include "wire/wire.h"

namespace ipsa::rpc {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string client_name = "client";
  int connect_timeout_ms = 2000;
  int call_timeout_ms = 5000;
  // Reconnect-with-backoff: attempts per call before giving up; the delay
  // doubles from backoff_initial_ms up to backoff_max_ms.
  int max_connect_attempts = 4;
  int backoff_initial_ms = 20;
  int backoff_max_ms = 1000;
};

class Client {
 public:
  explicit Client(ClientOptions options) : options_(std::move(options)) {}
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Dial + handshake now (otherwise the first call does it lazily).
  Status Connect();
  void Close();
  bool connected() const { return sock_.valid(); }

  // Handshake result of the current connection.
  const HelloResponse& server_info() const { return info_; }

  Result<InstallResponse> Install(InstallKind kind, const std::string& source);
  Status AddEntry(const std::string& table, const table::Entry& entry);
  Status ModifyEntry(const std::string& table, const table::Entry& entry);
  Status DeleteEntry(const std::string& table, const table::Entry& entry);
  Result<TableBatchResponse> ApplyBatch(const std::vector<TableOp>& ops);
  // Sends an already-encoded TableBatchRequest payload verbatim. The RBFRT
  // move: callers that react under a latency budget encode the batch once at
  // plan-compile time and the send path just frames bytes (src/reactor).
  Result<TableBatchResponse> ApplyBatchPrepacked(std::vector<uint8_t> payload);
  Result<compiler::ApiSpec> FetchApi();
  Result<StatsResponse> QueryStats();
  Result<EpochResponse> QueryEpoch();
  Result<DrainResponse> Drain(uint32_t workers = 1);
  Result<MetricsResponse> QueryMetrics();
  Result<TracesResponse> QueryTraces(uint32_t max = 0);
  Status ResetMetrics();

  // Test hook: severs the TCP connection without telling the client state
  // machine, so the next call exercises the transparent-reconnect path.
  void SeverConnectionForTest();

 private:
  // One request/response exchange; returns the response *body* reader input
  // (payload after the status prefix was checked OK).
  Result<std::vector<uint8_t>> Call(MsgType type,
                                    std::vector<uint8_t> payload);
  Status EnsureConnected();
  Status DialOnce();
  Status TableCall(TableOpKind op, const std::string& table,
                   const table::Entry& entry);

  ClientOptions options_;
  wire::Socket sock_;
  wire::FrameDecoder decoder_;
  HelloResponse info_;
  uint32_t next_seq_ = 1;
};

}  // namespace ipsa::rpc
