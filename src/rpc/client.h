// Blocking control-channel client.
//
// Failure model (the part the robustness tests pin down):
//  * Every call has a deadline (ClientOptions::call_timeout_ms). A call that
//    times out fails with kDeadlineExceeded and the connection is dropped —
//    the byte stream can no longer be trusted to be frame-aligned once a
//    response may arrive for an abandoned call.
//  * A dropped or never-established connection is re-dialed transparently on
//    the next call, with exponential backoff between attempts. Only the call
//    that hit the failure reports it; the client object stays usable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rpc/protocol.h"
#include "wire/socket.h"
#include "wire/wire.h"

namespace ipsa::rpc {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string client_name = "client";
  int connect_timeout_ms = 2000;
  int call_timeout_ms = 5000;
  // Reconnect-with-backoff: attempts per call before giving up; the delay
  // doubles from backoff_initial_ms up to backoff_max_ms.
  int max_connect_attempts = 4;
  int backoff_initial_ms = 20;
  int backoff_max_ms = 1000;
};

// Pipelined bulk-insert stream (see docs/control_plane.md). The client cuts
// the op list into kTableBulkReq frames of `ops_per_frame` and keeps up to
// `window` frames on the wire before blocking on the oldest ack, so the
// server applies frame N while frames N+1..N+window-1 are in flight — one
// RTT is paid once, not per frame.
struct BulkOptions {
  uint32_t window = 8;
  uint32_t ops_per_frame = 1024;
};

// Snapshot handed to the progress callback after each window ack.
struct BulkProgress {
  uint64_t frames_acked = 0;
  uint64_t frames_total = 0;
  uint64_t ops_acked = 0;  // ops covered by acked frames (applied + failed)
  uint64_t applied = 0;
  uint64_t failed = 0;
};

struct BulkResult {
  uint64_t applied = 0;
  // Failure indexes are rebased to the caller's op list (global, not
  // per-frame).
  std::vector<BulkFailure> failures;
};

class Client {
 public:
  explicit Client(ClientOptions options) : options_(std::move(options)) {}
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Dial + handshake now (otherwise the first call does it lazily).
  Status Connect();
  void Close();
  bool connected() const { return sock_.valid(); }

  // Handshake result of the current connection.
  const HelloResponse& server_info() const { return info_; }

  Result<InstallResponse> Install(InstallKind kind, const std::string& source);
  Status AddEntry(const std::string& table, const table::Entry& entry);
  Status ModifyEntry(const std::string& table, const table::Entry& entry);
  Status DeleteEntry(const std::string& table, const table::Entry& entry);
  Result<TableBatchResponse> ApplyBatch(const std::vector<TableOp>& ops);
  // Sends an already-encoded TableBatchRequest payload verbatim. The RBFRT
  // move: callers that react under a latency budget encode the batch once at
  // plan-compile time and the send path just frames bytes (src/reactor).
  Result<TableBatchResponse> ApplyBatchPrepacked(std::vector<uint8_t> payload);
  // Streams `ops` as pipelined kTableBulkReq frames (strict kAdd, per-op
  // failures — a duplicate degrades one entry, not the stream). `progress`
  // (optional) fires after every acked frame. Any transport failure drops
  // the connection and fails the call: the applied count so far is unknown.
  Result<BulkResult> ApplyBulk(
      const std::vector<TableOp>& ops, const BulkOptions& bulk = {},
      const std::function<void(const BulkProgress&)>& progress = nullptr);
  Result<compiler::ApiSpec> FetchApi();
  Result<StatsResponse> QueryStats();
  Result<EpochResponse> QueryEpoch();
  Result<DrainResponse> Drain(uint32_t workers = 1);
  Result<MetricsResponse> QueryMetrics();
  Result<TracesResponse> QueryTraces(uint32_t max = 0);
  Status ResetMetrics();

  // Test hook: severs the TCP connection without telling the client state
  // machine, so the next call exercises the transparent-reconnect path.
  void SeverConnectionForTest();

 private:
  // One request/response exchange; returns the response *body* reader input
  // (payload after the status prefix was checked OK).
  Result<std::vector<uint8_t>> Call(MsgType type,
                                    std::vector<uint8_t> payload);
  Status EnsureConnected();
  Status DialOnce();
  // Receives the next frame off the connection (feeding the decoder as
  // needed) until `deadline_ms` (absolute, steady clock). Drops stale
  // frames whose seq precedes `want_seq`; fails on anything else
  // unexpected. Closes the connection on any failure.
  Result<wire::Frame> RecvResponse(uint16_t want_type, uint32_t want_seq,
                                   int64_t deadline_ms);
  Status TableCall(TableOpKind op, const std::string& table,
                   const table::Entry& entry);

  ClientOptions options_;
  wire::Socket sock_;
  wire::FrameDecoder decoder_;
  HelloResponse info_;
  uint32_t next_seq_ = 1;
};

}  // namespace ipsa::rpc
