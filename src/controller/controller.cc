#include "controller/controller.h"

#include "controller/designs.h"
#include "p4lite/parser.h"
#include "rp4/parser.h"
#include "rp4/printer.h"
#include "util/clock.h"
#include "util/logging.h"

namespace ipsa::controller {

Result<FlowTiming> Rp4FlowController::LoadBaseFromP4(
    const std::string& p4_source) {
  util::Stopwatch compile_clock;
  // p4c stand-in: P4 -> HLIR.
  IPSA_ASSIGN_OR_RETURN(p4lite::Hlir hlir, p4lite::ParseP4(p4_source));
  // rp4fc: HLIR -> rP4 *text* (the real flow writes rP4 source out)...
  IPSA_ASSIGN_OR_RETURN(compiler::Rp4fcResult fc, compiler::RunRp4fc(hlir));
  std::string rp4_text = rp4::PrintRp4(fc.program);
  // ...which rp4bc then consumes.
  IPSA_ASSIGN_OR_RETURN(rp4::Rp4Program program, rp4::ParseRp4(rp4_text));
  program.name = "base";
  FlowTiming first_half;
  first_half.compile_ms = compile_clock.ElapsedMillis();
  IPSA_ASSIGN_OR_RETURN(FlowTiming rest, LoadBase(std::move(program)));
  rest.compile_ms += first_half.compile_ms;
  return rest;
}

Result<FlowTiming> Rp4FlowController::LoadBaseFromRp4(
    const std::string& rp4_source) {
  util::Stopwatch compile_clock;
  IPSA_ASSIGN_OR_RETURN(rp4::Rp4Program program, rp4::ParseRp4(rp4_source));
  FlowTiming parse_time;
  parse_time.compile_ms = compile_clock.ElapsedMillis();
  IPSA_ASSIGN_OR_RETURN(FlowTiming rest, LoadBase(std::move(program)));
  rest.compile_ms += parse_time.compile_ms;
  return rest;
}

Result<FlowTiming> Rp4FlowController::LoadBase(rp4::Rp4Program program) {
  FlowTiming timing;
  util::Stopwatch compile_clock;
  IPSA_ASSIGN_OR_RETURN(compiler::Rp4bcResult compiled,
                        compiler::CompileBase(program, options_));
  timing.compile_ms = compile_clock.ElapsedMillis();

  util::Stopwatch load_clock;
  IPSA_RETURN_IF_ERROR(
      device_->LoadBaseDesign(compiled.design, compiled.layout.assignments));
  timing.load_ms = load_clock.ElapsedMillis();

  program_ = std::move(program);
  layout_ = std::move(compiled.layout);
  design_ = std::move(compiled.design);
  api_ = compiler::BuildApiSpec(design_);
  return timing;
}

Result<FlowTiming> Rp4FlowController::ApplyScript(
    const std::string& script_text, const SnippetResolver& resolver) {
  FlowTiming timing;
  util::Stopwatch compile_clock;
  IPSA_ASSIGN_OR_RETURN(compiler::UpdateRequest request,
                        ParseScript(script_text, resolver));
  IPSA_ASSIGN_OR_RETURN(
      compiler::UpdatePlan plan,
      compiler::CompileUpdate(program_, layout_, request, options_));
  timing.compile_ms = compile_clock.ElapsedMillis();

  util::Stopwatch load_clock;
  IPSA_RETURN_IF_ERROR(compiler::ApplyPlanToDevice(plan, *device_));
  timing.load_ms = load_clock.ElapsedMillis();

  program_ = std::move(plan.updated_program);
  layout_ = std::move(plan.updated_layout);
  design_ = std::move(plan.updated_design);
  api_ = compiler::BuildApiSpec(design_);
  IPSA_LOG(kInfo) << "rP4 flow: applied update ('" << request.func_name
                  << "'), " << plan.ops.size() << " device ops, "
                  << plan.relocations << " relocations";
  return timing;
}

Status Rp4FlowController::AddEntry(const std::string& table,
                                   const table::Entry& entry, bool upsert) {
  return device_->AddEntry(table, entry, upsert);
}

Result<table::Entry> Rp4FlowController::BuildEntry(
    std::string_view table, std::string_view action,
    const std::vector<KeyValue>& key_values,
    const std::vector<mem::BitString>& action_args, uint32_t prefix_len,
    uint32_t priority) {
  EntryBuilder builder(api_);
  return builder.Build(table, action, key_values, action_args, prefix_len,
                       priority);
}

std::string Rp4FlowController::CurrentRp4Source() const {
  return rp4::PrintRp4(program_);
}

// ---------------------------------------------------------------------------

Result<FlowTiming> PisaFlowController::CompileAndLoad(
    const std::string& p4_source) {
  FlowTiming timing;
  util::Stopwatch compile_clock;
  IPSA_ASSIGN_OR_RETURN(p4lite::Hlir hlir, p4lite::ParseP4(p4_source));
  IPSA_ASSIGN_OR_RETURN(compiler::PisaBackendResult compiled,
                        compiler::RunPisaBackend(hlir, options_));
  // The monolithic "binary": serialize and reparse, as a real driver does.
  std::string design_json = compiled.design.ToJson().Dump();
  timing.compile_ms = compile_clock.ElapsedMillis();

  util::Stopwatch load_clock;
  IPSA_RETURN_IF_ERROR(device_->LoadDesignJson(design_json));
  // Full reload wiped every table: repopulate from the shadow store.
  for (const auto& [table, entries] : shadow_) {
    for (const auto& entry : entries) {
      Status s = device_->AddEntry(table, entry);
      if (!s.ok() && s.code() != StatusCode::kNotFound) {
        return s;
      }
      // kNotFound: the table no longer exists in the new design; its shadow
      // entries are dropped on the next AddEntry.
    }
  }
  timing.load_ms = load_clock.ElapsedMillis();
  api_ = compiler::BuildApiSpec(device_->design());
  return timing;
}

Status PisaFlowController::AddEntry(const std::string& table,
                                    const table::Entry& entry, bool upsert) {
  IPSA_RETURN_IF_ERROR(device_->AddEntry(table, entry, upsert));
  shadow_[table].push_back(entry);
  return OkStatus();
}

Result<table::Entry> PisaFlowController::BuildEntry(
    std::string_view table, std::string_view action,
    const std::vector<KeyValue>& key_values,
    const std::vector<mem::BitString>& action_args, uint32_t prefix_len,
    uint32_t priority) {
  EntryBuilder builder(api_);
  return builder.Build(table, action, key_values, action_args, prefix_len,
                       priority);
}

uint64_t PisaFlowController::shadow_entry_count() const {
  uint64_t n = 0;
  for (const auto& [table, entries] : shadow_) n += entries.size();
  return n;
}

}  // namespace ipsa::controller
