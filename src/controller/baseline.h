// Table population for the base design and the three use cases.
//
// The same entries are installed through either flow controller (both just
// expose AddEntry), so pbm and ipbm process identical traffic identically —
// the equivalence tests depend on this module.
#pragma once

#include <functional>

#include "compiler/rp4fc.h"
#include "net/workload.h"
#include "table/table.h"
#include "util/status.h"

namespace ipsa::controller {

using AddEntryFn =
    std::function<Status(const std::string& table, const table::Entry& entry)>;

struct BaselineConfig {
  uint32_t port_count = 16;
  // IPv4 destination pool; must match the workload generator's.
  uint32_t v4_dst_base = 0x0A000000;  // 10.0.0.0
  uint32_t v4_dst_count = 256;
  // Nexthop ids 100 .. 100+nexthop_count-1.
  uint32_t nexthop_count = 8;
  uint16_t l2_bd = 1;
  uint16_t l3_bd = 2;
  uint64_t router_mac_base = 0x021111110000ull;  // 16 router MACs
  uint64_t nh_dmac_base = 0x02AABBCC0000ull;
  uint64_t smac = 0x02DDDDDD0001ull;
  // IPv6 pool: 2001:db8:ff::/48 with low group 1..v6_dst_count.
  uint32_t v6_dst_count = 256;

  uint32_t NexthopOf(uint32_t dst_index) const {
    return 100 + dst_index % nexthop_count;
  }
  uint32_t PortOfNexthop(uint32_t nh) const { return nh % 8; }
};

// Fills port_map, bridge_vrf, l2_l3, the v4/v6 FIBs, nexthop, rewrite and
// dmac tables so the workload generator's traffic is fully routable.
Status PopulateBaseline(const compiler::ApiSpec& api, const AddEntryFn& add,
                        const BaselineConfig& config);

// C1: fills the ECMP selector buckets (replaces nexthop's role).
Status PopulateEcmp(const compiler::ApiSpec& api, const AddEntryFn& add,
                    const BaselineConfig& config, uint32_t buckets = 64);

// C2: fills local_sid (SR endpoint SIDs) and end_transit.
Status PopulateSrv6(const compiler::ApiSpec& api, const AddEntryFn& add,
                    const BaselineConfig& config, uint32_t sid_count = 16);

// C3: installs probe entries for the first `flow_count` IPv4 flows of the
// workload, with the given threshold.
Status PopulateProbe(const compiler::ApiSpec& api, const AddEntryFn& add,
                     const net::Workload& workload, uint32_t flow_count,
                     uint32_t threshold);

// The SID used by tests/examples for SR-endpoint traffic: 2001:db8:aa::<i>.
net::Ipv6Addr Srv6Sid(uint16_t index);

}  // namespace ipsa::controller
