#include "controller/designs.h"

namespace ipsa::controller::designs {

namespace {

// Shared declarations (headers, metadata, parser) of every P4 variant.
constexpr const char kP4Prologue[] = R"p4(
header ethernet_t {
  bit<48> dst_addr;
  bit<48> src_addr;
  bit<16> ether_type;
}
header ipv4_t {
  bit<4> version;
  bit<4> ihl;
  bit<6> dscp;
  bit<2> ecn;
  bit<16> total_len;
  bit<16> identification;
  bit<3> flags;
  bit<13> frag_offset;
  bit<8> ttl;
  bit<8> protocol;
  bit<16> hdr_checksum;
  bit<32> src_addr;
  bit<32> dst_addr;
}
header ipv6_t {
  bit<4> version;
  bit<8> traffic_class;
  bit<20> flow_label;
  bit<16> payload_len;
  bit<8> next_hdr;
  bit<8> hop_limit;
  bit<128> src_addr;
  bit<128> dst_addr;
}
header tcp_t {
  bit<16> src_port;
  bit<16> dst_port;
  bit<32> seq_no;
  bit<32> ack_no;
  bit<4> data_offset;
  bit<4> res;
  bit<8> flags;
  bit<16> window;
  bit<16> checksum;
  bit<16> urgent_ptr;
}
header udp_t {
  bit<16> src_port;
  bit<16> dst_port;
  bit<16> length;
  bit<16> checksum;
}
struct metadata_t {
  bit<16> if_index;
  bit<16> bd;
  bit<16> vrf;
  bit<1> l3;
  bit<16> nexthop;
}
)p4";

constexpr const char kP4HeadersStructBase[] = R"p4(
struct headers_t {
  ethernet_t ethernet;
  ipv4_t ipv4;
  ipv6_t ipv6;
  tcp_t tcp;
  udp_t udp;
}
)p4";

constexpr const char kP4ParserBase[] = R"p4(
parser MainParser(packet_in pkt, out headers_t hdr, inout metadata_t meta) {
  state start {
    pkt.extract(hdr.ethernet);
    transition select(hdr.ethernet.ether_type) {
      0x0800: parse_ipv4;
      0x86DD: parse_ipv6;
      default: accept;
    }
  }
  state parse_ipv4 {
    pkt.extract(hdr.ipv4);
    transition select(hdr.ipv4.protocol) {
      6: parse_tcp;
      17: parse_udp;
      default: accept;
    }
  }
  state parse_ipv6 {
    pkt.extract(hdr.ipv6);
    transition select(hdr.ipv6.next_hdr) {
      6: parse_tcp;
      17: parse_udp;
      default: accept;
    }
  }
  state parse_tcp { pkt.extract(hdr.tcp); transition accept; }
  state parse_udp { pkt.extract(hdr.udp); transition accept; }
}
)p4";

// Ingress actions + tables shared by all variants.
constexpr const char kP4IngressDecls[] = R"p4(
  action set_if_index(bit<16> if_index) { meta.if_index = if_index; }
  action set_bd_vrf(bit<16> bd, bit<16> vrf) { meta.bd = bd; meta.vrf = vrf; }
  action set_l3() { meta.l3 = 1; }
  action set_nexthop(bit<16> nexthop) { meta.nexthop = nexthop; }
  action set_nh_bd_dmac(bit<16> bd, bit<48> dmac) {
    meta.bd = bd;
    hdr.ethernet.dst_addr = dmac;
  }

  table port_map {
    key = { meta.ingress_port: exact; }
    actions = { set_if_index; NoAction; }
    size = 64;
  }
  table bridge_vrf {
    key = { meta.if_index: exact; }
    actions = { set_bd_vrf; NoAction; }
    size = 256;
  }
  table l2_l3 {
    key = { hdr.ethernet.dst_addr: exact; }
    actions = { set_l3; NoAction; }
    size = 64;
  }
  table ipv4_host {
    key = { hdr.ipv4.dst_addr: exact; }
    actions = { set_nexthop; NoAction; }
    size = 4096;
  }
  table ipv6_host {
    key = { hdr.ipv6.dst_addr: exact; }
    actions = { set_nexthop; NoAction; }
    size = 4096;
  }
  table ipv4_lpm {
    key = { hdr.ipv4.dst_addr: lpm; }
    actions = { set_nexthop; NoAction; }
    size = 8192;
  }
  table ipv6_lpm {
    key = { hdr.ipv6.dst_addr: lpm; }
    actions = { set_nexthop; NoAction; }
    size = 8192;
  }
  table nexthop {
    key = { meta.nexthop: exact; }
    actions = { set_nh_bd_dmac; NoAction; }
    size = 1024;
  }
)p4";

constexpr const char kP4Egress[] = R"p4(
control MainEgress(inout headers_t hdr, inout metadata_t meta) {
  action rewrite_v4(bit<48> smac) {
    hdr.ethernet.src_addr = smac;
    hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    update_checksum(hdr.ipv4, hdr_checksum);
  }
  action rewrite_v6(bit<48> smac) {
    hdr.ethernet.src_addr = smac;
    hdr.ipv6.hop_limit = hdr.ipv6.hop_limit - 1;
  }
  action set_port(bit<9> port) { forward(port); }

  table l2_l3_rewrite {
    key = { meta.bd: exact; }
    actions = { rewrite_v4; NoAction; }
    size = 256;
  }
  table l2_l3_rewrite_v6 {
    key = { meta.bd: exact; }
    actions = { rewrite_v6; NoAction; }
    size = 256;
  }
  table dmac {
    key = { meta.bd: exact; hdr.ethernet.dst_addr: exact; }
    actions = { set_port; NoAction; }
    size = 4096;
  }

  apply {
    if (meta.l3 == 1) {
      if (hdr.ipv4.isValid()) { l2_l3_rewrite.apply(); }
      else if (hdr.ipv6.isValid()) { l2_l3_rewrite_v6.apply(); }
    }
    dmac.apply();
  }
}
)p4";

std::string BuildP4(const std::string& headers_struct,
                    const std::string& parser,
                    const std::string& extra_ingress_decls,
                    const std::string& ingress_apply) {
  std::string out = kP4Prologue;
  out += headers_struct;
  out += parser;
  out += "control MainIngress(inout headers_t hdr, inout metadata_t meta) "
         "{\n";
  out += kP4IngressDecls;
  out += extra_ingress_decls;
  out += "  apply {\n";
  out += ingress_apply;
  out += "  }\n}\n";
  out += kP4Egress;
  return out;
}

constexpr const char kBaseIngressApply[] = R"p4(
    port_map.apply();
    bridge_vrf.apply();
    l2_l3.apply();
    if (meta.l3 == 1) {
      if (hdr.ipv4.isValid()) { ipv4_host.apply(); }
      else if (hdr.ipv6.isValid()) { ipv6_host.apply(); }
      if (hdr.ipv4.isValid()) { ipv4_lpm.apply(); }
      else if (hdr.ipv6.isValid()) { ipv6_lpm.apply(); }
      nexthop.apply();
    }
)p4";

}  // namespace

const std::string& BaseP4() {
  static const std::string kSource =
      BuildP4(kP4HeadersStructBase, kP4ParserBase, "", kBaseIngressApply);
  return kSource;
}

// --- C1: ECMP ---------------------------------------------------------------

const std::string& EcmpRp4Snippet() {
  // The rP4 of Fig. 5(a): two hash (selector) tables and one stage hosting
  // both, replacing the nexthop stage (H -> K,L in Fig. 4).
  static const std::string kSource = R"rp4(
table ecmp_ipv4 {
  key = {
    meta.nexthop: hash;
    ipv4.dst_addr: hash;  // similar with P4's selector
  }
  size = 4096;
}
table ecmp_ipv6 {
  key = {
    meta.nexthop: hash;
    ipv6.dst_addr: hash;
  }
  size = 4096;
}
// set egress bridge and dmac
action set_bd_dmac(bit<16> bd, bit<48> dmac) {
  meta.bd = bd;
  ethernet.dst_addr = dmac;
}
// parse ipv4 or ipv6, match table
stage ecmp { /*** parser-matcher-executor ***/
  parser { ipv4; ipv6; }
  matcher {
    if (ipv4.isValid()) ecmp_ipv4.apply();
    else if (ipv6.isValid()) ecmp_ipv6.apply();
    else;
  }
  executor {
    1: set_bd_dmac;
    default: NoAction;
  }
}
)rp4";
  return kSource;
}

const std::string& EcmpScript() {
  static const std::string kSource = R"(
load ecmp.rp4 --func_name ecmp
add_link ipv4_lpm ecmp
del_link ipv4_lpm nexthop
add_link ecmp l2_l3_rewrite
del_link nexthop l2_l3_rewrite
)";
  return kSource;
}

const std::string& BasePlusEcmpP4() {
  static const std::string kEcmpDecls = R"p4(
  action set_bd_dmac(bit<16> bd, bit<48> dmac) {
    meta.bd = bd;
    hdr.ethernet.dst_addr = dmac;
  }
  table ecmp_ipv4 {
    key = { meta.nexthop: hash; hdr.ipv4.dst_addr: hash; }
    actions = { set_bd_dmac; NoAction; }
    size = 4096;
  }
  table ecmp_ipv6 {
    key = { meta.nexthop: hash; hdr.ipv6.dst_addr: hash; }
    actions = { set_bd_dmac; NoAction; }
    size = 4096;
  }
)p4";
  static const std::string kApply = R"p4(
    port_map.apply();
    bridge_vrf.apply();
    l2_l3.apply();
    if (meta.l3 == 1) {
      if (hdr.ipv4.isValid()) { ipv4_host.apply(); }
      else if (hdr.ipv6.isValid()) { ipv6_host.apply(); }
      if (hdr.ipv4.isValid()) { ipv4_lpm.apply(); }
      else if (hdr.ipv6.isValid()) { ipv6_lpm.apply(); }
      if (hdr.ipv4.isValid()) { ecmp_ipv4.apply(); }
      else if (hdr.ipv6.isValid()) { ecmp_ipv6.apply(); }
    }
)p4";
  static const std::string kSource =
      BuildP4(kP4HeadersStructBase, kP4ParserBase, kEcmpDecls, kApply);
  return kSource;
}

const std::string& EcmpRemoveScript() {
  // Offloading restores the nexthop stage's links; the controller reloads
  // the nexthop stage via the base design (function removal flow).
  static const std::string kSource = R"(
remove --func_name ecmp
)";
  return kSource;
}

// --- C2: SRv6 ----------------------------------------------------------------

const std::string& Srv6Rp4Snippet() {
  // New protocol header (SRH), two tables (local_sid for SR endpoints,
  // end_transit for transit nodes), one stage after the L2/L3 decision.
  static const std::string kSource = R"rp4(
header srh {
  bit<8> next_hdr;
  bit<8> hdr_ext_len;
  bit<8> routing_type;
  bit<8> segments_left;
  bit<8> last_entry;
  bit<8> flags;
  bit<16> tag;
  varsize(hdr_ext_len, 1, 8);
  implicit parser(next_hdr) { }
}
table local_sid {
  key = { ipv6.dst_addr: exact; }
  size = 1024;
}
table end_transit {
  key = { ipv6.dst_addr: lpm; }
  size = 1024;
}
// SRH "End" behaviour (RFC 8754): SL -= 1; dst = SegmentList[SL].
action srv6_end() {
  srh.segments_left = srh.segments_left - 1;
  ipv6.dst_addr = get_raw(srh, 64 + (srh.segments_left << 7), 128);
}
action srv6_transit(bit<16> nexthop) {
  meta.nexthop = nexthop;
}
stage srv6 {
  parser { ipv6; srh; }
  matcher {
    if (srh.isValid() && srh.segments_left > 0) local_sid.apply();
    else if (ipv6.isValid()) end_transit.apply();
    else;
  }
  executor {
    1: srv6_end;
    2: srv6_transit;
    default: NoAction;
  }
}
)rp4";
  return kSource;
}

const std::string& Srv6Script() {
  // Fig. 5(c): load the function, splice the stage after the L2/L3
  // decision, and link the new header into the parse graph. The linkage
  // between routable headers is preserved so plain L3 still works.
  static const std::string kSource = R"(
load srv6.rp4 --func_name srv6
del_link l2_l3 ipv4_host
add_link l2_l3 srv6
add_link srv6 ipv4_host
link_header --pre ipv6 --next srh --tag 43
link_header --pre srh --next ipv6 --tag 41   // inner IPv6
link_header --pre srh --next ipv4 --tag 4    // inner IPv4
)";
  return kSource;
}

const std::string& BasePlusSrv6P4() {
  static const std::string kHeadersStruct = R"p4(
struct headers_t {
  ethernet_t ethernet;
  ipv4_t ipv4;
  ipv6_t ipv6;
  srh_t srh;
  tcp_t tcp;
  udp_t udp;
}
)p4";
  static const std::string kSrhHeader = R"p4(
header srh_t {
  bit<8> next_hdr;
  bit<8> hdr_ext_len;
  bit<8> routing_type;
  bit<8> segments_left;
  bit<8> last_entry;
  bit<8> flags;
  bit<16> tag;
  varsize(hdr_ext_len, 1, 8);
}
)p4";
  static const std::string kParser = R"p4(
parser MainParser(packet_in pkt, out headers_t hdr, inout metadata_t meta) {
  state start {
    pkt.extract(hdr.ethernet);
    transition select(hdr.ethernet.ether_type) {
      0x0800: parse_ipv4;
      0x86DD: parse_ipv6;
      default: accept;
    }
  }
  state parse_ipv4 {
    pkt.extract(hdr.ipv4);
    transition select(hdr.ipv4.protocol) {
      6: parse_tcp;
      17: parse_udp;
      default: accept;
    }
  }
  state parse_ipv6 {
    pkt.extract(hdr.ipv6);
    transition select(hdr.ipv6.next_hdr) {
      43: parse_srh;
      6: parse_tcp;
      17: parse_udp;
      default: accept;
    }
  }
  state parse_srh { pkt.extract(hdr.srh); transition accept; }
  state parse_tcp { pkt.extract(hdr.tcp); transition accept; }
  state parse_udp { pkt.extract(hdr.udp); transition accept; }
}
)p4";
  static const std::string kSrv6Decls = R"p4(
  action srv6_end() {
    hdr.srh.segments_left = hdr.srh.segments_left - 1;
    hdr.ipv6.dst_addr = get_raw(hdr.srh, 64 + (hdr.srh.segments_left << 7), 128);
  }
  action srv6_transit(bit<16> nexthop) { meta.nexthop = nexthop; }
  table local_sid {
    key = { hdr.ipv6.dst_addr: exact; }
    actions = { srv6_end; NoAction; }
    size = 1024;
  }
  table end_transit {
    key = { hdr.ipv6.dst_addr: lpm; }
    actions = { srv6_transit; NoAction; }
    size = 1024;
  }
)p4";
  static const std::string kApply = R"p4(
    port_map.apply();
    bridge_vrf.apply();
    l2_l3.apply();
    if (hdr.srh.isValid()) { local_sid.apply(); }
    else if (hdr.ipv6.isValid()) { end_transit.apply(); }
    if (meta.l3 == 1) {
      if (hdr.ipv4.isValid()) { ipv4_host.apply(); }
      else if (hdr.ipv6.isValid()) { ipv6_host.apply(); }
      if (hdr.ipv4.isValid()) { ipv4_lpm.apply(); }
      else if (hdr.ipv6.isValid()) { ipv6_lpm.apply(); }
      nexthop.apply();
    }
)p4";
  static const std::string kSource =
      BuildP4(kSrhHeader + kHeadersStruct, kParser, kSrv6Decls, kApply);
  return kSource;
}

// --- C3: flow probe -----------------------------------------------------------

const std::string& ProbeRp4Snippet() {
  static const std::string kSource = R"rp4(
register<bit<64>> probe_cnt[1024];
table flow_probe {
  key = {
    ipv4.src_addr: exact;
    ipv4.dst_addr: exact;
  }
  size = 1024;
}
// Count packets of the flow; mark once the threshold is exceeded so the
// controller can apply ACL/QoS to it.
action probe_count(bit<16> idx, bit<32> threshold) {
  probe_cnt[idx] = probe_cnt[idx] + 1;
  if (probe_cnt[idx] > threshold) {
    mark();
  }
}
stage flow_probe {
  parser { ipv4; }
  matcher {
    if (ipv4.isValid()) flow_probe.apply();
    else;
  }
  executor {
    1: probe_count;
    default: NoAction;
  }
}
)rp4";
  return kSource;
}

const std::string& ProbeScript() {
  static const std::string kSource = R"(
load probe.rp4 --func_name probe
add_link ipv4_lpm flow_probe
add_link flow_probe nexthop
del_link ipv4_lpm nexthop
)";
  return kSource;
}

const std::string& ProbeV2Rp4Snippet() {
  // Identical structure to ProbeRp4Snippet — same stage name, table shape,
  // and register — but the executor logic escalates to dropping.
  static const std::string kSource = R"rp4(
register<bit<64>> probe_cnt[1024];
table flow_probe {
  key = {
    ipv4.src_addr: exact;
    ipv4.dst_addr: exact;
  }
  size = 1024;
}
action probe_count(bit<16> idx, bit<32> threshold) {
  probe_cnt[idx] = probe_cnt[idx] + 1;
  if (probe_cnt[idx] > threshold) {
    drop();
  }
}
stage flow_probe {
  parser { ipv4; }
  matcher {
    if (ipv4.isValid()) flow_probe.apply();
    else;
  }
  executor {
    1: probe_count;
    default: NoAction;
  }
}
)rp4";
  return kSource;
}

const std::string& ProbeUpdateScript() {
  static const std::string kSource = R"(
update probe_v2.rp4 --func_name probe
)";
  return kSource;
}

const std::string& ProbeRemoveScript() {
  static const std::string kSource = R"(
remove --func_name probe
)";
  return kSource;
}

const std::string& BasePlusProbeP4() {
  static const std::string kProbeDecls = R"p4(
  action probe_count(bit<16> idx, bit<32> threshold) {
    probe_cnt[idx] = probe_cnt[idx] + 1;
    if (probe_cnt[idx] > threshold) {
      mark();
    }
  }
  table flow_probe {
    key = { hdr.ipv4.src_addr: exact; hdr.ipv4.dst_addr: exact; }
    actions = { probe_count; NoAction; }
    size = 1024;
  }
)p4";
  static const std::string kApply = R"p4(
    port_map.apply();
    bridge_vrf.apply();
    l2_l3.apply();
    if (meta.l3 == 1) {
      if (hdr.ipv4.isValid()) { ipv4_host.apply(); }
      else if (hdr.ipv6.isValid()) { ipv6_host.apply(); }
      if (hdr.ipv4.isValid()) { ipv4_lpm.apply(); }
      else if (hdr.ipv6.isValid()) { ipv6_lpm.apply(); }
      if (hdr.ipv4.isValid()) { flow_probe.apply(); }
      nexthop.apply();
    }
)p4";
  static const std::string kSource = BuildP4(
      std::string("register<bit<64>> probe_cnt[1024];\n") +
          kP4HeadersStructBase,
      kP4ParserBase, kProbeDecls, kApply);
  return kSource;
}

const std::string& TelemetryRp4Snippet() {
  // EtherType 0x88B5 is the IEEE "local experimental" value. The pushed
  // header preserves the original EtherType in next_type so a downstream
  // collector can decapsulate.
  static const std::string kSource = R"rp4(
header tlm {
  bit<16> next_type;
  bit<16> ingress_port;
  bit<32> hop_count;
  implicit parser(next_type) { }
}
register<bit<64>> tlm_seq[1];
table tlm_filter {
  key = { ipv4.dst_addr: lpm; }
  size = 256;
}
action tlm_push() {
  push_header(tlm, ethernet);
  tlm.next_type = ethernet.ether_type;
  tlm.ingress_port = meta.ingress_port;
  tlm_seq[0] = tlm_seq[0] + 1;
  tlm.hop_count = tlm_seq[0];
  ethernet.ether_type = 0x88B5;
}
stage telemetry {
  parser { ipv4; }
  matcher {
    if (ipv4.isValid()) tlm_filter.apply();
    else;
  }
  executor {
    1: tlm_push;
    default: NoAction;
  }
}
)rp4";
  return kSource;
}

const std::string& TelemetryScript() {
  // Runs at egress, after the L3 rewrite and before the DMAC lookup.
  static const std::string kSource = R"(
load telemetry.rp4 --func_name telemetry
add_link l2_l3_rewrite telemetry
add_link telemetry dmac
del_link l2_l3_rewrite dmac
)";
  return kSource;
}

const std::string& TelemetryRemoveScript() {
  static const std::string kSource = R"(
remove --func_name telemetry
)";
  return kSource;
}

// --- fabric: leaf uplink ECMP + rolling-upgrade ACL --------------------------

const std::string& FabricEcmpRp4Snippet() {
  // Leaf-switch uplink selector (see src/fabric/leaf_spine.cc). Hashing
  // src+dst (not meta.nexthop) pins one spine per flow regardless of which
  // FIB entry produced the nexthop, so withdrawing a spine's buckets moves
  // only the flows that hashed onto it.
  static const std::string kSource = R"rp4(
table fab_ecmp_v4 {
  key = {
    ipv4.src_addr: hash;
    ipv4.dst_addr: hash;
  }
  size = 4096;
}
action fab_set_spine(bit<16> bd, bit<48> dmac) {
  meta.bd = bd;
  ethernet.dst_addr = dmac;
}
stage fab_ecmp {
  parser { ipv4; }
  matcher {
    if (ipv4.isValid()) fab_ecmp_v4.apply();
    else;
  }
  executor {
    1: fab_set_spine;
    default: NoAction;
  }
}
)rp4";
  return kSource;
}

const std::string& FabricEcmpScript() {
  // Splice between the FIB and nexthop (keeping nexthop, unlike the stock
  // C1 script which replaces it): uplink flows miss nexthop and keep the
  // selector's spine choice; local flows hit it and get the host rewrite.
  // The two add_links are ordering constraints in the pipeline graph —
  // fab_ecmp lands after the v4 FIB and before nexthop.
  static const std::string kSource = R"(
load fab_ecmp.rp4 --func_name fab_ecmp
add_link ipv4_lpm fab_ecmp
add_link fab_ecmp nexthop
)";
  return kSource;
}

const std::string& FabricAclRp4Snippet() {
  static const std::string kSource = R"rp4(
table fab_acl_v4 {
  key = {
    ipv4.src_addr: exact;
  }
  size = 256;
}
action fab_deny() {
  drop();
}
stage fab_acl {
  parser { ipv4; }
  matcher {
    if (ipv4.isValid()) fab_acl_v4.apply();
    else;
  }
  executor {
    1: fab_deny;
    default: NoAction;
  }
}
)rp4";
  return kSource;
}

const std::string& FabricAclScript() {
  static const std::string kSource = R"(
load fab_acl.rp4 --func_name fab_acl
add_link l2_l3 fab_acl
del_link l2_l3 ipv4_host
add_link fab_acl ipv4_host
)";
  return kSource;
}

const std::string& FabricProbeRp4Snippet() {
  // Mark-on-miss: with the table empty every IPv4 packet takes the default
  // executor row and gets mark()ed, which telemetry counts per ingress port
  // as packets_marked. Forwarding metadata is untouched, so splicing or
  // removing the stage mid-traffic cannot change delivery — the fabric
  // conservation oracle and the shadow twins both hold across a toggle.
  static const std::string kSource = R"rp4(
table fab_probe_flows {
  key = { ipv4.src_addr: exact; ipv4.dst_addr: exact; }
  size = 512;
}
action fab_probe_mark() {
  mark();
}
stage fab_probe {
  parser { ipv4; }
  matcher {
    if (ipv4.isValid()) fab_probe_flows.apply();
    else;
  }
  executor {
    1: NoAction;
    default: fab_probe_mark;
  }
}
)rp4";
  return kSource;
}

const std::string& FabricProbeScript() {
  // Egress splice, same seam the telemetry stage uses: after the L3 rewrite,
  // before the DMAC lookup. Keeping it at egress means it composes with the
  // ingress splices (fab_ecmp, fab_acl) without touching their edges.
  static const std::string kSource = R"(
load fab_probe.rp4 --func_name fab_probe
add_link l2_l3_rewrite fab_probe
add_link fab_probe dmac
del_link l2_l3_rewrite dmac
)";
  return kSource;
}

const std::string& FabricProbeRemoveScript() {
  // remove bridges predecessors to successors, restoring
  // l2_l3_rewrite -> dmac.
  static const std::string kSource = R"(
remove --func_name fab_probe
)";
  return kSource;
}

// --- C5: in-network compute — allreduce --------------------------------------

namespace {

// Shared between v1 and v2 so the in-place update demonstrably keeps the
// aggregation semantics (and therefore the register state) intact. 256 slots;
// the slot index is masked so a hostile slot value cannot run off the
// register file. The worker bitmap register gives exactly-once accumulation
// under retransmits; `full` (the all-workers mask) arrives as action data so
// the controller picks the job size at entry-install time.
std::string AllreduceSnippetSource(bool v2) {
  std::string dup_track = v2 ? "    alr_dups[(alr.slot & 255)] = "
                               "(alr_dups[(alr.slot & 255)] + 1);\n"
                             : "";
  std::string regs = std::string("register<bit<64>> alr_val0[256];\n") +
                     "register<bit<64>> alr_val1[256];\n" +
                     "register<bit<64>> alr_seen[256];\n" +
                     (v2 ? "register<bit<64>> alr_dups[256];\n" : "");
  return regs + R"rp4(header alr {
  bit<16> op;
  bit<16> slot;
  bit<16> worker;
  bit<16> shift;
  bit<32> tag_magic;
  bit<32> tag_flow;
  bit<32> tag_seq;
  bit<64> v0;
  bit<64> v1;
  implicit parser(op) { }
}
table alr_ctl {
  key = { alr.op: exact; }
  size = 4;
}
action alr_contribute(bit<64> full) {
  if ((((alr_seen[(alr.slot & 255)] >> alr.worker) & 1) == 1)) {
)rp4" + dup_track +
         R"rp4(    if ((alr_seen[(alr.slot & 255)] == full)) {
      alr.op = 2;
      alr.v0 = fxp_dequantize(alr_val0[(alr.slot & 255)], alr.shift);
      alr.v1 = fxp_dequantize(alr_val1[(alr.slot & 255)], alr.shift);
    } else {
      drop();
    }
  } else {
    alr_val0[(alr.slot & 255)] = sat_add(alr_val0[(alr.slot & 255)], fxp_quantize(alr.v0, alr.shift));
    alr_val1[(alr.slot & 255)] = sat_add(alr_val1[(alr.slot & 255)], fxp_quantize(alr.v1, alr.shift));
    alr_seen[(alr.slot & 255)] = (alr_seen[(alr.slot & 255)] | (1 << alr.worker));
    if ((alr_seen[(alr.slot & 255)] == full)) {
      alr.op = 2;
      alr.v0 = fxp_dequantize(alr_val0[(alr.slot & 255)], alr.shift);
      alr.v1 = fxp_dequantize(alr_val1[(alr.slot & 255)], alr.shift);
    } else {
      drop();
    }
  }
}
stage alr_agg {
  parser { ipv4; alr; }
  matcher {
    if (alr.isValid() && alr.op == 1) alr_ctl.apply();
    else;
  }
  executor {
    1: alr_contribute;
    default: NoAction;
  }
}
)rp4";
}

}  // namespace

const std::string& AllreduceRp4Snippet() {
  static const std::string kSource = AllreduceSnippetSource(/*v2=*/false);
  return kSource;
}

const std::string& AllreduceV2Rp4Snippet() {
  static const std::string kSource = AllreduceSnippetSource(/*v2=*/true);
  return kSource;
}

const std::string& AllreduceScript() {
  // Contributions are routed packets (dst = collector), so the stage sits
  // on the routed path: between the FIB and the nexthop resolution. The
  // new header hangs off IPv4 protocol 153 (experimentation, RFC 3692).
  static const std::string kSource = R"(
load alr.rp4 --func_name alr
link_header --pre ipv4 --next alr --tag 153
add_link ipv4_lpm alr_agg
add_link alr_agg nexthop
del_link ipv4_lpm nexthop
)";
  return kSource;
}

const std::string& FabricAllreduceScript() {
  // On a leaf the fab_ecmp selector already owns the ipv4_lpm -> nexthop
  // edge; aggregation splices after it. Local-destined results still work:
  // the nexthop stage overwrites fab_set_spine's choice for local routes.
  static const std::string kSource = R"(
load alr.rp4 --func_name alr
link_header --pre ipv4 --next alr --tag 153
add_link fab_ecmp alr_agg
add_link alr_agg nexthop
del_link fab_ecmp nexthop
)";
  return kSource;
}

const std::string& AllreduceUpdateScript() {
  static const std::string kSource = R"(
update alr_v2.rp4 --func_name alr
)";
  return kSource;
}

Result<std::string> ResolveSnippet(const std::string& file) {
  if (file == "ecmp.rp4") return EcmpRp4Snippet();
  if (file == "fab_ecmp.rp4") return FabricEcmpRp4Snippet();
  if (file == "fab_acl.rp4") return FabricAclRp4Snippet();
  if (file == "fab_probe.rp4") return FabricProbeRp4Snippet();
  if (file == "srv6.rp4") return Srv6Rp4Snippet();
  if (file == "probe.rp4") return ProbeRp4Snippet();
  if (file == "probe_v2.rp4") return ProbeV2Rp4Snippet();
  if (file == "telemetry.rp4") return TelemetryRp4Snippet();
  if (file == "alr.rp4") return AllreduceRp4Snippet();
  if (file == "alr_v2.rp4") return AllreduceV2Rp4Snippet();
  return NotFound("unknown snippet file '" + file + "'");
}

}  // namespace ipsa::controller::designs
