#include "controller/script.h"

#include "rp4/parser.h"
#include "util/strings.h"

namespace ipsa::controller {

namespace {

// Extracts `--flag value` pairs from tokens[start..].
Result<std::map<std::string, std::string>> ParseFlags(
    const std::vector<std::string>& tokens, size_t start) {
  std::map<std::string, std::string> flags;
  for (size_t i = start; i < tokens.size(); i += 2) {
    if (!util::StartsWith(tokens[i], "--")) {
      return InvalidArgument("expected --flag, got '" + tokens[i] + "'");
    }
    if (i + 1 >= tokens.size()) {
      return InvalidArgument("flag '" + tokens[i] + "' needs a value");
    }
    flags[tokens[i].substr(2)] = tokens[i + 1];
  }
  return flags;
}

}  // namespace

Result<compiler::UpdateRequest> ParseScript(const std::string& script_text,
                                            const SnippetResolver& resolver) {
  compiler::UpdateRequest request;
  bool have_load = false;

  for (const std::string& raw_line : util::Split(script_text, '\n')) {
    std::string line = util::Trim(raw_line);
    if (auto pos = line.find("//"); pos != std::string::npos) {
      line = util::Trim(line.substr(0, pos));
    }
    if (auto pos = line.find('#'); pos != std::string::npos) {
      line = util::Trim(line.substr(0, pos));
    }
    if (line.empty()) continue;
    std::vector<std::string> tokens = util::SplitWhitespace(line);
    const std::string& cmd = tokens[0];

    if (cmd == "load" || cmd == "update") {
      if (tokens.size() < 2) return InvalidArgument(cmd + ": missing file");
      IPSA_ASSIGN_OR_RETURN(auto flags, ParseFlags(tokens, 2));
      auto it = flags.find("func_name");
      if (it == flags.end()) {
        return InvalidArgument(cmd + ": missing --func_name");
      }
      request.func_name = it->second;
      if (resolver == nullptr) {
        return FailedPrecondition(cmd + ": no snippet resolver provided");
      }
      IPSA_ASSIGN_OR_RETURN(std::string source, resolver(tokens[1]));
      IPSA_ASSIGN_OR_RETURN(rp4::Rp4Program snippet,
                            rp4::ParseRp4Snippet(source));
      request.snippet = std::move(snippet);
      request.update = cmd == "update";
      have_load = true;
    } else if (cmd == "remove") {
      IPSA_ASSIGN_OR_RETURN(auto flags, ParseFlags(tokens, 1));
      auto it = flags.find("func_name");
      if (it == flags.end()) {
        return InvalidArgument("remove: missing --func_name");
      }
      request.func_name = it->second;
      request.remove = true;
    } else if (cmd == "add_link") {
      if (tokens.size() != 3) {
        return InvalidArgument("add_link: expected two stage names");
      }
      request.add_links.emplace_back(tokens[1], tokens[2]);
    } else if (cmd == "del_link") {
      if (tokens.size() != 3) {
        return InvalidArgument("del_link: expected two stage names");
      }
      request.del_links.emplace_back(tokens[1], tokens[2]);
    } else if (cmd == "link_header") {
      IPSA_ASSIGN_OR_RETURN(auto flags, ParseFlags(tokens, 1));
      if (!flags.count("pre") || !flags.count("next") || !flags.count("tag")) {
        return InvalidArgument("link_header: need --pre --next --tag");
      }
      auto tag = util::ParseUint(flags["tag"]);
      if (!tag) return InvalidArgument("link_header: bad tag");
      request.link_headers.push_back(
          compiler::HeaderLinkCmd{flags["pre"], flags["next"], *tag});
    } else if (cmd == "unlink_header") {
      IPSA_ASSIGN_OR_RETURN(auto flags, ParseFlags(tokens, 1));
      if (!flags.count("pre") || !flags.count("tag")) {
        return InvalidArgument("unlink_header: need --pre --tag");
      }
      auto tag = util::ParseUint(flags["tag"]);
      if (!tag) return InvalidArgument("unlink_header: bad tag");
      // Unlink is expressed as a link command with empty `next`.
      request.link_headers.push_back(
          compiler::HeaderLinkCmd{flags["pre"], "", *tag});
    } else {
      return InvalidArgument("unknown script command '" + cmd + "'");
    }
  }

  if (!have_load && !request.remove) {
    return InvalidArgument("script has neither a load nor a remove command");
  }
  return request;
}

}  // namespace ipsa::controller
