// Runtime table-entry construction against the compiler-generated API spec
// (paper §3.2: "rp4fc also outputs the APIs for controller to access the
// tables at runtime").
//
// Keys pack field values low-bits-first in key declaration order — the same
// rule arch::ConcatBits applies on the datapath, so controller-built entries
// and matcher-built lookup keys always agree.
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/rp4fc.h"
#include "mem/block.h"
#include "table/table.h"
#include "util/status.h"

namespace ipsa::controller {

// A single key-field value; width comes from the API spec.
struct KeyValue {
  mem::BitString bits;

  KeyValue(uint64_t v) : raw(v) {}                       // NOLINT
  KeyValue(mem::BitString b) : bits(std::move(b)), has_bits(true) {}  // NOLINT

  uint64_t raw = 0;
  bool has_bits = false;
};

class EntryBuilder {
 public:
  explicit EntryBuilder(const compiler::ApiSpec& api) : api_(&api) {}

  // Builds an entry for `table` invoking `action`. Key values must match
  // the table's key fields in order; action arguments match the action's
  // parameters in order. `prefix_len` applies to LPM tables (counted over
  // the full key, MSB-first); `priority` to ternary; `mask` to ternary.
  Result<table::Entry> Build(std::string_view table, std::string_view action,
                             const std::vector<KeyValue>& key_values,
                             const std::vector<mem::BitString>& action_args,
                             uint32_t prefix_len = 0, uint32_t priority = 0,
                             const std::vector<KeyValue>& mask = {}) const;

  // Selector-table member: bucket index + action + args.
  Result<table::Entry> BuildSelectorMember(
      std::string_view table, uint32_t bucket, std::string_view action,
      const std::vector<mem::BitString>& action_args) const;

  const compiler::ApiSpec& api() const { return *api_; }

 private:
  Result<mem::BitString> PackKey(const compiler::TableApi& api,
                                 const std::vector<KeyValue>& values) const;

  const compiler::ApiSpec* api_;
};

// Convenience BitString makers for common field kinds.
mem::BitString Bits(uint32_t width, uint64_t value);
mem::BitString MacBits(uint64_t mac48);
mem::BitString Ipv4Bits(uint32_t addr);
mem::BitString Ipv6Bits(const std::array<uint8_t, 16>& addr_be);

}  // namespace ipsa::controller
