// Parser for the controller's runtime-programming scripts (Fig. 5b/5c).
//
// Grammar, one command per line ('#' or '//' start comments):
//   load <file.rp4> --func_name <name>
//   update <file.rp4> --func_name <name>    (in-place logic update)
//   remove --func_name <name>
//   add_link <stage_a> <stage_b>
//   del_link <stage_a> <stage_b>
//   link_header --pre <hdr> --next <hdr> --tag <n>
//   unlink_header --pre <hdr> --tag <n>
#pragma once

#include <functional>
#include <map>
#include <string>

#include "compiler/rp4bc.h"
#include "util/status.h"

namespace ipsa::controller {

// Resolves a `load` command's file name to rP4 snippet source text. Scripts
// in this repo reference in-memory sources; a CLI would read from disk.
using SnippetResolver =
    std::function<Result<std::string>(const std::string& file)>;

// Parses the script and the referenced snippet into an rp4bc UpdateRequest.
Result<compiler::UpdateRequest> ParseScript(const std::string& script_text,
                                            const SnippetResolver& resolver);

}  // namespace ipsa::controller
