#include "controller/runtime_api.h"

#include "arch/catalog.h"

namespace ipsa::controller {

mem::BitString Bits(uint32_t width, uint64_t value) {
  return mem::BitString(width, value);
}

mem::BitString MacBits(uint64_t mac48) { return mem::BitString(48, mac48); }

mem::BitString Ipv4Bits(uint32_t addr) { return mem::BitString(32, addr); }

mem::BitString Ipv6Bits(const std::array<uint8_t, 16>& addr_be) {
  // The 128-bit value: byte 0 is the most significant (network order).
  mem::BitString out(128);
  for (size_t byte = 0; byte < 16; ++byte) {
    for (size_t bit = 0; bit < 8; ++bit) {
      bool v = (addr_be[byte] >> (7 - bit)) & 1;
      out.SetBit(127 - (byte * 8 + bit), v);
    }
  }
  return out;
}

Result<mem::BitString> EntryBuilder::PackKey(
    const compiler::TableApi& api, const std::vector<KeyValue>& values) const {
  if (values.size() != api.key_field_widths.size()) {
    return InvalidArgument("table '" + api.table + "' expects " +
                           std::to_string(api.key_field_widths.size()) +
                           " key fields, got " +
                           std::to_string(values.size()));
  }
  std::vector<mem::BitString> parts;
  parts.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    uint32_t w = api.key_field_widths[i];
    if (values[i].has_bits) {
      if (values[i].bits.bit_width() != w) {
        return InvalidArgument("key field " + std::to_string(i) +
                               " width mismatch for table '" + api.table +
                               "'");
      }
      parts.push_back(values[i].bits);
    } else {
      parts.push_back(mem::BitString(w, values[i].raw));
    }
  }
  return arch::ConcatBits(parts);
}

Result<table::Entry> EntryBuilder::Build(
    std::string_view table, std::string_view action,
    const std::vector<KeyValue>& key_values,
    const std::vector<mem::BitString>& action_args, uint32_t prefix_len,
    uint32_t priority, const std::vector<KeyValue>& mask) const {
  const compiler::TableApi* api = api_->Find(table);
  if (api == nullptr) {
    return NotFound("table '" + std::string(table) + "' has no runtime API");
  }
  table::Entry entry;
  IPSA_ASSIGN_OR_RETURN(entry.key, PackKey(*api, key_values));
  entry.prefix_len = prefix_len;
  entry.priority = priority;
  if (!mask.empty()) {
    IPSA_ASSIGN_OR_RETURN(entry.mask, PackKey(*api, mask));
  } else if (api->match_kind == table::MatchKind::kTernary) {
    // Default: exact-match mask over the whole key.
    entry.mask = mem::BitString(entry.key.bit_width());
    for (size_t i = 0; i < entry.mask.bit_width(); ++i) {
      entry.mask.SetBit(i, true);
    }
  }

  auto it = api->actions.find(std::string(action));
  if (it == api->actions.end()) {
    return NotFound("table '" + std::string(table) + "' has no action '" +
                    std::string(action) + "' in its executor");
  }
  entry.action_id = it->second.first;
  const std::vector<uint32_t>& widths = it->second.second;
  if (action_args.size() != widths.size()) {
    return InvalidArgument("action '" + std::string(action) + "' expects " +
                           std::to_string(widths.size()) + " args, got " +
                           std::to_string(action_args.size()));
  }
  // Pack args low-bits-first in parameter order (BindActionArgs layout).
  size_t total = 0;
  for (uint32_t w : widths) total += w;
  mem::BitString packed(total);
  size_t offset = 0;
  for (size_t i = 0; i < action_args.size(); ++i) {
    for (uint32_t b = 0; b < widths[i] && b < action_args[i].bit_width();
         ++b) {
      packed.SetBit(offset + b, action_args[i].GetBit(b));
    }
    offset += widths[i];
  }
  entry.action_data = std::move(packed);
  return entry;
}

Result<table::Entry> EntryBuilder::BuildSelectorMember(
    std::string_view table, uint32_t bucket, std::string_view action,
    const std::vector<mem::BitString>& action_args) const {
  const compiler::TableApi* api = api_->Find(table);
  if (api == nullptr) {
    return NotFound("table '" + std::string(table) + "' has no runtime API");
  }
  uint32_t key_width = 0;
  for (uint32_t w : api->key_field_widths) key_width += w;
  table::Entry entry;
  entry.key = mem::BitString(key_width, bucket);
  auto it = api->actions.find(std::string(action));
  if (it == api->actions.end()) {
    return NotFound("selector table '" + std::string(table) +
                    "' has no action '" + std::string(action) + "'");
  }
  entry.action_id = it->second.first;
  const std::vector<uint32_t>& widths = it->second.second;
  size_t total = 0;
  for (uint32_t w : widths) total += w;
  mem::BitString packed(total);
  size_t offset = 0;
  for (size_t i = 0; i < action_args.size() && i < widths.size(); ++i) {
    for (uint32_t b = 0; b < widths[i] && b < action_args[i].bit_width();
         ++b) {
      packed.SetBit(offset + b, action_args[i].GetBit(b));
    }
    offset += widths[i];
  }
  entry.action_data = std::move(packed);
  return entry;
}

}  // namespace ipsa::controller
