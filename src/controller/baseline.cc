#include "controller/baseline.h"

#include "controller/runtime_api.h"
#include "net/headers.h"

namespace ipsa::controller {

namespace {

mem::BitString V6Bits(const net::Ipv6Addr& addr) {
  return Ipv6Bits(addr.bytes);
}

}  // namespace

net::Ipv6Addr Srv6Sid(uint16_t index) {
  return net::Ipv6Addr::FromGroups(
      {0x2001, 0x0db8, 0x00aa, 0, 0, 0, 0, index});
}

Status PopulateBaseline(const compiler::ApiSpec& api, const AddEntryFn& add,
                        const BaselineConfig& config) {
  EntryBuilder builder(api);

  // (A) port mapping: port p -> interface index p+1.
  for (uint32_t p = 0; p < config.port_count; ++p) {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("port_map", "set_if_index", {KeyValue(p)},
                      {Bits(16, p + 1)}));
    IPSA_RETURN_IF_ERROR(add("port_map", e));
  }

  // (B) bridge/VRF binding.
  for (uint32_t i = 1; i <= config.port_count; ++i) {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("bridge_vrf", "set_bd_vrf", {KeyValue(i)},
                      {Bits(16, config.l2_bd), Bits(16, 1)}));
    IPSA_RETURN_IF_ERROR(add("bridge_vrf", e));
  }

  // (C) L2/L3 decision: router MACs route.
  for (uint32_t m = 0; m < 16; ++m) {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("l2_l3", "set_l3",
                      {KeyValue(MacBits(config.router_mac_base + m))}, {}));
    IPSA_RETURN_IF_ERROR(add("l2_l3", e));
  }

  // (D/F) host routes: a handful of /32s and exact v6 hosts.
  for (uint32_t k = 0; k < 4; ++k) {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("ipv4_host", "set_nexthop",
                      {KeyValue(Ipv4Bits(config.v4_dst_base + k))},
                      {Bits(16, config.NexthopOf(k))}));
    IPSA_RETURN_IF_ERROR(add("ipv4_host", e));
  }

  // (E) IPv4 LPM: one /32 per destination plus a covering /8.
  for (uint32_t k = 0; k < config.v4_dst_count; ++k) {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("ipv4_lpm", "set_nexthop",
                      {KeyValue(Ipv4Bits(config.v4_dst_base + k))},
                      {Bits(16, config.NexthopOf(k))}, /*prefix_len=*/32));
    IPSA_RETURN_IF_ERROR(add("ipv4_lpm", e));
  }
  {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("ipv4_lpm", "set_nexthop",
                      {KeyValue(Ipv4Bits(config.v4_dst_base))},
                      {Bits(16, config.NexthopOf(0))}, /*prefix_len=*/8));
    IPSA_RETURN_IF_ERROR(add("ipv4_lpm", e));
  }

  // (F/G) IPv6: exact hosts for the workload pool plus a covering /48.
  for (uint32_t k = 0; k < config.v6_dst_count; ++k) {
    net::Ipv6Addr dst = net::Ipv6Addr::FromGroups(
        {0x2001, 0x0db8, 0x00ff, 0, 0, 0, 0, static_cast<uint16_t>(k + 1)});
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("ipv6_host", "set_nexthop", {KeyValue(V6Bits(dst))},
                      {Bits(16, config.NexthopOf(k))}));
    IPSA_RETURN_IF_ERROR(add("ipv6_host", e));
  }
  // Per-destination /128s (the LPM stage runs after the host stage, so its
  // result must agree with the host entries) plus a covering /48.
  for (uint32_t k = 0; k < config.v6_dst_count; ++k) {
    net::Ipv6Addr dst = net::Ipv6Addr::FromGroups(
        {0x2001, 0x0db8, 0x00ff, 0, 0, 0, 0, static_cast<uint16_t>(k + 1)});
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("ipv6_lpm", "set_nexthop", {KeyValue(V6Bits(dst))},
                      {Bits(16, config.NexthopOf(k))}, /*prefix_len=*/128));
    IPSA_RETURN_IF_ERROR(add("ipv6_lpm", e));
  }
  {
    net::Ipv6Addr prefix =
        net::Ipv6Addr::FromGroups({0x2001, 0x0db8, 0x00ff, 0, 0, 0, 0, 0});
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("ipv6_lpm", "set_nexthop", {KeyValue(V6Bits(prefix))},
                      {Bits(16, config.NexthopOf(0))}, /*prefix_len=*/48));
    IPSA_RETURN_IF_ERROR(add("ipv6_lpm", e));
  }

  // (H) nexthop -> egress bridge + DMAC. Skipped silently when the design
  // no longer has a nexthop stage (after C1 replaces it with ECMP).
  if (api.Find("nexthop") != nullptr) {
    for (uint32_t i = 0; i < config.nexthop_count; ++i) {
      uint32_t nh = 100 + i;
      IPSA_ASSIGN_OR_RETURN(
          table::Entry e,
          builder.Build("nexthop", "set_nh_bd_dmac", {KeyValue(nh)},
                        {Bits(16, config.l3_bd),
                         MacBits(config.nh_dmac_base + nh)}));
      IPSA_RETURN_IF_ERROR(add("nexthop", e));
    }
  }

  // (I) L3 rewrite (SMAC + TTL/hop-limit decrement).
  {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("l2_l3_rewrite", "rewrite_v4",
                      {KeyValue(config.l3_bd)}, {MacBits(config.smac)}));
    IPSA_RETURN_IF_ERROR(add("l2_l3_rewrite", e));
  }
  {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("l2_l3_rewrite_v6", "rewrite_v6",
                      {KeyValue(config.l3_bd)}, {MacBits(config.smac)}));
    IPSA_RETURN_IF_ERROR(add("l2_l3_rewrite_v6", e));
  }

  // (J) egress DMAC -> port, for both routed and bridged traffic.
  for (uint32_t i = 0; i < config.nexthop_count; ++i) {
    uint32_t nh = 100 + i;
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("dmac", "set_port",
                      {KeyValue(config.l3_bd),
                       KeyValue(MacBits(config.nh_dmac_base + nh))},
                      {Bits(9, config.PortOfNexthop(nh))}));
    IPSA_RETURN_IF_ERROR(add("dmac", e));
  }
  // Bridged (L2) stations on bd 1.
  for (uint32_t j = 0; j < 8; ++j) {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("dmac", "set_port",
                      {KeyValue(config.l2_bd),
                       KeyValue(MacBits(0x022222220000ull + j))},
                      {Bits(9, j)}));
    IPSA_RETURN_IF_ERROR(add("dmac", e));
  }
  return OkStatus();
}

Status PopulateEcmp(const compiler::ApiSpec& api, const AddEntryFn& add,
                    const BaselineConfig& config, uint32_t buckets) {
  EntryBuilder builder(api);
  for (const char* table : {"ecmp_ipv4", "ecmp_ipv6"}) {
    for (uint32_t b = 0; b < buckets; ++b) {
      uint32_t nh = 100 + b % config.nexthop_count;
      IPSA_ASSIGN_OR_RETURN(
          table::Entry e,
          builder.BuildSelectorMember(
              table, b, "set_bd_dmac",
              {Bits(16, config.l3_bd), MacBits(config.nh_dmac_base + nh)}));
      IPSA_RETURN_IF_ERROR(add(table, e));
    }
  }
  return OkStatus();
}

Status PopulateSrv6(const compiler::ApiSpec& api, const AddEntryFn& add,
                    const BaselineConfig& config, uint32_t sid_count) {
  EntryBuilder builder(api);
  for (uint16_t i = 0; i < sid_count; ++i) {
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("local_sid", "srv6_end",
                      {KeyValue(V6Bits(Srv6Sid(i)))}, {}));
    IPSA_RETURN_IF_ERROR(add("local_sid", e));
  }
  // Transit: any 2001:db8:ff::/48 destination picks nexthop 100.
  net::Ipv6Addr prefix =
      net::Ipv6Addr::FromGroups({0x2001, 0x0db8, 0x00ff, 0, 0, 0, 0, 0});
  IPSA_ASSIGN_OR_RETURN(
      table::Entry e,
      builder.Build("end_transit", "srv6_transit",
                    {KeyValue(V6Bits(prefix))}, {Bits(16, 100)},
                    /*prefix_len=*/48));
  IPSA_RETURN_IF_ERROR(add("end_transit", e));
  return OkStatus();
}

Status PopulateProbe(const compiler::ApiSpec& api, const AddEntryFn& add,
                     const net::Workload& workload, uint32_t flow_count,
                     uint32_t threshold) {
  EntryBuilder builder(api);
  uint32_t installed = 0;
  for (const net::FlowSpec& flow : workload.flows()) {
    if (installed >= flow_count) break;
    if (flow.is_ipv6) continue;
    IPSA_ASSIGN_OR_RETURN(
        table::Entry e,
        builder.Build("flow_probe", "probe_count",
                      {KeyValue(Ipv4Bits(flow.v4_src.value)),
                       KeyValue(Ipv4Bits(flow.v4_dst.value))},
                      {Bits(16, installed), Bits(32, threshold)}));
    IPSA_RETURN_IF_ERROR(add("flow_probe", e));
    ++installed;
  }
  return OkStatus();
}

}  // namespace ipsa::controller
