// The runtime controller (paper §4.1 "Controller"): drives the two design
// flows against the behavioral devices.
//
// Rp4FlowController — the paper's in-situ flow. Base design: P4 source ->
// p4lite (HLIR) -> rp4fc (rP4 text) -> rp4bc (templates + layout) ->
// incremental device commands. Updates: script + rP4 snippet -> rp4bc
// incremental mode -> delta commands only. Tables keep their entries across
// updates; only new tables need population.
//
// PisaFlowController — the baseline flow. Every change recompiles the whole
// P4 program (p4lite + PISA backend), serializes the monolithic design to
// JSON, fully reloads the device, and REPOPULATES every table from the
// controller's shadow copy (the cost Table 1's note calls out).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "compiler/pisa_backend.h"
#include "compiler/rp4bc.h"
#include "compiler/rp4fc.h"
#include "controller/runtime_api.h"
#include "controller/script.h"
#include "ipsa/ipbm.h"
#include "pisa/pisa_switch.h"
#include "util/status.h"

namespace ipsa::controller {

// Timing of one design-flow operation, the quantities Table 1 reports.
struct FlowTiming {
  double compile_ms = 0;  // t_C: source/snippet -> device configuration
  double load_ms = 0;     // t_L: pushing the configuration to the device
};

class Rp4FlowController {
 public:
  Rp4FlowController(ipbm::IpbmSwitch& device, compiler::Rp4bcOptions options)
      : device_(&device), options_(std::move(options)) {}

  // Base design from P4 source (the preferred base path, §3.2) or directly
  // from rP4 source.
  Result<FlowTiming> LoadBaseFromP4(const std::string& p4_source);
  Result<FlowTiming> LoadBaseFromRp4(const std::string& rp4_source);

  // Runtime update from a controller script (Fig. 5b/5c).
  Result<FlowTiming> ApplyScript(const std::string& script_text,
                                 const SnippetResolver& resolver);

  // Runtime table API. upsert=false: strict add, duplicates fail with
  // kAlreadyExists (bulk RPC semantics).
  Status AddEntry(const std::string& table, const table::Entry& entry,
                  bool upsert = true);
  Result<table::Entry> BuildEntry(
      std::string_view table, std::string_view action,
      const std::vector<KeyValue>& key_values,
      const std::vector<mem::BitString>& action_args, uint32_t prefix_len = 0,
      uint32_t priority = 0);

  const rp4::Rp4Program& program() const { return program_; }
  const compiler::TspLayout& layout() const { return layout_; }
  const compiler::ApiSpec& api() const { return api_; }
  const arch::DesignConfig& design() const { return design_; }
  ipbm::IpbmSwitch& device() { return *device_; }
  // rP4 source of the current base design (rp4fc output / updated base).
  std::string CurrentRp4Source() const;

 private:
  Result<FlowTiming> LoadBase(rp4::Rp4Program program);

  ipbm::IpbmSwitch* device_;
  compiler::Rp4bcOptions options_;
  rp4::Rp4Program program_;
  compiler::TspLayout layout_;
  compiler::ApiSpec api_;
  arch::DesignConfig design_;
};

class PisaFlowController {
 public:
  PisaFlowController(pisa::PisaSwitch& device,
                     compiler::PisaBackendOptions options)
      : device_(&device), options_(std::move(options)) {}

  // Full recompile + full reload + shadow repopulation.
  Result<FlowTiming> CompileAndLoad(const std::string& p4_source);

  // Runtime table API: writes the device AND the shadow store so entries
  // survive the next full reload. upsert=false: strict add, duplicates fail
  // with kAlreadyExists and never reach the shadow.
  Status AddEntry(const std::string& table, const table::Entry& entry,
                  bool upsert = true);
  Result<table::Entry> BuildEntry(
      std::string_view table, std::string_view action,
      const std::vector<KeyValue>& key_values,
      const std::vector<mem::BitString>& action_args, uint32_t prefix_len = 0,
      uint32_t priority = 0);

  const compiler::ApiSpec& api() const { return api_; }
  pisa::PisaSwitch& device() { return *device_; }
  uint64_t shadow_entry_count() const;

 private:
  pisa::PisaSwitch* device_;
  compiler::PisaBackendOptions options_;
  compiler::ApiSpec api_;
  std::map<std::string, std::vector<table::Entry>> shadow_;
};

}  // namespace ipsa::controller
