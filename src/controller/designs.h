// The paper's tested designs (§4.2), as in-memory sources.
//
// Base design: the L2/L3 switch of Fig. 4 — port mapping (A), bridge/VRF
// binding (B), L2-vs-L3 decision (C), IPv4/IPv6 host+LPM FIB (D-G), nexthop
// (H), L2/L3 rewrite + SMAC (I), and egress DMAC lookup (J).
//
// For each use case there are TWO artifacts, matching the two design flows
// of Table 1:
//  * a complete P4 program (base + the function) — the PISA flow recompiles
//    and reloads this whole thing;
//  * an rP4 snippet + controller script (Fig. 5) — the rP4 flow compiles
//    only the increment.
#pragma once

#include <string>

#include "util/status.h"

namespace ipsa::controller::designs {

// --- base design -----------------------------------------------------------
const std::string& BaseP4();

// --- C1: ECMP (Fig. 5a/5b) --------------------------------------------------
const std::string& EcmpRp4Snippet();
const std::string& EcmpScript();
const std::string& BasePlusEcmpP4();  // full program for the PISA flow

// --- C2: SRv6 (Fig. 5c) ------------------------------------------------------
const std::string& Srv6Rp4Snippet();
const std::string& Srv6Script();
const std::string& BasePlusSrv6P4();

// --- C3: event-triggered flow probe ------------------------------------------
const std::string& ProbeRp4Snippet();
const std::string& ProbeScript();
const std::string& BasePlusProbeP4();

// In-place function update (§4.2 mentions update flows): probe v2 keeps the
// same stage/tables/register but escalates from marking to dropping once
// the threshold is exceeded. Counters survive the update.
const std::string& ProbeV2Rp4Snippet();
const std::string& ProbeUpdateScript();

// --- C4 (extension): INT-lite in-band telemetry --------------------------------
// Not in the paper's evaluation, but squarely its motivation #1 ("dynamic
// network visibility"): a runtime-loaded function that encapsulates matching
// flows with a new telemetry header (ingress port + hop sequence number)
// pushed after Ethernet, retagging the EtherType. Exercises push_header with
// a header type that did not exist at design time.
const std::string& TelemetryRp4Snippet();
const std::string& TelemetryScript();
const std::string& TelemetryRemoveScript();

// Removal scripts (the paper mentions removal/update flows; §4.2 end).
const std::string& EcmpRemoveScript();
const std::string& ProbeRemoveScript();

// --- fabric: multi-switch leaf–spine composition (src/fabric) ----------------
// Leaf uplink ECMP: a selector stage spliced between ipv4_lpm and nexthop.
// The selector picks an egress bridge + spine router MAC for *every* IPv4
// packet by hashing (src, dst); the downstream nexthop stage then overwrites
// that choice on a hit (local hosts install real nexthop ids) and leaves it
// standing on a miss (remote prefixes route to the reserved uplink nexthop
// id, which has no nexthop entry on purpose). This keeps the splice free of
// any new matcher syntax while giving leaves "local routes beat ECMP".
const std::string& FabricEcmpRp4Snippet();
const std::string& FabricEcmpScript();

// Fabric-wide rolling-upgrade payload: a source-address ACL stage spliced
// between the L2/L3 decision and the IPv4 FIB. Ships with an empty table, so
// installing it mid-traffic must not change forwarding — the rolling upgrade
// orchestrator asserts exactly that, switch by switch.
const std::string& FabricAclRp4Snippet();
const std::string& FabricAclScript();

// On-demand heavy-hitter probe: a stage spliced at egress (between the L3
// rewrite and the DMAC lookup) whose table starts empty and whose *miss*
// action marks the packet, so while the stage is resident every IPv4 packet
// shows up in packets_marked without changing forwarding. Entries can later
// pin known-heavy flows to NoAction to narrow the probe. The reactor toggles
// this stage in-situ on demand (docs/reactor.md).
const std::string& FabricProbeRp4Snippet();
const std::string& FabricProbeScript();
const std::string& FabricProbeRemoveScript();

// --- C5: in-network compute — SwitchML-style allreduce -----------------------
// A chunked aggregation stage (docs/compute.md): contributions arrive as
// IPv4 protocol-153 packets carrying an `alr` header (slot, worker id,
// fixed-point scale shift, two 64-bit values). Per-slot registers accumulate
// sat_add(acc, fxp_quantize(v, shift)); a per-slot worker bitmap register
// makes retransmitted contributions exactly-once. The contribution that
// completes a slot is rewritten into the result (op=2, dequantized
// aggregates) and forwarded on to the collector; non-final contributions
// drop at the device. A duplicate arriving after completion re-emits the
// result, so a lost result packet is repaired by any retransmit.
const std::string& AllreduceRp4Snippet();
// Splices alr_agg between ipv4_lpm and nexthop on a plain base design.
const std::string& AllreduceScript();
// Same splice on a leaf that already carries the fab_ecmp selector stage
// (src/fabric/leaf_spine.cc): alr_agg goes between fab_ecmp and nexthop.
const std::string& FabricAllreduceScript();
// In-place v2: identical aggregation semantics plus a duplicate-counting
// register — aggregation state survives the in-situ update.
const std::string& AllreduceV2Rp4Snippet();
const std::string& AllreduceUpdateScript();

// Resolves the snippet file names used inside the scripts
// (ecmp.rp4 / srv6.rp4 / probe.rp4 / alr.rp4 / ...).
Result<std::string> ResolveSnippet(const std::string& file);

}  // namespace ipsa::controller::designs
