#include "mem/block.h"

#include <algorithm>

#include "util/strings.h"

namespace ipsa::mem {

BitString::BitString(size_t bit_width, uint64_t value) : BitString(bit_width) {
  SetBits(0, bit_width < 64 ? bit_width : 64, value);
}

BitString& BitString::operator=(const BitString& other) {
  if (this == &other) return *this;
  Resize(other.bits_);
  std::memcpy(data(), other.data(), other.byte_size());
  return *this;
}

BitString::BitString(BitString&& other) noexcept
    : bits_(other.bits_),
      heap_capacity_(other.heap_capacity_),
      heap_(std::move(other.heap_)) {
  std::memcpy(inline_, other.inline_, kInlineBytes);
  other.bits_ = 0;
  other.heap_capacity_ = 0;
}

BitString& BitString::operator=(BitString&& other) noexcept {
  if (this == &other) return *this;
  bits_ = other.bits_;
  if (other.heap_) {
    heap_ = std::move(other.heap_);
    heap_capacity_ = other.heap_capacity_;
  }
  std::memcpy(inline_, other.inline_, kInlineBytes);
  other.bits_ = 0;
  other.heap_capacity_ = 0;
  other.heap_.reset();
  return *this;
}

void BitString::Resize(size_t bit_width) {
  size_t nbytes = (bit_width + 7) / 8;
  if (nbytes > kInlineBytes && nbytes > heap_capacity_) {
    heap_ = std::make_unique<uint8_t[]>(nbytes);
    heap_capacity_ = nbytes;
  }
  bits_ = bit_width;
  std::memset(data(), 0, nbytes);
}

BitString BitString::FromBytes(std::span<const uint8_t> bytes,
                               size_t bit_width) {
  BitString s(bit_width);
  size_t n = std::min(bytes.size(), s.byte_size());
  if (n > 0) std::memcpy(s.data(), bytes.data(), n);
  // Clear any bits beyond bit_width in the last byte.
  if (bit_width % 8 != 0 && s.byte_size() > 0) {
    s.data()[s.byte_size() - 1] &=
        static_cast<uint8_t>((1u << (bit_width % 8)) - 1);
  }
  return s;
}

uint64_t BitString::GetBits(size_t offset, size_t width) const {
  if (width == 0 || offset >= bits_) return 0;
  // Accumulate the (at most 9) covered bytes LSB-first, then shift the
  // range into place. Bits beyond bit_width() read as zero.
  const uint8_t* p = data();
  size_t first = offset / 8;
  size_t last = std::min((offset + width - 1) / 8, byte_size() - 1);
  unsigned __int128 acc = 0;
  for (size_t b = last + 1; b > first; --b) {
    acc = (acc << 8) | p[b - 1];
  }
  uint64_t v = static_cast<uint64_t>(acc >> (offset % 8));
  return width >= 64 ? v : v & ((uint64_t{1} << width) - 1);
}

void BitString::SetBits(size_t offset, size_t width, uint64_t value) {
  if (width == 0 || offset >= bits_) return;
  width = std::min(width, bits_ - offset);  // bits beyond bit_width() ignored
  uint8_t* p = data();
  size_t first = offset / 8;
  size_t last = (offset + width - 1) / 8;
  size_t shift = offset % 8;
  unsigned __int128 mask = width >= 64
                               ? (unsigned __int128){~uint64_t{0}}
                               : (unsigned __int128){(uint64_t{1} << width) - 1};
  unsigned __int128 acc = 0;
  for (size_t b = last + 1; b > first; --b) {
    acc = (acc << 8) | p[b - 1];
  }
  acc = (acc & ~(mask << shift)) |
        (((unsigned __int128){value} & mask) << shift);
  for (size_t b = first; b <= last; ++b) {
    p[b] = static_cast<uint8_t>(acc & 0xFF);
    acc >>= 8;
  }
}

uint64_t BitString::Word(size_t i) const {
  size_t off = i * 8;
  size_t n = byte_size();
  if (off >= n) return 0;
  const uint8_t* p = data() + off;
  size_t m = std::min<size_t>(8, n - off);
  uint64_t w = 0;
  for (size_t b = 0; b < m; ++b) w |= uint64_t{p[b]} << (8 * b);
  return w;
}

BitString BitString::Slice(size_t offset, size_t width) const {
  BitString out;
  SliceInto(offset, width, out);
  return out;
}

void BitString::SliceInto(size_t offset, size_t width, BitString& out) const {
  out.Resize(width);
  for (size_t i = 0; i < width; i += 64) {
    size_t chunk = std::min<size_t>(64, width - i);
    out.SetBits(i, chunk, GetBits(offset + i, chunk));
  }
}

void BitString::SetBitsFrom(size_t at, const BitString& src, size_t src_offset,
                            size_t width) {
  for (size_t i = 0; i < width; i += 64) {
    size_t chunk = std::min<size_t>(64, width - i);
    SetBits(at + i, chunk, src.GetBits(src_offset + i, chunk));
  }
}

void BitString::Zero() { std::memset(data(), 0, byte_size()); }

void BitString::Assign(const BitString& src) {
  size_t n = std::min(src.byte_size(), byte_size());
  uint8_t* p = data();
  if (n > 0) std::memcpy(p, src.data(), n);
  std::memset(p + n, 0, byte_size() - n);
  if (bits_ % 8 != 0 && byte_size() > 0) {
    p[byte_size() - 1] &= static_cast<uint8_t>((1u << (bits_ % 8)) - 1);
  }
}

bool BitString::MatchesUnderMask(const BitString& other,
                                 const BitString& mask) const {
  size_t n = std::min({byte_size(), other.byte_size(), mask.byte_size()});
  const uint8_t* a = data();
  const uint8_t* b = other.data();
  const uint8_t* m = mask.data();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t wa, wb, wm;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    std::memcpy(&wm, m + i, 8);
    if ((wa ^ wb) & wm) return false;
  }
  for (; i < n; ++i) {
    if (static_cast<uint8_t>(a[i] ^ b[i]) & m[i]) return false;
  }
  return true;
}

std::string BitString::ToHex() const {
  std::string out = "0x";
  const uint8_t* p = data();
  for (size_t i = byte_size(); i > 0; --i) {
    out += util::Format("%02x", p[i - 1]);
  }
  return out;
}

void Block::Release() {
  owner_ = kNoOwner;
  std::fill(valid_.begin(), valid_.end(), false);
  for (auto& row : rows_) row.Zero();
  for (auto& mask : masks_) mask.Zero();
}

Status Block::WriteRow(uint32_t row, const BitString& value) {
  if (row >= depth_) return OutOfRange("block row out of range");
  if (value.bit_width() > width_) {
    return InvalidArgument("row value wider than block");
  }
  rows_[row].Assign(value);
  valid_[row] = true;
  ++writes_;
  return OkStatus();
}

Status Block::WriteMask(uint32_t row, const BitString& mask) {
  if (kind_ != BlockKind::kTcam) {
    return FailedPrecondition("mask write on SRAM block");
  }
  if (row >= depth_) return OutOfRange("block row out of range");
  masks_[row].Assign(mask);
  ++writes_;
  return OkStatus();
}

Result<BitString> Block::ReadRow(uint32_t row) const {
  if (row >= depth_) return OutOfRange("block row out of range");
  CountRead();
  return rows_[row];
}

}  // namespace ipsa::mem
