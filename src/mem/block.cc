#include "mem/block.h"

#include <algorithm>

#include "util/strings.h"

namespace ipsa::mem {

BitString::BitString(size_t bit_width, uint64_t value) : BitString(bit_width) {
  SetBits(0, bit_width < 64 ? bit_width : 64, value);
}

BitString BitString::FromBytes(std::span<const uint8_t> bytes,
                               size_t bit_width) {
  BitString s(bit_width);
  size_t n = std::min(bytes.size(), s.bytes_.size());
  std::copy(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(n),
            s.bytes_.begin());
  // Clear any bits beyond bit_width in the last byte.
  if (bit_width % 8 != 0 && !s.bytes_.empty()) {
    s.bytes_.back() &= static_cast<uint8_t>((1u << (bit_width % 8)) - 1);
  }
  return s;
}

uint64_t BitString::GetBits(size_t offset, size_t width) const {
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    if (GetBit(offset + i)) v |= uint64_t{1} << i;
  }
  return v;
}

void BitString::SetBits(size_t offset, size_t width, uint64_t value) {
  for (size_t i = 0; i < width; ++i) {
    SetBit(offset + i, (value >> i) & 1);
  }
}

BitString BitString::Slice(size_t offset, size_t width) const {
  BitString out(width);
  for (size_t i = 0; i < width; ++i) {
    out.SetBit(i, GetBit(offset + i));
  }
  return out;
}

bool BitString::MatchesUnderMask(const BitString& other,
                                 const BitString& mask) const {
  size_t n = std::min({byte_size(), other.byte_size(), mask.byte_size()});
  for (size_t i = 0; i < n; ++i) {
    if ((bytes_[i] & mask.bytes()[i]) !=
        (other.bytes()[i] & mask.bytes()[i])) {
      return false;
    }
  }
  return true;
}

std::string BitString::ToHex() const {
  std::string out = "0x";
  for (size_t i = bytes_.size(); i > 0; --i) {
    out += util::Format("%02x", bytes_[i - 1]);
  }
  return out;
}

void Block::Release() {
  owner_ = kNoOwner;
  std::fill(valid_.begin(), valid_.end(), false);
  for (auto& row : rows_) row = BitString(width_);
  for (auto& mask : masks_) mask = BitString(width_);
}

Status Block::WriteRow(uint32_t row, const BitString& value) {
  if (row >= depth_) return OutOfRange("block row out of range");
  if (value.bit_width() > width_) {
    return InvalidArgument("row value wider than block");
  }
  rows_[row] = BitString::FromBytes(value.bytes(), width_);
  valid_[row] = true;
  ++writes_;
  return OkStatus();
}

Status Block::WriteMask(uint32_t row, const BitString& mask) {
  if (kind_ != BlockKind::kTcam) {
    return FailedPrecondition("mask write on SRAM block");
  }
  if (row >= depth_) return OutOfRange("block row out of range");
  masks_[row] = BitString::FromBytes(mask.bytes(), width_);
  ++writes_;
  return OkStatus();
}

Result<BitString> Block::ReadRow(uint32_t row) const {
  if (row >= depth_) return OutOfRange("block row out of range");
  CountRead();
  return rows_[row];
}

}  // namespace ipsa::mem
