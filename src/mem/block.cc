#include "mem/block.h"

#include <algorithm>

#include "util/strings.h"

namespace ipsa::mem {

BitString::BitString(size_t bit_width, uint64_t value) : BitString(bit_width) {
  SetBits(0, bit_width < 64 ? bit_width : 64, value);
}

BitString BitString::FromBytes(std::span<const uint8_t> bytes,
                               size_t bit_width) {
  BitString s(bit_width);
  size_t n = std::min(bytes.size(), s.bytes_.size());
  std::copy(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(n),
            s.bytes_.begin());
  // Clear any bits beyond bit_width in the last byte.
  if (bit_width % 8 != 0 && !s.bytes_.empty()) {
    s.bytes_.back() &= static_cast<uint8_t>((1u << (bit_width % 8)) - 1);
  }
  return s;
}

uint64_t BitString::GetBits(size_t offset, size_t width) const {
  if (width == 0 || offset >= bits_) return 0;
  // Accumulate the (at most 9) covered bytes LSB-first, then shift the
  // range into place. Bits beyond bit_width() read as zero.
  size_t first = offset / 8;
  size_t last = std::min((offset + width - 1) / 8, bytes_.size() - 1);
  unsigned __int128 acc = 0;
  for (size_t b = last + 1; b > first; --b) {
    acc = (acc << 8) | bytes_[b - 1];
  }
  uint64_t v = static_cast<uint64_t>(acc >> (offset % 8));
  return width >= 64 ? v : v & ((uint64_t{1} << width) - 1);
}

void BitString::SetBits(size_t offset, size_t width, uint64_t value) {
  if (width == 0 || offset >= bits_) return;
  width = std::min(width, bits_ - offset);  // bits beyond bit_width() ignored
  size_t first = offset / 8;
  size_t last = (offset + width - 1) / 8;
  size_t shift = offset % 8;
  unsigned __int128 mask = width >= 64
                               ? (unsigned __int128){~uint64_t{0}}
                               : (unsigned __int128){(uint64_t{1} << width) - 1};
  unsigned __int128 acc = 0;
  for (size_t b = last + 1; b > first; --b) {
    acc = (acc << 8) | bytes_[b - 1];
  }
  acc = (acc & ~(mask << shift)) |
        (((unsigned __int128){value} & mask) << shift);
  for (size_t b = first; b <= last; ++b) {
    bytes_[b] = static_cast<uint8_t>(acc & 0xFF);
    acc >>= 8;
  }
}

BitString BitString::Slice(size_t offset, size_t width) const {
  BitString out(width);
  for (size_t i = 0; i < width; i += 64) {
    size_t chunk = std::min<size_t>(64, width - i);
    out.SetBits(i, chunk, GetBits(offset + i, chunk));
  }
  return out;
}

void BitString::Zero() { std::fill(bytes_.begin(), bytes_.end(), 0); }

void BitString::Assign(const BitString& src) {
  size_t n = std::min(src.bytes_.size(), bytes_.size());
  std::copy(src.bytes_.begin(),
            src.bytes_.begin() + static_cast<std::ptrdiff_t>(n),
            bytes_.begin());
  std::fill(bytes_.begin() + static_cast<std::ptrdiff_t>(n), bytes_.end(),
            uint8_t{0});
  if (bits_ % 8 != 0 && !bytes_.empty()) {
    bytes_.back() &= static_cast<uint8_t>((1u << (bits_ % 8)) - 1);
  }
}

bool BitString::MatchesUnderMask(const BitString& other,
                                 const BitString& mask) const {
  size_t n = std::min({byte_size(), other.byte_size(), mask.byte_size()});
  for (size_t i = 0; i < n; ++i) {
    if ((bytes_[i] & mask.bytes()[i]) !=
        (other.bytes()[i] & mask.bytes()[i])) {
      return false;
    }
  }
  return true;
}

std::string BitString::ToHex() const {
  std::string out = "0x";
  for (size_t i = bytes_.size(); i > 0; --i) {
    out += util::Format("%02x", bytes_[i - 1]);
  }
  return out;
}

void Block::Release() {
  owner_ = kNoOwner;
  std::fill(valid_.begin(), valid_.end(), false);
  for (auto& row : rows_) row = BitString(width_);
  for (auto& mask : masks_) mask = BitString(width_);
}

Status Block::WriteRow(uint32_t row, const BitString& value) {
  if (row >= depth_) return OutOfRange("block row out of range");
  if (value.bit_width() > width_) {
    return InvalidArgument("row value wider than block");
  }
  rows_[row] = BitString::FromBytes(value.bytes(), width_);
  valid_[row] = true;
  ++writes_;
  return OkStatus();
}

Status Block::WriteMask(uint32_t row, const BitString& mask) {
  if (kind_ != BlockKind::kTcam) {
    return FailedPrecondition("mask write on SRAM block");
  }
  if (row >= depth_) return OutOfRange("block row out of range");
  masks_[row] = BitString::FromBytes(mask.bytes(), width_);
  ++writes_;
  return OkStatus();
}

Result<BitString> Block::ReadRow(uint32_t row) const {
  if (row >= depth_) return OutOfRange("block row out of range");
  CountRead();
  return rows_[row];
}

}  // namespace ipsa::mem
