// Logical-table virtualization over pool blocks (paper §2.4).
//
// A logical table of W bits x D rows is spread over a grid of
// ceil(D/d) x ceil(W/w) physical blocks, which need not be adjacent in the
// pool. Row r lives in block-row r/d at block-local row r%d; its W bits are
// the concatenation of the grid columns. Operators only ever see the logical
// table; the compiler-provided runtime APIs (src/table/) sit on top of this.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/crossbar.h"
#include "mem/pool.h"
#include "util/status.h"

namespace ipsa::mem {

class LogicalTable {
 public:
  // Allocates the backing blocks from `pool` under owner id `table_id`.
  static Result<LogicalTable> Create(Pool& pool, BlockKind kind,
                                     uint32_t table_id,
                                     uint32_t width_bits, uint32_t depth,
                                     std::optional<uint32_t> cluster =
                                         std::nullopt);

  uint32_t table_id() const { return table_id_; }
  BlockKind kind() const { return kind_; }
  uint32_t width_bits() const { return width_; }
  uint32_t depth() const { return depth_; }
  const std::vector<uint32_t>& block_ids() const { return block_ids_; }

  Status WriteRow(Pool& pool, uint32_t row, const BitString& value);
  Status WriteMask(Pool& pool, uint32_t row, const BitString& mask);
  Result<BitString> ReadRow(const Pool& pool, uint32_t row) const;
  BitString ReadMask(const Pool& pool, uint32_t row) const;
  // Charges the read statistics of a row fetch (one read per grid column,
  // exactly what ReadRow counts) without materializing the bits. Lets a
  // software index answer lookups from its decoded cache while the hardware
  // cost model still sees every data-path memory access.
  Status ChargeRead(const Pool& pool, uint32_t row) const;
  // Assembles a row's bits WITHOUT touching the read statistics — for index
  // cache refreshes after control-plane writes, which model index
  // maintenance rather than a data-path access.
  Result<BitString> PeekRow(const Pool& pool, uint32_t row) const;
  bool RowValid(const Pool& pool, uint32_t row) const;
  Status InvalidateRow(Pool& pool, uint32_t row);

  // Cycles to fetch one row through a `bus_width_bits`-wide bus, plus one
  // cycle of crossbar traversal. This is the memory-access cost that the
  // paper blames for IPSA's throughput decline (§5 Throughput).
  uint32_t AccessCycles(uint32_t bus_width_bits) const {
    return 1 + (width_ + bus_width_bits - 1) / bus_width_bits;
  }

  // Releases the backing blocks (stage deletion recycles memory, §2.4).
  void Free(Pool& pool) { pool.ReleaseOwner(table_id_); }

  // Routes every backing block to processor `proc` on the crossbar.
  Status ConnectTo(Crossbar& xbar, uint32_t proc, const Pool& pool) const;

 private:
  LogicalTable() = default;

  // Grid coordinates for a logical row.
  struct RowLoc {
    uint32_t block_row;   // which row of the block grid
    uint32_t local_row;   // row within each block of that grid row
  };
  RowLoc Locate(uint32_t row) const {
    uint32_t d = block_depth_;
    return {row / d, row % d};
  }
  uint32_t BlockAt(uint32_t block_row, uint32_t col) const {
    return block_ids_[block_row * cols_ + col];
  }

  uint32_t table_id_ = 0;
  BlockKind kind_ = BlockKind::kSram;
  uint32_t width_ = 0;
  uint32_t depth_ = 0;
  uint32_t cols_ = 0;        // ceil(W/w)
  uint32_t block_rows_ = 0;  // ceil(D/d)
  uint32_t block_width_ = 0;
  uint32_t block_depth_ = 0;
  std::vector<uint32_t> block_ids_;  // row-major grid
};

}  // namespace ipsa::mem
