#include "mem/pool.h"

namespace ipsa::mem {

Pool::Pool(const PoolConfig& config) : config_(config) {
  blocks_.reserve(config.sram_blocks + config.tcam_blocks);
  uint32_t id = 0;
  for (uint32_t i = 0; i < config.sram_blocks; ++i) {
    blocks_.emplace_back(id++, BlockKind::kSram, config.sram_width_bits,
                         config.sram_depth);
  }
  for (uint32_t i = 0; i < config.tcam_blocks; ++i) {
    blocks_.emplace_back(id++, BlockKind::kTcam, config.tcam_width_bits,
                         config.tcam_depth);
  }
}

uint32_t Pool::ClusterOf(uint32_t block_id) const {
  if (config_.clusters <= 1) return 0;
  // Stripe within each kind so clusters stay balanced per kind.
  const Block& b = blocks_.at(block_id);
  uint32_t index_in_kind = b.kind() == BlockKind::kSram
                               ? block_id
                               : block_id - config_.sram_blocks;
  return index_in_kind % config_.clusters;
}

Result<std::vector<uint32_t>> Pool::AllocateBlocks(
    BlockKind kind, uint32_t count, uint32_t owner,
    std::optional<uint32_t> cluster) {
  std::vector<uint32_t> picked;
  picked.reserve(count);
  for (uint32_t id = 0; id < blocks_.size() && picked.size() < count; ++id) {
    Block& b = blocks_[id];
    if (b.kind() != kind || b.allocated()) continue;
    if (cluster.has_value() && ClusterOf(id) != *cluster) continue;
    picked.push_back(id);
  }
  if (picked.size() < count) {
    return ResourceExhausted(
        "memory pool: not enough free blocks of requested kind");
  }
  for (uint32_t id : picked) blocks_[id].Allocate(owner);
  return picked;
}

uint32_t Pool::ReleaseOwner(uint32_t owner) {
  uint32_t released = 0;
  for (Block& b : blocks_) {
    if (b.allocated() && b.owner() == owner) {
      b.Release();
      ++released;
    }
  }
  return released;
}

uint32_t Pool::FreeBlocks(BlockKind kind,
                          std::optional<uint32_t> cluster) const {
  uint32_t n = 0;
  for (uint32_t id = 0; id < blocks_.size(); ++id) {
    const Block& b = blocks_[id];
    if (b.kind() != kind || b.allocated()) continue;
    if (cluster.has_value() && ClusterOf(id) != *cluster) continue;
    ++n;
  }
  return n;
}

uint32_t Pool::UsedBlocks(BlockKind kind) const {
  uint32_t n = 0;
  for (const Block& b : blocks_) {
    if (b.kind() == kind && b.allocated()) ++n;
  }
  return n;
}

uint32_t Pool::BlocksFor(BlockKind kind, uint32_t table_width_bits,
                         uint32_t table_depth) const {
  uint32_t w = WidthOf(kind);
  uint32_t d = DepthOf(kind);
  uint32_t cols = (table_width_bits + w - 1) / w;
  uint32_t rows = (table_depth + d - 1) / d;
  return cols * rows;
}

}  // namespace ipsa::mem
