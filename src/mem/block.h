// Physical memory blocks of the disaggregated memory pool (paper §2.4).
//
// Each block stores `depth` entries of `width` bits. SRAM blocks back exact
// and LPM tables; TCAM blocks additionally store a per-entry mask and support
// priority-ordered ternary search within the block. A logical table of size
// W x D occupies ceil(W/w) x ceil(D/d) blocks (RMT-style virtualization).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "util/status.h"

namespace ipsa::mem {

enum class BlockKind { kSram, kTcam };

// An arbitrary-width bit string stored LSB-first in bytes. Used for table
// keys, masks, and entry payloads throughout the memory subsystem.
//
// Widths up to kInlineBits (128 — every key and action-data width in the
// example designs) live in an inline buffer; wider strings spill to a heap
// buffer whose capacity is kept across Resize/assignment, so a reused
// BitString never allocates in steady state. This is what makes the
// per-packet lookup path allocation-free.
class BitString {
 public:
  static constexpr size_t kInlineBytes = 16;
  static constexpr size_t kInlineBits = kInlineBytes * 8;

  BitString() = default;
  explicit BitString(size_t bit_width) { Resize(bit_width); }
  BitString(size_t bit_width, uint64_t value);
  static BitString FromBytes(std::span<const uint8_t> bytes, size_t bit_width);

  BitString(const BitString& other) { *this = other; }
  BitString& operator=(const BitString& other);
  BitString(BitString&& other) noexcept;
  BitString& operator=(BitString&& other) noexcept;
  ~BitString() = default;

  size_t bit_width() const { return bits_; }
  size_t byte_size() const { return (bits_ + 7) / 8; }
  std::span<const uint8_t> bytes() const { return {data(), byte_size()}; }
  std::span<uint8_t> bytes() { return {data(), byte_size()}; }

  // Sets the width and zeroes every bit. Capacity is never released;
  // allocates only when growing past both the inline buffer and any heap
  // buffer acquired earlier.
  void Resize(size_t bit_width);

  bool GetBit(size_t i) const { return (data()[i / 8] >> (i % 8)) & 1; }
  void SetBit(size_t i, bool v) {
    uint8_t mask = static_cast<uint8_t>(1u << (i % 8));
    if (v) {
      data()[i / 8] |= mask;
    } else {
      data()[i / 8] &= static_cast<uint8_t>(~mask);
    }
  }

  // Reads/writes up to 64 bits at [offset, offset+width).
  uint64_t GetBits(size_t offset, size_t width) const;
  void SetBits(size_t offset, size_t width, uint64_t value);

  // 64-bit word `i` of the LSB-first byte stream; bits beyond bit_width()
  // read as zero. Lets table indexes compare keys word-wise.
  uint64_t Word(size_t i) const;
  size_t WordCount() const { return (byte_size() + 7) / 8; }

  // Low 64 bits as an integer (convenience for narrow values).
  uint64_t ToUint64() const { return GetBits(0, bits_ < 64 ? bits_ : 64); }

  // Returns a slice [offset, offset+width) as a new BitString.
  BitString Slice(size_t offset, size_t width) const;
  // In-place Slice: resizes `out` to `width` (reusing its capacity) and
  // copies the bits. `out` must not alias this string.
  void SliceInto(size_t offset, size_t width, BitString& out) const;

  // Copies `width` bits of `src` starting at `src_offset` into this string
  // at bit `at`, 64 bits at a time. Bits outside this string's width are
  // dropped. The in-place primitive behind key concatenation.
  void SetBitsFrom(size_t at, const BitString& src, size_t src_offset,
                   size_t width);

  // Appends `width` bits of `src` at a caller-held cursor and advances it.
  // With the destination pre-Resized to the final width, a sequence of
  // AppendBits calls concatenates parts without any allocation.
  void AppendBits(const BitString& src, size_t src_offset, size_t width,
                  size_t& cursor) {
    SetBitsFrom(cursor, src, src_offset, width);
    cursor += width;
  }

  // Zeroes every bit, keeping the width. No reallocation.
  void Zero();
  // In-place equivalent of `*this = FromBytes(src.bytes(), bit_width())`:
  // copies src's bytes truncated/zero-extended to this width, no realloc.
  void Assign(const BitString& src);

  // True if (this & mask) == (other & mask) over the common width.
  bool MatchesUnderMask(const BitString& other, const BitString& mask) const;

  bool operator==(const BitString& other) const {
    return bits_ == other.bits_ &&
           std::memcmp(data(), other.data(), byte_size()) == 0;
  }

  std::string ToHex() const;

 private:
  uint8_t* data() {
    return byte_size() <= kInlineBytes ? inline_ : heap_.get();
  }
  const uint8_t* data() const {
    return byte_size() <= kInlineBytes ? inline_ : heap_.get();
  }

  size_t bits_ = 0;
  size_t heap_capacity_ = 0;  // bytes usable in heap_ (0 = none allocated)
  uint8_t inline_[kInlineBytes] = {};
  std::unique_ptr<uint8_t[]> heap_;
};

// One physical block.
class Block {
 public:
  Block(uint32_t id, BlockKind kind, uint32_t width_bits, uint32_t depth)
      : id_(id),
        kind_(kind),
        width_(width_bits),
        depth_(depth),
        rows_(depth, BitString(width_bits)),
        masks_(kind == BlockKind::kTcam
                   ? std::vector<BitString>(depth, BitString(width_bits))
                   : std::vector<BitString>{}),
        valid_(depth, false) {}

  uint32_t id() const { return id_; }
  BlockKind kind() const { return kind_; }
  uint32_t width_bits() const { return width_; }
  uint32_t depth() const { return depth_; }

  // Ownership bookkeeping (which logical table holds this block).
  bool allocated() const { return owner_ != kNoOwner; }
  uint32_t owner() const { return owner_; }
  void Allocate(uint32_t owner) { owner_ = owner; }
  void Release();

  Status WriteRow(uint32_t row, const BitString& value);
  Status WriteMask(uint32_t row, const BitString& mask);  // TCAM only
  Result<BitString> ReadRow(uint32_t row) const;
  // Row bits without touching the read statistics — for software-index
  // cache refreshes, which model index maintenance rather than a data-path
  // memory access.
  const BitString& PeekRow(uint32_t row) const { return rows_.at(row); }
  const BitString& mask(uint32_t row) const { return masks_.at(row); }
  bool row_valid(uint32_t row) const { return valid_.at(row); }
  void SetRowValid(uint32_t row, bool v) { valid_.at(row) = v; }

  // The atomic read counter deletes the implicit move operations the pool's
  // vector<Block> needs; restore them (blocks only move during pool setup,
  // never while packets are in flight).
  Block(Block&& other) noexcept
      : id_(other.id_),
        kind_(other.kind_),
        width_(other.width_),
        depth_(other.depth_),
        rows_(std::move(other.rows_)),
        masks_(std::move(other.masks_)),
        valid_(std::move(other.valid_)),
        owner_(other.owner_),
        reads_(other.reads_.load(std::memory_order_relaxed)),
        writes_(other.writes_) {}

  // Access statistics feed the hardware throughput model. Reads are counted
  // from concurrent lookup workers, hence atomic.
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_; }
  void CountRead() const { reads_.fetch_add(1, std::memory_order_relaxed); }

  static constexpr uint32_t kNoOwner = 0xFFFFFFFF;

 private:
  uint32_t id_;
  BlockKind kind_;
  uint32_t width_;
  uint32_t depth_;
  std::vector<BitString> rows_;
  std::vector<BitString> masks_;
  std::vector<bool> valid_;
  uint32_t owner_ = kNoOwner;
  mutable std::atomic<uint64_t> reads_{0};
  uint64_t writes_ = 0;
};

}  // namespace ipsa::mem
