// Crossbar interconnect between stage processors and memory blocks
// (paper §2.4). A full crossbar lets any processor reach any block; a
// clustered crossbar only connects processor-cluster i to memory-cluster i,
// trading flexibility for silicon cost — the tradeoff §2.4 and the
// discussion in §5 call out.
//
// The crossbar is *statically configured per design*: rp4bc emits routes,
// the controller writes them, and every write counts config words so load
// time (t_L) can be charged faithfully.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ipsa::mem {

enum class CrossbarKind { kFull, kClustered };

class Pool;

class Crossbar {
 public:
  // `proc_count` processor-side ports; processor clusters mirror the pool's
  // memory clusters (processor p belongs to cluster p % clusters).
  Crossbar(CrossbarKind kind, uint32_t proc_count, uint32_t clusters)
      : kind_(kind), proc_count_(proc_count), clusters_(clusters) {}

  CrossbarKind kind() const { return kind_; }
  uint32_t proc_count() const { return proc_count_; }
  uint32_t clusters() const { return clusters_; }

  uint32_t ProcCluster(uint32_t proc) const {
    return clusters_ <= 1 ? 0 : proc % clusters_;
  }

  // Whether routing proc -> block is permitted by the topology.
  bool Routable(uint32_t proc, uint32_t block_id, const Pool& pool) const;

  Status Connect(uint32_t proc, uint32_t block_id, const Pool& pool);
  Status Disconnect(uint32_t proc, uint32_t block_id);
  // Tears down every route of `proc`; returns the number removed.
  uint32_t DisconnectProc(uint32_t proc);

  bool IsConnected(uint32_t proc, uint32_t block_id) const {
    return routes_.count({proc, block_id}) > 0;
  }
  std::vector<uint32_t> BlocksOf(uint32_t proc) const;
  size_t route_count() const { return routes_.size(); }

  // Every Connect/Disconnect writes one configuration word; the device
  // model charges load time per word.
  uint64_t config_words_written() const { return config_words_; }
  void ResetConfigCounter() { config_words_ = 0; }

 private:
  CrossbarKind kind_;
  uint32_t proc_count_;
  uint32_t clusters_;
  std::set<std::pair<uint32_t, uint32_t>> routes_;
  uint64_t config_words_ = 0;
};

}  // namespace ipsa::mem
