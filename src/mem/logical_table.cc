#include "mem/logical_table.h"

#include <algorithm>

namespace ipsa::mem {

Result<LogicalTable> LogicalTable::Create(Pool& pool, BlockKind kind,
                                          uint32_t table_id,
                                          uint32_t width_bits, uint32_t depth,
                                          std::optional<uint32_t> cluster) {
  if (width_bits == 0 || depth == 0) {
    return InvalidArgument("logical table must have nonzero width and depth");
  }
  LogicalTable t;
  t.table_id_ = table_id;
  t.kind_ = kind;
  t.width_ = width_bits;
  t.depth_ = depth;
  t.block_width_ = pool.WidthOf(kind);
  t.block_depth_ = pool.DepthOf(kind);
  t.cols_ = (width_bits + t.block_width_ - 1) / t.block_width_;
  t.block_rows_ = (depth + t.block_depth_ - 1) / t.block_depth_;
  auto blocks = pool.AllocateBlocks(kind, t.cols_ * t.block_rows_, table_id,
                                    cluster);
  if (!blocks.ok()) return blocks.status();
  t.block_ids_ = std::move(blocks).value();
  return t;
}

Status LogicalTable::WriteRow(Pool& pool, uint32_t row,
                              const BitString& value) {
  if (row >= depth_) return OutOfRange("logical row out of range");
  if (value.bit_width() > width_) {
    return InvalidArgument("row value wider than logical table");
  }
  RowLoc loc = Locate(row);
  for (uint32_t c = 0; c < cols_; ++c) {
    uint32_t lo = c * block_width_;
    uint32_t span = std::min(block_width_, width_ - lo);
    BitString piece = value.bit_width() > lo ? value.Slice(lo, span)
                                             : BitString(span);
    IPSA_RETURN_IF_ERROR(
        pool.block(BlockAt(loc.block_row, c)).WriteRow(loc.local_row, piece));
  }
  return OkStatus();
}

Status LogicalTable::WriteMask(Pool& pool, uint32_t row,
                               const BitString& mask) {
  if (kind_ != BlockKind::kTcam) {
    return FailedPrecondition("mask write on SRAM logical table");
  }
  if (row >= depth_) return OutOfRange("logical row out of range");
  RowLoc loc = Locate(row);
  for (uint32_t c = 0; c < cols_; ++c) {
    uint32_t lo = c * block_width_;
    uint32_t span = std::min(block_width_, width_ - lo);
    BitString piece =
        mask.bit_width() > lo ? mask.Slice(lo, span) : BitString(span);
    IPSA_RETURN_IF_ERROR(
        pool.block(BlockAt(loc.block_row, c)).WriteMask(loc.local_row, piece));
  }
  return OkStatus();
}

Result<BitString> LogicalTable::ReadRow(const Pool& pool, uint32_t row) const {
  IPSA_RETURN_IF_ERROR(ChargeRead(pool, row));
  return PeekRow(pool, row);
}

Status LogicalTable::ChargeRead(const Pool& pool, uint32_t row) const {
  if (row >= depth_) return OutOfRange("logical row out of range");
  RowLoc loc = Locate(row);
  for (uint32_t c = 0; c < cols_; ++c) {
    pool.block(BlockAt(loc.block_row, c)).CountRead();
  }
  return OkStatus();
}

Result<BitString> LogicalTable::PeekRow(const Pool& pool, uint32_t row) const {
  if (row >= depth_) return OutOfRange("logical row out of range");
  RowLoc loc = Locate(row);
  BitString out(width_);
  for (uint32_t c = 0; c < cols_; ++c) {
    const BitString& piece =
        pool.block(BlockAt(loc.block_row, c)).PeekRow(loc.local_row);
    uint32_t lo = c * block_width_;
    uint32_t span = std::min(block_width_, width_ - lo);
    out.SetBitsFrom(lo, piece, 0, span);
  }
  return out;
}

BitString LogicalTable::ReadMask(const Pool& pool, uint32_t row) const {
  BitString out(width_);
  RowLoc loc = Locate(row);
  for (uint32_t c = 0; c < cols_; ++c) {
    const BitString& piece =
        pool.block(BlockAt(loc.block_row, c)).mask(loc.local_row);
    uint32_t lo = c * block_width_;
    uint32_t span = std::min(block_width_, width_ - lo);
    out.SetBitsFrom(lo, piece, 0, span);
  }
  return out;
}

bool LogicalTable::RowValid(const Pool& pool, uint32_t row) const {
  if (row >= depth_) return false;
  RowLoc loc = Locate(row);
  // The row is valid iff its first grid column is valid; writes keep all
  // columns in lockstep.
  return pool.block(BlockAt(loc.block_row, 0)).row_valid(loc.local_row);
}

Status LogicalTable::InvalidateRow(Pool& pool, uint32_t row) {
  if (row >= depth_) return OutOfRange("logical row out of range");
  RowLoc loc = Locate(row);
  for (uint32_t c = 0; c < cols_; ++c) {
    pool.block(BlockAt(loc.block_row, c)).SetRowValid(loc.local_row, false);
  }
  return OkStatus();
}

Status LogicalTable::ConnectTo(Crossbar& xbar, uint32_t proc,
                               const Pool& pool) const {
  for (uint32_t id : block_ids_) {
    IPSA_RETURN_IF_ERROR(xbar.Connect(proc, id, pool));
  }
  return OkStatus();
}

}  // namespace ipsa::mem
