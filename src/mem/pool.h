// The disaggregated memory pool (paper §2.4, modeled after dRMT).
//
// All table memory — SRAM and TCAM — lives in one pool of fixed-size blocks.
// Processors reach blocks through a crossbar (crossbar.h). Logical tables
// claim ceil(W/w) x ceil(D/d) blocks; blocks are recycled when the owning
// logical stage is deleted. Blocks are grouped into clusters so clustered
// crossbars can restrict reachability (the flexibility/cost tradeoff the
// paper describes).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/block.h"
#include "util/status.h"

namespace ipsa::mem {

struct PoolConfig {
  uint32_t sram_blocks = 64;
  uint32_t sram_width_bits = 128;  // w
  uint32_t sram_depth = 1024;      // d
  uint32_t tcam_blocks = 16;
  uint32_t tcam_width_bits = 64;
  uint32_t tcam_depth = 512;
  uint32_t clusters = 1;  // memory clusters (1 = monolithic pool)
};

class Pool {
 public:
  explicit Pool(const PoolConfig& config);

  const PoolConfig& config() const { return config_; }
  uint32_t block_count() const { return static_cast<uint32_t>(blocks_.size()); }
  Block& block(uint32_t id) { return blocks_.at(id); }
  const Block& block(uint32_t id) const { return blocks_.at(id); }

  // Cluster index of a block; blocks of each kind are striped round-robin
  // over clusters so every cluster has both SRAM and TCAM capacity.
  uint32_t ClusterOf(uint32_t block_id) const;

  // Allocates `count` free blocks of `kind` for logical-table `owner`.
  // When `cluster` is set, only blocks of that cluster are eligible.
  Result<std::vector<uint32_t>> AllocateBlocks(
      BlockKind kind, uint32_t count, uint32_t owner,
      std::optional<uint32_t> cluster = std::nullopt);

  // Recycles every block owned by `owner` (stage deletion, §2.4).
  uint32_t ReleaseOwner(uint32_t owner);

  uint32_t FreeBlocks(BlockKind kind,
                      std::optional<uint32_t> cluster = std::nullopt) const;
  uint32_t UsedBlocks(BlockKind kind) const;

  // Geometry of a kind.
  uint32_t WidthOf(BlockKind kind) const {
    return kind == BlockKind::kSram ? config_.sram_width_bits
                                    : config_.tcam_width_bits;
  }
  uint32_t DepthOf(BlockKind kind) const {
    return kind == BlockKind::kSram ? config_.sram_depth : config_.tcam_depth;
  }

  // Blocks needed for a W x D logical table: ceil(W/w) * ceil(D/d).
  uint32_t BlocksFor(BlockKind kind, uint32_t table_width_bits,
                     uint32_t table_depth) const;

 private:
  PoolConfig config_;
  std::vector<Block> blocks_;
};

}  // namespace ipsa::mem
