#include "mem/crossbar.h"

#include "mem/pool.h"

namespace ipsa::mem {

bool Crossbar::Routable(uint32_t proc, uint32_t block_id,
                        const Pool& pool) const {
  if (proc >= proc_count_ || block_id >= pool.block_count()) return false;
  if (kind_ == CrossbarKind::kFull) return true;
  return ProcCluster(proc) == pool.ClusterOf(block_id);
}

Status Crossbar::Connect(uint32_t proc, uint32_t block_id, const Pool& pool) {
  if (proc >= proc_count_) return OutOfRange("crossbar: bad processor port");
  if (block_id >= pool.block_count()) {
    return OutOfRange("crossbar: bad block id");
  }
  if (!Routable(proc, block_id, pool)) {
    return FailedPrecondition(
        "crossbar: clustered topology does not route this pair");
  }
  auto [it, inserted] = routes_.insert({proc, block_id});
  (void)it;
  if (inserted) ++config_words_;
  return OkStatus();
}

Status Crossbar::Disconnect(uint32_t proc, uint32_t block_id) {
  if (routes_.erase({proc, block_id}) == 0) {
    return NotFound("crossbar: route not present");
  }
  ++config_words_;
  return OkStatus();
}

uint32_t Crossbar::DisconnectProc(uint32_t proc) {
  uint32_t removed = 0;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->first == proc) {
      it = routes_.erase(it);
      ++removed;
      ++config_words_;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<uint32_t> Crossbar::BlocksOf(uint32_t proc) const {
  std::vector<uint32_t> out;
  for (const auto& [p, b] : routes_) {
    if (p == proc) out.push_back(b);
  }
  return out;
}

}  // namespace ipsa::mem
