// Aliasing shim: the device-stats types moved to the shared telemetry layer
// (src/telemetry/device_stats.h). The ipsa::pisa spellings stay valid for
// the many call sites (tools, tests, benches) that predate the move.
#pragma once

#include "telemetry/device_stats.h"

namespace ipsa::pisa {

using DeviceStats = telemetry::DeviceStats;
using TraceStep = telemetry::TraceStep;
using ProcessTrace = telemetry::ProcessTrace;
using ProcessResult = telemetry::ProcessResult;

}  // namespace ipsa::pisa
