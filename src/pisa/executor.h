// Multi-worker run-to-completion over a port set.
//
// Both behavioral devices drain their RX queues the same way; this executor
// shards the ports across N worker threads (port p -> worker p % N) and
// buffers every TX push until all workers have joined, then replays the
// pushes in ascending ingress-port FIFO order — exactly the order a serial
// drain produces. Output queues, including overflow drops, are therefore
// bit-identical to a single-threaded drain as long as per-packet processing
// is independent (the switches serialize register-touching pipelines to one
// worker before calling this).
#pragma once

#include <cstdint>
#include <functional>

#include "net/ports.h"
#include "telemetry/device_stats.h"
#include "util/status.h"

namespace ipsa::pisa {

// Processes one packet on behalf of worker `worker` (0-based, stable for the
// whole drain). Implementations must touch only worker-local scratch state
// (context, stats shard) and thread-safe shared state.
using ProcessFn = std::function<Result<telemetry::ProcessResult>(
    net::Packet& packet, uint32_t in_port, uint32_t worker)>;

// Drains every RX queue through `process` with `workers` threads and returns
// the number of packets processed. With workers <= 1 everything runs on the
// calling thread (no spawn). If any packet fails, the error from the lowest
// ingress port is returned and no TX replay happens.
Result<uint32_t> DrainPortsSharded(net::PortSet& ports, uint32_t workers,
                                   const ProcessFn& process);

}  // namespace ipsa::pisa
