#include "pisa/pisa_switch.h"

#include <chrono>

#include "arch/ii_model.h"
#include "arch/parse_engine.h"
#include "pisa/executor.h"
#include "telemetry/plan_observers.h"
#include "util/logging.h"

namespace ipsa::pisa {

namespace {

mem::PoolConfig MakePoolConfig(const PisaOptions& o) {
  uint32_t stages = o.physical_ingress_stages + o.physical_egress_stages;
  mem::PoolConfig cfg;
  cfg.sram_blocks = o.sram_blocks_per_stage * stages;
  cfg.sram_width_bits = o.sram_width_bits;
  cfg.sram_depth = o.sram_depth;
  cfg.tcam_blocks = o.tcam_blocks_per_stage * stages;
  cfg.tcam_width_bits = o.tcam_width_bits;
  cfg.tcam_depth = o.tcam_depth;
  // One cluster per physical stage: PISA prorates memory among stages.
  cfg.clusters = stages;
  return cfg;
}

}  // namespace

PisaSwitch::PisaSwitch(const PisaOptions& options)
    : options_(options),
      pool_(MakePoolConfig(options)),
      catalog_(pool_),
      metadata_proto_(arch::Metadata::Standard()),
      ingress_(options.physical_ingress_stages),
      egress_(options.physical_egress_stages),
      ports_(options.port_count) {}

void PisaSwitch::Reset() {
  // Destroy all tables (their entries are lost — the controller must
  // repopulate after a reload, the cost Table 1's note points out).
  for (const std::string& name : catalog_.TableNames()) {
    (void)catalog_.DestroyTable(name);
  }
  for (const std::string& name : actions_.ActionNames()) {
    (void)actions_.Remove(name);
  }
  for (const auto& reg : design_.registers) {
    (void)regs_.Destroy(reg.name);
  }
  ingress_.assign(options_.physical_ingress_stages, std::nullopt);
  egress_.assign(options_.physical_egress_stages, std::nullopt);
  metadata_proto_ = arch::Metadata::Standard();
  design_ = arch::DesignConfig{};
  loaded_ = false;
  ++config_epoch_;
}

Status PisaSwitch::LoadDesign(const arch::DesignConfig& design) {
  auto t0 = std::chrono::steady_clock::now();
  if (design.ingress_stages.size() > options_.physical_ingress_stages) {
    return ResourceExhausted(
        "design needs more ingress stages than the chip has");
  }
  if (design.egress_stages.size() > options_.physical_egress_stages) {
    return ResourceExhausted(
        "design needs more egress stages than the chip has");
  }
  Reset();

  // Rebuild the whole device from the monolithic config.
  for (const auto& m : design.metadata) {
    IPSA_RETURN_IF_ERROR(metadata_proto_.Declare(m.name, m.width_bits));
  }
  for (const auto& a : design.actions) {
    IPSA_RETURN_IF_ERROR(actions_.Add(a));
  }
  for (const auto& r : design.registers) {
    IPSA_RETURN_IF_ERROR(regs_.Create(r.name, r.size));
  }

  // Tables are prorated: a logical stage's tables live in the cluster of
  // the physical stage it maps to. Build a table -> stage index first.
  std::map<std::string, uint32_t> table_stage;
  for (size_t i = 0; i < design.ingress_stages.size(); ++i) {
    for (const auto& rule : design.ingress_stages[i].matcher) {
      if (!rule.table.empty()) {
        table_stage[rule.table] = static_cast<uint32_t>(i);
      }
    }
  }
  for (size_t i = 0; i < design.egress_stages.size(); ++i) {
    for (const auto& rule : design.egress_stages[i].matcher) {
      if (!rule.table.empty()) {
        table_stage[rule.table] =
            options_.physical_ingress_stages + static_cast<uint32_t>(i);
      }
    }
  }
  for (const auto& t : design.tables) {
    auto it = table_stage.find(t.spec.name);
    std::optional<uint32_t> cluster;
    if (it != table_stage.end()) cluster = it->second;
    Status s = catalog_.CreateTable(t.spec, t.binding, cluster);
    if (!s.ok()) {
      Reset();
      return s;
    }
  }

  for (size_t i = 0; i < design.ingress_stages.size(); ++i) {
    ingress_[i] = design.ingress_stages[i];
  }
  for (size_t i = 0; i < design.egress_stages.size(); ++i) {
    egress_[i] = design.egress_stages[i];
  }

  design_ = design;
  loaded_ = true;
  stats_.full_loads += 1;
  stats_.config_words_written += design.TotalConfigWords();
  telemetry_.OnUpdateWindow(
      config_epoch_,
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count());
  IPSA_LOG(kInfo) << "pbm: loaded design '" << design.name << "' ("
                  << design.TotalConfigWords() << " config words)";
  return OkStatus();
}

Status PisaSwitch::LoadDesignJson(std::string_view json_text) {
  IPSA_ASSIGN_OR_RETURN(util::Json json, util::Json::Parse(json_text));
  IPSA_ASSIGN_OR_RETURN(arch::DesignConfig design,
                        arch::DesignConfig::FromJson(json));
  return LoadDesign(design);
}

Status PisaSwitch::AddEntry(const std::string& table,
                            const table::Entry& entry, bool upsert) {
  IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog_.Get(table));
  ++stats_.table_ops;
  ++stats_.config_words_written;  // one control-channel write per entry op
  return upsert ? t->Insert(entry) : t->InsertUnique(entry);
}

Status PisaSwitch::EraseEntry(const std::string& table,
                              const table::Entry& entry) {
  IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog_.Get(table));
  ++stats_.table_ops;
  ++stats_.config_words_written;
  return t->Erase(entry);
}

Status PisaSwitch::BeginEntryBatch(const std::string& table) {
  IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog_.Get(table));
  t->BeginBatch();
  return OkStatus();
}

Status PisaSwitch::EndEntryBatch(const std::string& table) {
  IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog_.Get(table));
  t->EndBatch();
  return OkStatus();
}

void PisaSwitch::EnsureCompiled() {
  CompiledKey key{.epoch = config_epoch_,
                  .catalog = catalog_.version(),
                  .actions = actions_.version()};
  if (key == compiled_key_) return;

  design_uses_registers_ = false;
  auto compile_side =
      [this](const std::vector<std::optional<arch::StageProgram>>& side,
             std::vector<std::optional<arch::CompiledStage>>& out) {
        out.clear();
        out.resize(side.size());
        for (size_t i = 0; i < side.size(); ++i) {
          if (!side[i].has_value()) continue;
          if (exec_mode_ == arch::ExecMode::kInterpret) {
            design_uses_registers_ |=
                arch::StageMayUseRegisters(*side[i], actions_);
            continue;
          }
          auto compiled = arch::CompileStage(*side[i], catalog_, actions_,
                                             design_.headers, metadata_proto_);
          if (compiled.ok()) {
            design_uses_registers_ |= compiled->uses_registers;
            out[i] = std::move(compiled).value();
          } else {
            // Interpreter fallback for this stage.
            design_uses_registers_ |=
                arch::StageMayUseRegisters(*side[i], actions_);
          }
        }
      };
  compile_side(ingress_, compiled_ingress_);
  compile_side(egress_, compiled_egress_);

  // Lower the physical stage array into the straight-line plan: active
  // stages become groups (carrying any preceding empty stages' traversal
  // cycles), trailing empties become the side's tail charge.
  plan_ = arch::PipelinePlan{};
  plan_valid_ = exec_mode_ == arch::ExecMode::kSpecialize;
  if (plan_valid_) {
    auto plan_side =
        [](const std::vector<std::optional<arch::StageProgram>>& side,
           const std::vector<std::optional<arch::CompiledStage>>& compiled,
           uint32_t base_index, std::vector<arch::PlanGroup>& groups,
           uint32_t& tail_cycles) {
          uint32_t gap = 0;
          for (size_t i = 0; i < side.size(); ++i) {
            if (!side[i].has_value()) {
              ++gap;
              continue;
            }
            arch::PlanGroup group;
            group.unit = base_index + static_cast<uint32_t>(i);
            group.entry_cycles = 1 + gap;
            gap = 0;
            group.programs.push_back(arch::PlanProgram{
                compiled[i].has_value() ? &*compiled[i] : nullptr,
                &*side[i], group.unit});
            groups.push_back(std::move(group));
          }
          tail_cycles = gap;
        };
    plan_side(ingress_, compiled_ingress_, 0, plan_.ingress,
              plan_.ingress_tail_cycles);
    plan_side(egress_, compiled_egress_, options_.physical_ingress_stages,
              plan_.egress, plan_.egress_tail_cycles);
    plan_.tm_cycles = 0;       // PISA's TM is free in the cycle model
    plan_.jit_parse = false;   // the front parser ran before the walk
    plan_.per_group_ii = false;
  }

  ingress_port_slot_ = metadata_proto_.SlotOf("ingress_port");
  scratch_ctx_.metadata() = metadata_proto_;
  compiled_key_ = key;

  // Publish the stage layout so telemetry slots carry logical names. One
  // slot per physical stage position, ingress first (matching base_index).
  std::vector<telemetry::StageInfo> infos;
  infos.reserve(ingress_.size() + egress_.size());
  for (size_t i = 0; i < ingress_.size(); ++i) {
    infos.push_back(telemetry::StageInfo{
        static_cast<uint32_t>(i),
        ingress_[i].has_value() ? ingress_[i]->name : std::string()});
  }
  for (size_t i = 0; i < egress_.size(); ++i) {
    infos.push_back(telemetry::StageInfo{
        options_.physical_ingress_stages + static_cast<uint32_t>(i),
        egress_[i].has_value() ? egress_[i]->name : std::string()});
  }
  telemetry_.SetStages(std::move(infos));
}

Result<ProcessResult> PisaSwitch::ProcessCore(net::Packet& packet,
                                              uint32_t in_port,
                                              arch::PacketContext& ctx,
                                              DeviceStats& stats,
                                              telemetry::MetricsShard* tshard,
                                              ProcessTrace* trace) {
  if (!loaded_) return FailedPrecondition("pbm: no design loaded");
  ++stats.packets_in;

  ctx.Rebind(packet, design_.headers);
  ctx.metadata().Reset();
  ctx.metadata().SlotWriteUint(ingress_port_slot_, in_port);

  // Standalone front-end parser: extract everything up front (§2.1 contrast).
  IPSA_ASSIGN_OR_RETURN(arch::ParseStats ps, arch::ParseEngine::ParseAll(ctx));

  ProcessResult result;
  result.headers_parsed = ps.headers_parsed;
  uint64_t parsed_bytes = 0;
  for (const auto& h : ctx.phv().instances()) {
    if (h.valid) parsed_bytes += h.size_bytes;
  }
  result.pipeline_ii =
      std::max(arch::PisaParserIi(parsed_bytes), arch::PisaStageIi());

  if (trace != nullptr) {
    for (const auto& h : ctx.phv().instances()) {
      if (h.valid) trace->parsed_headers.push_back(h.name);
    }
  }

  if (plan_valid_) {
    // Specialized walk: pick the observer instantiation once, so the
    // telemetry/trace branches vanish from the per-stage loop.
    Result<arch::PlanRunStats> ran = InternalError("unreachable");
    if (trace != nullptr) {
      ran = arch::RunPlan(plan_, ctx, catalog_, actions_, &regs_,
                          telemetry::PlanTraceObserver{tshard, trace});
    } else if (tshard != nullptr) {
      ran = arch::RunPlan(plan_, ctx, catalog_, actions_, &regs_,
                          telemetry::PlanShardObserver{tshard});
    } else {
      ran = arch::RunPlan(plan_, ctx, catalog_, actions_, &regs_,
                          arch::PlanNullObserver{});
    }
    IPSA_RETURN_IF_ERROR(ran.status());

    result.dropped = ctx.dropped();
    result.marked = ctx.marked();
    result.egress_port = ctx.egress_spec();
    result.cycles = ctx.cycles();
    stats.total_cycles += ctx.cycles();
    if (result.dropped) {
      ++stats.packets_dropped;
    } else {
      ++stats.packets_out;
    }
    if (result.marked) ++stats.packets_marked;
    if (tshard != nullptr) tshard->OnResult(in_port, result);
    return result;
  }

  // All physical ingress stages are traversed in order whether or not they
  // hold a program — non-functional stages still cost a cycle of latency
  // (the elastic-pipeline motivation in §2.3).
  auto run_side = [&](std::vector<std::optional<arch::StageProgram>>& side,
                      std::vector<std::optional<arch::CompiledStage>>& compiled,
                      uint32_t base_index) -> Status {
    for (size_t i = 0; i < side.size(); ++i) {
      ctx.ChargeCycles(1);
      if (!side[i].has_value()) continue;
      arch::StageRunStats run_stats;
      if (compiled[i].has_value()) {
        IPSA_ASSIGN_OR_RETURN(
            run_stats,
            RunCompiledStage(*compiled[i], ctx, &regs_, /*jit_parse=*/false,
                             /*fill_names=*/trace != nullptr));
      } else {
        IPSA_ASSIGN_OR_RETURN(run_stats,
                              RunStage(*side[i], ctx, catalog_, actions_,
                                       &regs_, /*jit_parse=*/false));
      }
      if (tshard != nullptr) {
        tshard->OnStage(base_index + static_cast<uint32_t>(i),
                        run_stats.table_applied, run_stats.hit);
      }
      if (trace != nullptr) {
        trace->steps.push_back(TraceStep{
            .unit = base_index + static_cast<uint32_t>(i),
            .stage = side[i]->name,
            .table = run_stats.applied_table,
            .hit = run_stats.hit,
            .action = run_stats.executed_action,
            .parse_bytes = 0});
      }
      if (ctx.dropped()) break;
    }
    return OkStatus();
  };
  IPSA_RETURN_IF_ERROR(run_side(ingress_, compiled_ingress_, 0));
  if (!ctx.dropped()) {
    IPSA_RETURN_IF_ERROR(run_side(egress_, compiled_egress_,
                                  options_.physical_ingress_stages));
  }

  result.dropped = ctx.dropped();
  result.marked = ctx.marked();
  result.egress_port = ctx.egress_spec();
  result.cycles = ctx.cycles();
  stats.total_cycles += ctx.cycles();
  if (result.dropped) {
    ++stats.packets_dropped;
  } else {
    ++stats.packets_out;
  }
  if (result.marked) ++stats.packets_marked;
  if (tshard != nullptr) tshard->OnResult(in_port, result);
  return result;
}

Result<ProcessResult> PisaSwitch::ProcessSampled(
    net::Packet& packet, uint32_t in_port, arch::PacketContext& ctx,
    DeviceStats& stats, telemetry::MetricsShard* tshard, ProcessTrace* trace) {
  if (trace == nullptr && telemetry_.ShouldTrace(in_port)) {
    ProcessTrace sampled;
    auto result = ProcessCore(packet, in_port, ctx, stats, tshard, &sampled);
    if (result.ok()) {
      telemetry_.CommitTrace(config_epoch_, in_port, *result,
                             std::move(sampled));
    }
    return result;
  }
  return ProcessCore(packet, in_port, ctx, stats, tshard, trace);
}

Result<ProcessResult> PisaSwitch::Process(net::Packet& packet,
                                          uint32_t in_port,
                                          ProcessTrace* trace) {
  EnsureCompiled();
  return ProcessSampled(packet, in_port, scratch_ctx_, stats_,
                        telemetry_.shard(), trace);
}

Result<std::vector<ProcessResult>> PisaSwitch::ProcessBatch(
    std::span<net::Packet> packets, uint32_t in_port) {
  EnsureCompiled();
  telemetry::MetricsShard* tshard = telemetry_.shard();
  std::vector<ProcessResult> out;
  out.reserve(packets.size());
  for (net::Packet& packet : packets) {
    IPSA_ASSIGN_OR_RETURN(ProcessResult r,
                          ProcessSampled(packet, in_port, scratch_ctx_, stats_,
                                         tshard, nullptr));
    out.push_back(r);
  }
  return out;
}

Result<uint32_t> PisaSwitch::RunToCompletion(uint32_t workers) {
  EnsureCompiled();
  // Register read-modify-write order across packets is observable; designs
  // that touch the register file run single-worker so results stay identical
  // to the serial drain.
  if (design_uses_registers_) workers = 1;
  if (workers <= 1) {
    telemetry::MetricsShard* tshard = telemetry_.shard();
    uint32_t processed = 0;
    for (uint32_t p = 0; p < ports_.count(); ++p) {
      while (auto packet = ports_.port(p).rx().Pop()) {
        IPSA_ASSIGN_OR_RETURN(ProcessResult r,
                              ProcessSampled(*packet, p, scratch_ctx_, stats_,
                                             tshard, nullptr));
        if (!r.dropped && r.egress_port < ports_.count()) {
          ports_.port(r.egress_port).tx().Push(std::move(*packet));
        }
        ++processed;
      }
    }
    return processed;
  }

  std::vector<arch::PacketContext> ctxs(workers);
  std::vector<DeviceStats> worker_stats(workers);
  // Telemetry shards mirror the DeviceStats pattern: each worker fills its
  // own shard without atomics; the master absorbs them after the join, so
  // the merged totals equal a serial drain exactly.
  std::vector<telemetry::MetricsShard> worker_shards;
  if (telemetry_.enabled()) worker_shards = telemetry_.MakeWorkerShards(workers);
  for (arch::PacketContext& c : ctxs) c.metadata() = metadata_proto_;
  IPSA_ASSIGN_OR_RETURN(
      uint32_t processed,
      DrainPortsSharded(ports_, workers,
                        [&](net::Packet& packet, uint32_t in_port,
                            uint32_t worker) {
                          return ProcessSampled(
                              packet, in_port, ctxs[worker],
                              worker_stats[worker],
                              worker_shards.empty() ? nullptr
                                                    : &worker_shards[worker],
                              nullptr);
                        }));
  for (const DeviceStats& s : worker_stats) stats_.MergeFrom(s);
  telemetry_.MergeWorkerShards(worker_shards);
  return processed;
}

std::string PisaSwitch::PlanToString() {
  EnsureCompiled();
  return plan_valid_ ? plan_.ToString() : std::string();
}

uint32_t PisaSwitch::ActiveIngressStages() const {
  uint32_t n = 0;
  for (const auto& s : ingress_) {
    if (s.has_value()) ++n;
  }
  return n;
}

uint32_t PisaSwitch::ActiveEgressStages() const {
  uint32_t n = 0;
  for (const auto& s : egress_) {
    if (s.has_value()) ++n;
  }
  return n;
}

}  // namespace ipsa::pisa
