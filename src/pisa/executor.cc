#include "pisa/executor.h"

#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace ipsa::pisa {

Result<uint32_t> DrainPortsSharded(net::PortSet& ports, uint32_t workers,
                                   const ProcessFn& process) {
  const uint32_t port_count = ports.count();
  if (workers == 0) workers = 1;
  if (port_count > 0 && workers > port_count) workers = port_count;

  struct Emit {
    uint32_t egress_port;
    net::Packet packet;
  };
  // Forwarded packets per ingress port, in processing (FIFO) order. Each
  // worker writes only its own ports' buffers, so no locking is needed.
  std::vector<std::vector<Emit>> emitted(port_count);
  std::vector<uint32_t> processed(workers, 0);
  std::vector<std::optional<Status>> errors(port_count);

  auto drain_port = [&](uint32_t p, uint32_t worker) {
    while (auto packet = ports.port(p).rx().Pop()) {
      Result<telemetry::ProcessResult> r = process(*packet, p, worker);
      if (!r.ok()) {
        errors[p] = r.status();
        return;
      }
      ++processed[worker];
      if (!r->dropped && r->egress_port < port_count) {
        emitted[p].push_back(Emit{r->egress_port, std::move(*packet)});
      }
    }
  };

  if (workers <= 1) {
    for (uint32_t p = 0; p < port_count; ++p) drain_port(p, 0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (uint32_t p = w; p < port_count; p += workers) drain_port(p, w);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  for (uint32_t p = 0; p < port_count; ++p) {
    if (errors[p].has_value()) return *errors[p];
  }

  // Replay TX pushes in the serial drain's order: ascending ingress port,
  // FIFO within a port. Overflow drops land on the same packets they would
  // in a serial run.
  uint32_t total = 0;
  for (uint32_t p = 0; p < port_count; ++p) {
    for (Emit& e : emitted[p]) {
      ports.port(e.egress_port).tx().Push(std::move(e.packet));
    }
  }
  for (uint32_t w = 0; w < workers; ++w) total += processed[w];
  return total;
}

}  // namespace ipsa::pisa
