// pbm — PISA behavioral model (the baseline, standing in for bmv2).
//
// Architecture per the paper's PISA description (§1, §2): a standalone
// front-end parser that extracts *all* headers, a fixed number of physical
// match-action stages for ingress and egress, and a deparser (a no-op here
// because headers are edited in place). Memory is prorated: the pool is
// clustered per physical stage and a stage's tables must fit its cluster.
//
// The crucial property for the evaluation: the device only accepts a
// *monolithic* design. Any functional change requires LoadDesign() with a
// full new configuration — every table is destroyed (losing its entries,
// which the controller must repopulate) and every config word is rewritten.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arch/compiled_stage.h"
#include "arch/design.h"
#include "arch/pipeline_plan.h"
#include "net/ports.h"
#include "pisa/device_stats.h"
#include "telemetry/collector.h"
#include "util/status.h"

namespace ipsa::pisa {

struct PisaOptions {
  uint32_t physical_ingress_stages = 8;
  uint32_t physical_egress_stages = 8;
  uint32_t port_count = 16;
  // Per-stage memory proration: each physical stage owns one pool cluster.
  uint32_t sram_blocks_per_stage = 8;
  uint32_t tcam_blocks_per_stage = 2;
  uint32_t sram_width_bits = 256;
  uint32_t sram_depth = 2048;
  uint32_t tcam_width_bits = 256;
  uint32_t tcam_depth = 512;
};

class PisaSwitch {
 public:
  explicit PisaSwitch(const PisaOptions& options = {});

  // Full design load: tear-down + rebuild. This is the ONLY way to change
  // functionality on PISA. Charges every config word to the device bus and
  // destroys all table contents.
  Status LoadDesign(const arch::DesignConfig& design);
  // Convenience: parse the monolithic JSON first (what a real device's
  // driver does), then load.
  Status LoadDesignJson(std::string_view json_text);

  bool HasDesign() const { return loaded_; }
  const arch::DesignConfig& design() const { return design_; }

  // Runtime table API (valid between loads; cleared by LoadDesign).
  // upsert=false is the strict bulk-RPC semantics: a duplicate identity
  // fails with kAlreadyExists instead of updating in place.
  Status AddEntry(const std::string& table, const table::Entry& entry,
                  bool upsert = true);
  Status EraseEntry(const std::string& table, const table::Entry& entry);
  // Brackets a bulk frame of entry ops on one table: the table's lookup
  // views are republished once, at EndEntryBatch.
  Status BeginEntryBatch(const std::string& table);
  Status EndEntryBatch(const std::string& table);

  // Processes one packet through parser -> ingress -> TM -> egress.
  // When `trace` is non-null, every stage execution is recorded into it.
  Result<ProcessResult> Process(net::Packet& packet, uint32_t in_port,
                                ProcessTrace* trace = nullptr);
  // Processes a batch of packets arriving on one port through the compiled
  // fast path, reusing one scratch context across the whole batch. Results
  // are identical to calling Process per packet in order.
  Result<std::vector<ProcessResult>> ProcessBatch(
      std::span<net::Packet> packets, uint32_t in_port);

  // Port-level API: inject to RX, run, collect TX.
  net::PortSet& ports() { return ports_; }
  // Drains all RX queues through the pipeline; returns packets processed.
  // With workers > 1 ports are sharded across that many threads (output is
  // bit-identical to the serial drain; register-touching designs are
  // serialized to one worker to keep read-modify-write order deterministic).
  Result<uint32_t> RunToCompletion(uint32_t workers = 1);

  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }

  // Telemetry: disabled by default (costs one branch per packet). Configure
  // sizes per-port metrics to this device's port count.
  void ConfigureTelemetry(const telemetry::TelemetryConfig& config) {
    telemetry_.Configure(config, options_.port_count);
  }
  telemetry::Collector& telemetry() { return telemetry_; }
  const telemetry::Collector& telemetry() const { return telemetry_; }
  // Bumped on every functional change (LoadDesign); tags snapshots/traces.
  uint64_t config_epoch() const { return config_epoch_; }

  // Pins the execution mode (default: the epoch-specialized pipeline plan).
  // The differential fuzzing harness pins devices to each mode to
  // cross-check the execution paths on identical devices; flipping it
  // invalidates the compiled state like any other config change.
  void SetExecMode(arch::ExecMode mode) {
    if (exec_mode_ != mode) {
      exec_mode_ = mode;
      ++config_epoch_;
    }
  }
  arch::ExecMode exec_mode() const { return exec_mode_; }
  // Back-compat spelling: pins every stage to the interpreter (RunStage).
  void SetForceInterpreter(bool force) {
    SetExecMode(force ? arch::ExecMode::kInterpret
                      : arch::ExecMode::kSpecialize);
  }
  bool force_interpreter() const {
    return exec_mode_ == arch::ExecMode::kInterpret;
  }

  arch::RegisterFile& registers() { return regs_; }

  const arch::TableCatalog& catalog() const { return catalog_; }

  uint32_t physical_ingress_stages() const {
    return options_.physical_ingress_stages;
  }
  // Number of physical stages with a program mapped.
  uint32_t ActiveIngressStages() const;
  uint32_t ActiveEgressStages() const;

  // Debug/test introspection: the specialized plan for the current config
  // state (forces the lazy rebuild). Empty unless exec_mode() is
  // kSpecialize — the other modes run the generic walk with no plan.
  std::string PlanToString();

 private:
  void Reset();
  // Recompiles the mapped stage programs if the configuration changed (the
  // only mutator is LoadDesign, tracked by config_epoch_; catalog/action
  // versions are included for belt and braces).
  void EnsureCompiled();
  // The per-packet pipeline walk; `ctx` is a reusable scratch context and
  // `stats` the counter shard to charge (worker-local when parallel).
  // `tshard` is the telemetry shard (null when telemetry is disabled).
  Result<ProcessResult> ProcessCore(net::Packet& packet, uint32_t in_port,
                                    arch::PacketContext& ctx,
                                    DeviceStats& stats,
                                    telemetry::MetricsShard* tshard,
                                    ProcessTrace* trace);
  // Runs one packet with `tshard` charged, sampling a trace when the
  // collector's predicate fires (only consulted when `trace` is null).
  Result<ProcessResult> ProcessSampled(net::Packet& packet, uint32_t in_port,
                                       arch::PacketContext& ctx,
                                       DeviceStats& stats,
                                       telemetry::MetricsShard* tshard,
                                       ProcessTrace* trace);

  PisaOptions options_;
  mem::Pool pool_;
  arch::TableCatalog catalog_;
  arch::ActionStore actions_;
  arch::RegisterFile regs_;
  arch::Metadata metadata_proto_;
  arch::DesignConfig design_;
  bool loaded_ = false;

  // Physical stage slots (index = physical position).
  std::vector<std::optional<arch::StageProgram>> ingress_;
  std::vector<std::optional<arch::StageProgram>> egress_;

  net::PortSet ports_;
  DeviceStats stats_;
  telemetry::Collector telemetry_;

  // Compiled fast-path state (rebuilt lazily by EnsureCompiled). A slot is
  // nullopt when the physical stage is empty or its program could not be
  // compiled (interpreter fallback).
  struct CompiledKey {
    uint64_t epoch = 0;
    uint64_t catalog = 0;
    uint64_t actions = 0;
    bool operator==(const CompiledKey&) const = default;
  };
  uint64_t config_epoch_ = 1;
  arch::ExecMode exec_mode_ = arch::ExecMode::kSpecialize;
  CompiledKey compiled_key_;  // all-zero: never matches the first key
  std::vector<std::optional<arch::CompiledStage>> compiled_ingress_;
  std::vector<std::optional<arch::CompiledStage>> compiled_egress_;
  // Straight-line execution plan over the physical stages (kSpecialize);
  // points into ingress_/egress_/compiled_* and is rebuilt with them.
  arch::PipelinePlan plan_;
  bool plan_valid_ = false;
  bool design_uses_registers_ = false;
  int ingress_port_slot_ = arch::Metadata::kInvalidSlot;
  arch::PacketContext scratch_ctx_;
};

}  // namespace ipsa::pisa
