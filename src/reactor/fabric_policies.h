// Reference closed-loop policies for the leaf–spine fabric harness.
//
// MakeLeafSpineReactor wires one metric source per fabric node (named after
// the node: "leaf0", "spine1", ...) and one fabric-routed sink per node —
// updates go through Fabric::ApplyTableOp / InstallOn so the conservation
// oracle's shadow twins stay in sync with everything a policy does.
//
// The three reference policies (docs/reactor.md):
//  * SpineFailoverPolicy — a spine's leaf-facing port stopped receiving
//    while the leaf's uplink kept transmitting into it: the link is dead.
//    Fires pre-packed bucket withdrawals on every leaf (the same
//    reconvergence WithdrawSpine does by hand, under a latency budget).
//  * EcmpRebalancePolicy — one uplink carries more than `ratio`× its
//    sibling: overwrite the skewed buckets back to their round-robin
//    owners. Selector inserts overwrite by bucket index, so re-weighting is
//    a plain pre-packed batch.
//  * ProbeTogglePolicy — a host port ran hot: splice the fab_probe stage
//    in-situ (mark-on-miss; shows up as packets_marked); when the burst
//    subsides, remove it. The toggle's malleable set is the fab_probe
//    function only — it cannot touch any table.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/fabric.h"
#include "fabric/leaf_spine.h"
#include "reactor/reactor.h"

namespace ipsa::reactor {

// Routes a plan through the fabric driver, which mirrors every op and
// install to the node's shadow twin.
class FabricSink : public UpdateSink {
 public:
  FabricSink(fabric::Fabric& fabric, uint32_t node)
      : fabric_(&fabric), node_(node) {}
  Status ApplyOps(const CompiledPlan& plan) override;
  Result<uint64_t> Install(const CompiledPlan::Install& install) override;

 private:
  fabric::Fabric* fabric_;
  uint32_t node_;
};

struct LeafSpineReactor {
  Reactor reactor;
  // One fabric-routed sink per node, indexed like Fabric::node().
  std::vector<std::shared_ptr<UpdateSink>> sinks;
};

// Sources + sinks for every node; no policies yet.
Result<std::unique_ptr<LeafSpineReactor>> MakeLeafSpineReactor(
    fabric::LeafSpine& ls);

// Watches the (watch_leaf, spine) link: the spine's leaf-facing port went
// quiet while the leaf's host port 0 kept receiving (ports count ingress).
// Fires bucket withdrawals for `spine` on every leaf. guard_min is the
// minimum host-port RX per window that distinguishes a dead link from an
// idle fabric.
Result<Policy> SpineFailoverPolicy(fabric::LeafSpine& ls,
                                   LeafSpineReactor& lsr, uint32_t watch_leaf,
                                   uint32_t spine, uint64_t guard_min = 4);

// Watches leaf `l`'s upstream split from the receiving ends (each spine's
// port `l` counts what arrived from leaf l); fires overwrites restoring
// every bucket in `buckets` to its round-robin owner (b % S).
Result<Policy> EcmpRebalancePolicy(fabric::LeafSpine& ls,
                                   LeafSpineReactor& lsr, uint32_t l,
                                   uint32_t hot_spine, uint32_t cold_spine,
                                   const std::vector<uint32_t>& buckets,
                                   double ratio, uint64_t min_count = 8);

// Toggles the fab_probe stage on leaf `l` when host port `host_port`
// receives >= on_threshold packets per window; removes it again below
// off_threshold.
Result<Policy> ProbeTogglePolicy(fabric::LeafSpine& ls, LeafSpineReactor& lsr,
                                 uint32_t l, uint32_t host_port,
                                 uint64_t on_threshold,
                                 uint64_t off_threshold);

}  // namespace ipsa::reactor
