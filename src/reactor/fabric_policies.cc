#include "reactor/fabric_policies.h"

#include "controller/designs.h"
#include "controller/runtime_api.h"

namespace ipsa::reactor {

using controller::Bits;
using controller::MacBits;
using fabric::LeafSpine;

Status FabricSink::ApplyOps(const CompiledPlan& plan) {
  for (const rpc::TableOp& op : plan.ops) {
    IPSA_RETURN_IF_ERROR(fabric_->ApplyTableOp(node_, op));
  }
  return OkStatus();
}

Result<uint64_t> FabricSink::Install(const CompiledPlan::Install& install) {
  IPSA_ASSIGN_OR_RETURN(
      rpc::InstallOutcome outcome,
      fabric_->InstallOn(node_, rpc::InstallKind::kScript, install.source));
  return outcome.epoch;
}

Result<std::unique_ptr<LeafSpineReactor>> MakeLeafSpineReactor(
    fabric::LeafSpine& ls) {
  auto lsr = std::make_unique<LeafSpineReactor>();
  fabric::Fabric& fab = ls.fabric();
  for (uint32_t i = 0; i < fab.node_count(); ++i) {
    fabric::FabricNode* node = &fab.node(i);
    IPSA_RETURN_IF_ERROR(node->EnableTelemetry());
    IPSA_RETURN_IF_ERROR(lsr->reactor.AddSource(MetricSource{
        node->name(), [node] { return node->QueryMetrics(); }}));
    lsr->sinks.push_back(std::make_shared<FabricSink>(fab, i));
  }
  return lsr;
}

namespace {

std::string LeafName(const LeafSpine& ls, fabric::Fabric& fab, uint32_t l) {
  return fab.node(ls.LeafNode(l)).name();
}

// One leaf's pre-packed member op for every bucket owned by `spine`.
Result<CompiledPlan> SpineBucketsPlan(LeafSpine& ls, uint32_t l,
                                      uint32_t spine, rpc::TableOpKind op,
                                      const Malleable& malleable,
                                      const std::string& name) {
  IPSA_ASSIGN_OR_RETURN(compiler::ApiSpec api,
                        ls.fabric().node(ls.LeafNode(l)).Api());
  PlanBuilder pb(name, api, malleable);
  const uint32_t spines = ls.options().spines;
  for (uint32_t b = 0; b < ls.options().ecmp_buckets; ++b) {
    if (b % spines != spine) continue;
    pb.SelectorMember(
        op, "fab_ecmp_v4", b, "fab_set_spine",
        {Bits(16, LeafSpine::kL3Bd), MacBits(LeafSpine::SpineMac(spine))});
  }
  return pb.Compile();
}

}  // namespace

Result<Policy> SpineFailoverPolicy(LeafSpine& ls, LeafSpineReactor& lsr,
                                   uint32_t watch_leaf, uint32_t spine,
                                   uint64_t guard_min) {
  fabric::Fabric& fab = ls.fabric();
  Policy p;
  p.name = "failover-spine" + std::to_string(spine);
  // Port metrics count ingress: the spine's port `watch_leaf` going quiet
  // while the leaf's first host port keeps receiving means the leaf still
  // has traffic to send but none of it arrives — the link (or the spine)
  // is dead, not idle.
  p.trigger = PortRateStall(fab.node(ls.SpineNode(spine)).name(), watch_leaf,
                            LeafName(ls, fab, watch_leaf), /*guard_port=*/0,
                            guard_min);
  Malleable malleable;
  malleable.tables.insert("fab_ecmp_v4");
  for (uint32_t l = 0; l < ls.options().leaves; ++l) {
    IPSA_ASSIGN_OR_RETURN(
        CompiledPlan plan,
        SpineBucketsPlan(ls, l, spine, rpc::TableOpKind::kDelete, malleable,
                         "withdraw-spine" + std::to_string(spine) + "@" +
                             LeafName(ls, fab, l)));
    p.fire.push_back(PlanBinding{lsr.sinks[ls.LeafNode(l)], std::move(plan)});
  }
  p.cooldown_ticks = 1;
  return p;
}

Result<Policy> EcmpRebalancePolicy(LeafSpine& ls, LeafSpineReactor& lsr,
                                   uint32_t l, uint32_t hot_spine,
                                   uint32_t cold_spine,
                                   const std::vector<uint32_t>& buckets,
                                   double ratio, uint64_t min_count) {
  fabric::Fabric& fab = ls.fabric();
  Policy p;
  p.name = "rebalance-" + LeafName(ls, fab, l);
  // The leaf's upstream ECMP split is observed at the receiving ends: each
  // spine's port `l` counts what arrived from leaf l (ingress attribution),
  // so hot/cold compare the same leaf-facing port across the two spines.
  p.trigger = PortRateRatioAbove(fab.node(ls.SpineNode(hot_spine)).name(), l,
                                 fab.node(ls.SpineNode(cold_spine)).name(), l,
                                 ratio, min_count);
  Malleable malleable;
  malleable.tables.insert("fab_ecmp_v4");
  IPSA_ASSIGN_OR_RETURN(compiler::ApiSpec api,
                        fab.node(ls.LeafNode(l)).Api());
  PlanBuilder pb(p.name + "-restore", api, malleable);
  const uint32_t spines = ls.options().spines;
  for (uint32_t b : buckets) {
    uint32_t owner = b % spines;
    pb.SelectorMember(
        rpc::TableOpKind::kAdd, "fab_ecmp_v4", b, "fab_set_spine",
        {Bits(16, LeafSpine::kL3Bd), MacBits(LeafSpine::SpineMac(owner))});
  }
  IPSA_ASSIGN_OR_RETURN(CompiledPlan plan, pb.Compile());
  p.fire.push_back(PlanBinding{lsr.sinks[ls.LeafNode(l)], std::move(plan)});
  p.cooldown_ticks = 1;
  return p;
}

Result<Policy> ProbeTogglePolicy(LeafSpine& ls, LeafSpineReactor& lsr,
                                 uint32_t l, uint32_t host_port,
                                 uint64_t on_threshold,
                                 uint64_t off_threshold) {
  fabric::Fabric& fab = ls.fabric();
  Policy p;
  p.name = "probe-" + LeafName(ls, fab, l);
  p.trigger = PortRateAbove(LeafName(ls, fab, l), host_port, on_threshold);
  p.clear = PortRateBelow(LeafName(ls, fab, l), host_port, off_threshold);
  Malleable malleable;
  malleable.functions.insert("fab_probe");
  IPSA_ASSIGN_OR_RETURN(compiler::ApiSpec api,
                        fab.node(ls.LeafNode(l)).Api());
  {
    PlanBuilder pb(p.name + "-splice", api, malleable);
    pb.Script(controller::designs::FabricProbeScript(),
              controller::designs::ResolveSnippet);
    IPSA_ASSIGN_OR_RETURN(CompiledPlan plan, pb.Compile());
    p.fire.push_back(PlanBinding{lsr.sinks[ls.LeafNode(l)], std::move(plan)});
  }
  {
    PlanBuilder pb(p.name + "-remove", api, malleable);
    pb.Script(controller::designs::FabricProbeRemoveScript(),
              controller::designs::ResolveSnippet);
    IPSA_ASSIGN_OR_RETURN(CompiledPlan plan, pb.Compile());
    p.unfire.push_back(
        PlanBinding{lsr.sinks[ls.LeafNode(l)], std::move(plan)});
  }
  return p;
}

}  // namespace ipsa::reactor
