// Pre-packed reaction plans with a malleability boundary.
//
// A reaction path wins or loses its latency budget at compile time: every
// name lookup, entry pack, script parse, and wire encode that can happen
// before the trigger fires must happen there. PlanBuilder does all of that
// against the ApiSpec — table ops come out as pre-packed table::Entry values
// (the exact layout the device consumes), the whole batch additionally as an
// already-encoded TableBatchRequest payload (so the over-the-wire path just
// frames bytes, the RBFRT restructuring), and in-situ scripts are parsed and
// snippet-resolved up front so firing installs a validated template.
//
// The malleable set is the Mantis-style authority boundary: a plan may only
// touch tables and rP4 functions its policy was annotated with. Violations
// are compile-time errors — a reactor can never acquire authority at
// reaction time that it wasn't granted when the plan was built.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "compiler/rp4fc.h"
#include "controller/runtime_api.h"
#include "controller/script.h"
#include "rpc/protocol.h"
#include "util/status.h"

namespace ipsa::reactor {

// Which parts of the data plane a policy may mutate.
struct Malleable {
  std::set<std::string> tables;     // runtime table names
  std::set<std::string> functions;  // rP4 function names (install/remove)
};

struct CompiledPlan {
  std::string name;

  // Batched table ops, applied first. `wire_batch` is the same batch as an
  // encoded TableBatchRequest payload; in-process sinks walk `ops`, the RPC
  // sink sends `wire_batch` verbatim.
  std::vector<rpc::TableOp> ops;
  std::vector<uint8_t> wire_batch;

  // In-situ installs, applied after the ops in order. `source` is the
  // validated script text; `func_name` what it loads or removes.
  struct Install {
    std::string func_name;
    std::string source;
  };
  std::vector<Install> installs;

  bool empty() const { return ops.empty() && installs.empty(); }
};

class PlanBuilder {
 public:
  PlanBuilder(std::string name, const compiler::ApiSpec& api,
              const Malleable& malleable);

  // Table ops (EntryBuilder semantics; see controller/runtime_api.h). The
  // first error — unknown table/action, width mismatch, non-malleable
  // target — latches and Compile() reports it.
  PlanBuilder& Add(std::string_view table, std::string_view action,
                   const std::vector<controller::KeyValue>& keys,
                   const std::vector<mem::BitString>& args,
                   uint32_t prefix_len = 0, uint32_t priority = 0);
  PlanBuilder& Modify(std::string_view table, std::string_view action,
                      const std::vector<controller::KeyValue>& keys,
                      const std::vector<mem::BitString>& args,
                      uint32_t prefix_len = 0, uint32_t priority = 0);
  PlanBuilder& Delete(std::string_view table, std::string_view action,
                      const std::vector<controller::KeyValue>& keys,
                      const std::vector<mem::BitString>& args,
                      uint32_t prefix_len = 0, uint32_t priority = 0);
  // Selector member by bucket index; kAdd overwrites an occupied bucket
  // (that is how re-weighting works), kDelete withdraws it.
  PlanBuilder& SelectorMember(rpc::TableOpKind op, std::string_view table,
                              uint32_t bucket, std::string_view action,
                              const std::vector<mem::BitString>& args);

  // An in-situ update script (controller/script.h grammar). Parsed and
  // snippet-resolved now; the function it loads/updates/removes must be in
  // the malleable set.
  PlanBuilder& Script(const std::string& script_source,
                      const controller::SnippetResolver& resolver);

  // Returns the plan with the wire batch encoded, or the first error any
  // verb hit.
  Result<CompiledPlan> Compile();

 private:
  PlanBuilder& Op(rpc::TableOpKind op, std::string_view table,
                  std::string_view action,
                  const std::vector<controller::KeyValue>& keys,
                  const std::vector<mem::BitString>& args, uint32_t prefix_len,
                  uint32_t priority);
  bool CheckTable(std::string_view table);

  controller::EntryBuilder builder_;
  const Malleable* malleable_;
  CompiledPlan plan_;
  Status status_;
};

}  // namespace ipsa::reactor
