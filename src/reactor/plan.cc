#include "reactor/plan.h"

#include "wire/wire.h"

namespace ipsa::reactor {

PlanBuilder::PlanBuilder(std::string name, const compiler::ApiSpec& api,
                         const Malleable& malleable)
    : builder_(api), malleable_(&malleable) {
  plan_.name = std::move(name);
}

bool PlanBuilder::CheckTable(std::string_view table) {
  if (malleable_->tables.count(std::string(table)) > 0) return true;
  if (status_.ok()) {
    status_ = FailedPrecondition("plan '" + plan_.name + "': table '" +
                                 std::string(table) +
                                 "' is not in the policy's malleable set");
  }
  return false;
}

PlanBuilder& PlanBuilder::Op(rpc::TableOpKind op, std::string_view table,
                             std::string_view action,
                             const std::vector<controller::KeyValue>& keys,
                             const std::vector<mem::BitString>& args,
                             uint32_t prefix_len, uint32_t priority) {
  if (!status_.ok() || !CheckTable(table)) return *this;
  Result<table::Entry> entry =
      builder_.Build(table, action, keys, args, prefix_len, priority);
  if (!entry.ok()) {
    status_ = entry.status();
    return *this;
  }
  rpc::TableOp top;
  top.op = op;
  top.table = std::string(table);
  top.entry = std::move(entry).value();
  plan_.ops.push_back(std::move(top));
  return *this;
}

PlanBuilder& PlanBuilder::Add(std::string_view table, std::string_view action,
                              const std::vector<controller::KeyValue>& keys,
                              const std::vector<mem::BitString>& args,
                              uint32_t prefix_len, uint32_t priority) {
  return Op(rpc::TableOpKind::kAdd, table, action, keys, args, prefix_len,
            priority);
}

PlanBuilder& PlanBuilder::Modify(std::string_view table,
                                 std::string_view action,
                                 const std::vector<controller::KeyValue>& keys,
                                 const std::vector<mem::BitString>& args,
                                 uint32_t prefix_len, uint32_t priority) {
  return Op(rpc::TableOpKind::kModify, table, action, keys, args, prefix_len,
            priority);
}

PlanBuilder& PlanBuilder::Delete(std::string_view table,
                                 std::string_view action,
                                 const std::vector<controller::KeyValue>& keys,
                                 const std::vector<mem::BitString>& args,
                                 uint32_t prefix_len, uint32_t priority) {
  return Op(rpc::TableOpKind::kDelete, table, action, keys, args, prefix_len,
            priority);
}

PlanBuilder& PlanBuilder::SelectorMember(
    rpc::TableOpKind op, std::string_view table, uint32_t bucket,
    std::string_view action, const std::vector<mem::BitString>& args) {
  if (!status_.ok() || !CheckTable(table)) return *this;
  Result<table::Entry> entry =
      builder_.BuildSelectorMember(table, bucket, action, args);
  if (!entry.ok()) {
    status_ = entry.status();
    return *this;
  }
  rpc::TableOp top;
  top.op = op;
  top.table = std::string(table);
  top.entry = std::move(entry).value();
  plan_.ops.push_back(std::move(top));
  return *this;
}

PlanBuilder& PlanBuilder::Script(const std::string& script_source,
                                 const controller::SnippetResolver& resolver) {
  if (!status_.ok()) return *this;
  // Parse now: a malformed script or unresolvable snippet must never
  // surface at reaction time.
  Result<compiler::UpdateRequest> req =
      controller::ParseScript(script_source, resolver);
  if (!req.ok()) {
    status_ = req.status();
    return *this;
  }
  const std::string& func = req.value().func_name;
  if (func.empty()) {
    status_ = InvalidArgument("plan '" + plan_.name +
                              "': script has no --func_name target");
    return *this;
  }
  if (malleable_->functions.count(func) == 0) {
    status_ = FailedPrecondition("plan '" + plan_.name + "': function '" +
                                 func +
                                 "' is not in the policy's malleable set");
    return *this;
  }
  plan_.installs.push_back(CompiledPlan::Install{func, script_source});
  return *this;
}

Result<CompiledPlan> PlanBuilder::Compile() {
  IPSA_RETURN_IF_ERROR(status_);
  if (!plan_.ops.empty()) {
    rpc::TableBatchRequest req;
    req.ops = plan_.ops;
    wire::Writer w;
    req.Encode(w);
    plan_.wire_batch = w.Take();
  }
  return plan_;
}

}  // namespace ipsa::reactor
