// The closed-loop engine: poll metric sources, evaluate policies, fire
// pre-packed plans.
//
// One Tick() is one control-loop iteration: every source is polled into its
// SourceWindow, then every policy's state machine advances. A policy is
// *armed* until its trigger condition holds over fresh windows; firing
// applies each bound plan through its sink — pre-packed table ops first,
// then in-situ installs — and records the detect→applied latency (the clock
// starts when the condition evaluates true and stops when the last sink
// acknowledged; for toggles, when the data plane runs the new epoch). A
// policy with a clear condition then waits *fired* until the clear holds and
// its unfire plans run; one without re-arms immediately, subject to
// cooldown_ticks and max_fires.
//
// Sinks abstract where updates land: an in-process rpc::Backend, a live
// switchd over the control channel (using the plan's pre-encoded batch
// payload), or a fabric node (keeping the fabric's shadow twins in sync —
// see fabric_policies.h).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "reactor/plan.h"
#include "reactor/policy.h"
#include "rpc/backend.h"
#include "rpc/client.h"
#include "telemetry/metrics.h"
#include "util/json.h"

namespace ipsa::reactor {

// One switch's telemetry feed, by name. The poll function must return the
// device's current snapshot (GetMetrics semantics).
struct MetricSource {
  std::string name;
  std::function<Result<rpc::MetricsResponse>()> poll;
};

MetricSource SourceFromBackend(std::string name, rpc::Backend& backend);
MetricSource SourceFromClient(std::string name, rpc::Client& client);

// Where a fired plan's updates land.
class UpdateSink {
 public:
  virtual ~UpdateSink() = default;
  // Applies the plan's table ops as one batch.
  virtual Status ApplyOps(const CompiledPlan& plan) = 0;
  // Applies one in-situ install; returns the new config epoch.
  virtual Result<uint64_t> Install(const CompiledPlan::Install& install) = 0;
};

// In-process device backend: ops loop over the pre-packed entries (no
// encode/decode at all), installs go through the backend's script path.
class BackendSink : public UpdateSink {
 public:
  explicit BackendSink(rpc::Backend& backend) : backend_(&backend) {}
  Status ApplyOps(const CompiledPlan& plan) override;
  Result<uint64_t> Install(const CompiledPlan::Install& install) override;

 private:
  rpc::Backend* backend_;
};

// Live switchd over the control channel: ops are sent as the plan's
// pre-encoded batch payload (ApplyBatchPrepacked), installs as kScript.
class ClientSink : public UpdateSink {
 public:
  explicit ClientSink(rpc::Client& client) : client_(&client) {}
  Status ApplyOps(const CompiledPlan& plan) override;
  Result<uint64_t> Install(const CompiledPlan::Install& install) override;

 private:
  rpc::Client* client_;
};

// A plan aimed at a sink. One policy can carry several (e.g. withdraw a
// spine's buckets on every leaf).
struct PlanBinding {
  std::shared_ptr<UpdateSink> sink;
  CompiledPlan plan;
};

struct Policy {
  std::string name;
  Condition trigger;
  std::vector<PlanBinding> fire;  // applied in order when trigger holds

  // Toggle support: with `clear` set, the policy waits in the fired state
  // until `clear` holds, then applies `unfire` and re-arms.
  std::optional<Condition> clear;
  std::vector<PlanBinding> unfire;

  uint32_t cooldown_ticks = 0;  // quiet ticks after any transition
  uint64_t max_fires = 0;       // 0 = unlimited
};

struct PolicyStatus {
  enum class State : uint8_t { kArmed, kFired, kExhausted };
  State state = State::kArmed;
  uint64_t fires = 0;
  uint64_t clears = 0;
  uint64_t apply_errors = 0;
  uint64_t last_applied_epoch = 0;     // epoch of the last install ack (0 if
                                       // the plans carry no installs)
  double last_detect_to_applied_us = 0;
  telemetry::Histogram detect_to_applied_ns;
  std::string last_error;
};

struct TickReport {
  uint64_t tick = 0;
  uint32_t polled = 0;
  uint32_t poll_errors = 0;
  uint32_t stale = 0;  // sources whose poll did not advance the window
  uint32_t fired = 0;
  uint32_t cleared = 0;
  uint32_t apply_errors = 0;
};

class Reactor {
 public:
  Status AddSource(MetricSource source);
  // Validates that every condition references a known source.
  Status AddPolicy(Policy policy);

  // One control-loop iteration. Apply failures are recorded per policy (and
  // in the report), not returned: a reactor outlives a flapping sink.
  Result<TickReport> Tick();

  uint64_t ticks() const { return ticks_; }
  uint64_t missed_snapshots() const;
  const SourceWindow* window(const std::string& source) const;
  const PolicyStatus* status(const std::string& policy) const;

  // Compact per-policy/per-source state, for reactord --json and tests.
  util::Json ReportJson() const;

 private:
  struct PolicyState {
    Policy policy;
    PolicyStatus status;
    uint32_t cooldown = 0;
  };

  // Applies all bindings; observes latency into `st` on success.
  void FireBindings(const std::vector<PlanBinding>& bindings, PolicyState& st,
                    TickReport& report);

  std::vector<MetricSource> sources_;
  std::map<std::string, SourceWindow> windows_;
  std::vector<PolicyState> policies_;
  uint64_t ticks_ = 0;
};

}  // namespace ipsa::reactor
