// Windowed deltas between consecutive telemetry snapshots.
//
// Policies react to *rates*, not lifetime totals: "this port stopped
// receiving", "that uplink carries 3x its sibling". A SourceWindow keeps the
// two most recent snapshots from one metric source and exposes the
// difference — per-port packet deltas, per-table hit/miss deltas, and
// windowed latency percentiles computed by elementwise histogram
// subtraction (the power-of-two buckets that make shard merge an addition
// make window extraction a subtraction).
//
// Staleness is first-class: every snapshot carries the collector's monotonic
// `seq`, so a window knows whether the latest poll actually advanced it
// (fresh), returned the same snapshot again (stale — conditions must not
// re-fire on it), or skipped snapshots entirely (missed, counted).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "telemetry/metrics.h"

namespace ipsa::reactor {

// Observations recorded in `cur` but not yet in `prev` (prev must be an
// earlier copy of the same histogram; counters are monotonic between
// resets).
uint64_t DeltaCount(const telemetry::Histogram& cur,
                    const telemetry::Histogram& prev);

// Upper bound of the bucket holding the q-quantile (q in [0,1]) of the
// delta observations, i.e. the windowed percentile. 0 when the window is
// empty. Deterministic, like Histogram::Percentile.
uint64_t DeltaPercentile(const telemetry::Histogram& cur,
                         const telemetry::Histogram& prev, double q);

// Per-port activity over one window.
struct PortWindow {
  uint64_t packets_in = 0;
  uint64_t packets_out = 0;
  uint64_t packets_dropped = 0;
  uint64_t packets_marked = 0;
  telemetry::Histogram cycles_cur;   // cumulative at window end
  telemetry::Histogram cycles_prev;  // cumulative at window start

  uint64_t CyclesCount() const { return DeltaCount(cycles_cur, cycles_prev); }
  uint64_t CyclesPercentile(double q) const {
    return DeltaPercentile(cycles_cur, cycles_prev, q);
  }
};

// Per-table activity over one window (entries is the end-of-window count).
struct TableWindow {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint32_t entries = 0;
};

class SourceWindow {
 public:
  // Feeds the next snapshot. Returns the seq advance: 0 when the poll
  // returned an already-seen snapshot (window unchanged, not fresh), 1 for a
  // consecutive snapshot, >1 when snapshots were missed between polls. A seq
  // that went *backwards* (collector restarted) reseeds the window.
  uint64_t Push(const telemetry::MetricsSnapshot& snap);

  // A failed poll: the window keeps its data but is no longer fresh, so
  // conditions over it hold fire until the source recovers.
  void MarkStale() { fresh_ = false; }

  bool ready() const { return ready_; }  // two distinct snapshots seen
  bool fresh() const { return fresh_; }  // last Push advanced the window
  uint64_t seq() const { return cur_.seq; }
  uint64_t config_epoch() const { return cur_.config_epoch; }
  uint64_t missed() const { return missed_; }

  // Null when the port/table had no row in either snapshot.
  const PortWindow* port(uint32_t port) const;
  const TableWindow* table(const std::string& name) const;

  // Zero-default accessors, for conditions over possibly-idle ports.
  uint64_t PortIn(uint32_t p) const;
  uint64_t PortOut(uint32_t p) const;

 private:
  telemetry::MetricsSnapshot prev_;
  telemetry::MetricsSnapshot cur_;
  std::map<uint32_t, PortWindow> ports_;
  std::map<std::string, TableWindow> tables_;
  bool has_cur_ = false;
  bool ready_ = false;
  bool fresh_ = false;
  uint64_t missed_ = 0;

  void Rebuild();
};

}  // namespace ipsa::reactor
