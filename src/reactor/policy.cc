#include "reactor/policy.h"

namespace ipsa::reactor {

std::string Condition::ToString() const {
  switch (kind) {
    case ConditionKind::kPortRateStall:
      return "stall(" + source + ":" + std::to_string(port) + " while " +
             (guard_source.empty() ? source : guard_source) + ":" +
             std::to_string(guard_port) +
             " in>=" + std::to_string(min_count) + ")";
    case ConditionKind::kPortP99Above:
      return "p99(" + source + ":" + std::to_string(port) + ") > " +
             std::to_string(threshold) + " cycles";
    case ConditionKind::kPortRateAbove:
      return "in(" + source + ":" + std::to_string(port) +
             ") >= " + std::to_string(threshold);
    case ConditionKind::kPortRateBelow:
      return "in(" + source + ":" + std::to_string(port) + ") < " +
             std::to_string(threshold);
    case ConditionKind::kPortRateRatioAbove:
      return "in(" + source + ":" + std::to_string(port) + ") > " +
             std::to_string(ratio) + " * in(" +
             (guard_source.empty() ? source : guard_source) + ":" +
             std::to_string(guard_port) + ")";
    case ConditionKind::kTableMissRateAbove:
      return "missrate(" + source + ":" + table + ") > " +
             std::to_string(ratio);
  }
  return "condition(?)";
}

Condition PortRateStall(std::string source, uint32_t port,
                        std::string guard_source, uint32_t guard_port,
                        uint64_t guard_min) {
  Condition c;
  c.kind = ConditionKind::kPortRateStall;
  c.source = std::move(source);
  c.port = port;
  c.guard_source = std::move(guard_source);
  c.guard_port = guard_port;
  c.min_count = guard_min;
  return c;
}

Condition PortP99Above(std::string source, uint32_t port, uint64_t cycles,
                       uint64_t min_count) {
  Condition c;
  c.kind = ConditionKind::kPortP99Above;
  c.source = std::move(source);
  c.port = port;
  c.threshold = cycles;
  c.min_count = min_count;
  return c;
}

Condition PortRateAbove(std::string source, uint32_t port, uint64_t packets) {
  Condition c;
  c.kind = ConditionKind::kPortRateAbove;
  c.source = std::move(source);
  c.port = port;
  c.threshold = packets;
  return c;
}

Condition PortRateBelow(std::string source, uint32_t port, uint64_t packets) {
  Condition c;
  c.kind = ConditionKind::kPortRateBelow;
  c.source = std::move(source);
  c.port = port;
  c.threshold = packets;
  return c;
}

Condition PortRateRatioAbove(std::string hot_source, uint32_t hot_port,
                             std::string cold_source, uint32_t cold_port,
                             double ratio, uint64_t min_count) {
  Condition c;
  c.kind = ConditionKind::kPortRateRatioAbove;
  c.source = std::move(hot_source);
  c.port = hot_port;
  c.guard_source = std::move(cold_source);
  c.guard_port = cold_port;
  c.ratio = ratio;
  c.min_count = min_count;
  return c;
}

Condition TableMissRateAbove(std::string source, std::string table,
                             double ratio, uint64_t min_count) {
  Condition c;
  c.kind = ConditionKind::kTableMissRateAbove;
  c.source = std::move(source);
  c.table = std::move(table);
  c.ratio = ratio;
  c.min_count = min_count;
  return c;
}

namespace {

const SourceWindow* ReadyWindow(
    const std::map<std::string, SourceWindow>& windows,
    const std::string& name) {
  auto it = windows.find(name);
  if (it == windows.end()) return nullptr;
  if (!it->second.ready() || !it->second.fresh()) return nullptr;
  return &it->second;
}

}  // namespace

bool Evaluate(const Condition& c,
              const std::map<std::string, SourceWindow>& windows) {
  const SourceWindow* w = ReadyWindow(windows, c.source);
  if (w == nullptr) return false;
  switch (c.kind) {
    case ConditionKind::kPortRateStall: {
      const SourceWindow* g = ReadyWindow(
          windows, c.guard_source.empty() ? c.source : c.guard_source);
      if (g == nullptr) return false;
      return w->PortIn(c.port) == 0 && g->PortIn(c.guard_port) >= c.min_count;
    }
    case ConditionKind::kPortP99Above: {
      const PortWindow* p = w->port(c.port);
      if (p == nullptr || p->CyclesCount() < c.min_count) return false;
      return p->CyclesPercentile(0.99) > c.threshold;
    }
    case ConditionKind::kPortRateAbove:
      return w->PortIn(c.port) >= c.threshold;
    case ConditionKind::kPortRateBelow:
      return w->PortIn(c.port) < c.threshold;
    case ConditionKind::kPortRateRatioAbove: {
      const SourceWindow* g = ReadyWindow(
          windows, c.guard_source.empty() ? c.source : c.guard_source);
      if (g == nullptr) return false;
      uint64_t hot = w->PortIn(c.port);
      uint64_t cold = g->PortIn(c.guard_port);
      if (hot < c.min_count) return false;
      return static_cast<double>(hot) >
             c.ratio * static_cast<double>(cold == 0 ? 1 : cold);
    }
    case ConditionKind::kTableMissRateAbove: {
      const TableWindow* t = w->table(c.table);
      if (t == nullptr) return false;
      uint64_t total = t->hits + t->misses;
      if (total < c.min_count) return false;
      return static_cast<double>(t->misses) >
             c.ratio * static_cast<double>(total);
    }
  }
  return false;
}

}  // namespace ipsa::reactor
