// Declarative reaction conditions over snapshot windows.
//
// A condition reads one or two SourceWindows by source name and reduces to a
// bool. All kinds are rate/threshold tests over one polling window — the
// reactor's Tick() cadence is the measurement interval, the same way a
// hardware Mantis dialogue runs per control-loop iteration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "reactor/delta.h"

namespace ipsa::reactor {

enum class ConditionKind : uint8_t {
  // Link/port failure: `source`:`port` received nothing this window while
  // the guard (`guard_source`:`guard_port`) received at least min_count.
  // Port metrics are ingress-attributed, so the guard is another ingress
  // port that should be active whenever the watched one is — it keeps a
  // merely idle fabric from reading as a failure.
  kPortRateStall = 0,
  // Windowed p99 of `source`:`port`'s pipeline latency (device cycles)
  // exceeds `threshold`; at least min_count observations in the window.
  kPortP99Above = 1,
  // `source`:`port` received at least `threshold` packets this window.
  kPortRateAbove = 2,
  // `source`:`port` received fewer than `threshold` packets this window
  // (the clear side of an on/off toggle).
  kPortRateBelow = 3,
  // Load imbalance: in(`source`:`port`) > ratio * in(`guard_source`:
  // `guard_port`), with at least min_count packets into the hot port.
  // The two sides may live on different sources (e.g. two spines' ports
  // facing the same leaf — the leaf's upstream ECMP split seen from the
  // receiving ends, since ports count ingress).
  kPortRateRatioAbove = 4,
  // `table` on `source` missed more than `ratio` of its lookups this
  // window, over at least min_count lookups.
  kTableMissRateAbove = 5,
};

struct Condition {
  ConditionKind kind = ConditionKind::kPortRateAbove;
  std::string source;        // SourceWindow name the condition reads
  std::string guard_source;  // stall/ratio second side ("" = same as source)
  uint32_t port = 0;
  uint32_t guard_port = 0;
  std::string table;       // kTableMissRateAbove
  uint64_t threshold = 0;  // packets or cycles, per kind
  uint64_t min_count = 1;  // observation floor before the test applies
  double ratio = 0.0;

  std::string ToString() const;
};

// Convenience constructors.
Condition PortRateStall(std::string source, uint32_t port,
                        std::string guard_source, uint32_t guard_port,
                        uint64_t guard_min);
Condition PortP99Above(std::string source, uint32_t port, uint64_t cycles,
                       uint64_t min_count = 1);
Condition PortRateAbove(std::string source, uint32_t port, uint64_t packets);
Condition PortRateBelow(std::string source, uint32_t port, uint64_t packets);
Condition PortRateRatioAbove(std::string hot_source, uint32_t hot_port,
                             std::string cold_source, uint32_t cold_port,
                             double ratio, uint64_t min_count = 1);
Condition TableMissRateAbove(std::string source, std::string table,
                             double ratio, uint64_t min_count = 1);

// True when the condition holds over the named windows. Every referenced
// window must be ready (two snapshots) and fresh (advanced by the last
// poll); otherwise the condition is false — a stalled collector must not
// look like a stalled port.
bool Evaluate(const Condition& c,
              const std::map<std::string, SourceWindow>& windows);

}  // namespace ipsa::reactor
