#include "reactor/delta.h"

namespace ipsa::reactor {

uint64_t DeltaCount(const telemetry::Histogram& cur,
                    const telemetry::Histogram& prev) {
  return cur.count >= prev.count ? cur.count - prev.count : cur.count;
}

uint64_t DeltaPercentile(const telemetry::Histogram& cur,
                         const telemetry::Histogram& prev, double q) {
  // Counter reset between the two snapshots: the window is just `cur`.
  if (cur.count < prev.count) return cur.Percentile(q);
  uint64_t total = cur.count - prev.count;
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (uint32_t i = 0; i < telemetry::kHistogramBuckets; ++i) {
    uint64_t d = cur.buckets[i] - prev.buckets[i];
    seen += d;
    if (seen > rank) {
      uint64_t bound = telemetry::Histogram::UpperBound(i);
      // Clamp to the cumulative max: the window's true max is unknown but
      // can't exceed it (mirrors Histogram::Percentile's clamp).
      return bound < cur.max ? bound : cur.max;
    }
  }
  return cur.max;
}

uint64_t SourceWindow::Push(const telemetry::MetricsSnapshot& snap) {
  if (!has_cur_ || snap.seq < cur_.seq) {
    // First snapshot, or the collector restarted: reseed.
    cur_ = snap;
    has_cur_ = true;
    ready_ = false;
    fresh_ = false;
    ports_.clear();
    tables_.clear();
    return 0;
  }
  if (snap.seq == cur_.seq) {
    fresh_ = false;
    return 0;
  }
  uint64_t advance = snap.seq - cur_.seq;
  if (advance > 1) missed_ += advance - 1;
  prev_ = std::move(cur_);
  cur_ = snap;
  ready_ = true;
  fresh_ = true;
  Rebuild();
  return advance;
}

void SourceWindow::Rebuild() {
  ports_.clear();
  tables_.clear();
  // Counters are cumulative; a port/table present only in `cur` contributes
  // its full value, one present only in `prev` went quiet (delta 0). A
  // ResetMetrics between the snapshots makes cur < prev — treat cur as the
  // whole window rather than wrapping around.
  std::map<uint32_t, const telemetry::PortMetrics*> prev_ports;
  for (const auto& row : prev_.ports) prev_ports[row.port] = &row.metrics;
  auto sub = [](uint64_t c, uint64_t p) { return c >= p ? c - p : c; };
  for (const auto& row : cur_.ports) {
    PortWindow w;
    const telemetry::PortMetrics* p = nullptr;
    auto it = prev_ports.find(row.port);
    if (it != prev_ports.end()) p = it->second;
    w.packets_in = sub(row.metrics.packets_in, p ? p->packets_in : 0);
    w.packets_out = sub(row.metrics.packets_out, p ? p->packets_out : 0);
    w.packets_dropped =
        sub(row.metrics.packets_dropped, p ? p->packets_dropped : 0);
    w.packets_marked =
        sub(row.metrics.packets_marked, p ? p->packets_marked : 0);
    w.cycles_cur = row.metrics.cycles;
    if (p != nullptr && row.metrics.cycles.count >= p->cycles.count) {
      w.cycles_prev = p->cycles;
    }
    ports_[row.port] = std::move(w);
  }
  std::map<std::string, const telemetry::TableRow*> prev_tables;
  for (const auto& row : prev_.tables) prev_tables[row.table] = &row;
  for (const auto& row : cur_.tables) {
    TableWindow w;
    const telemetry::TableRow* p = nullptr;
    auto it = prev_tables.find(row.table);
    if (it != prev_tables.end()) p = it->second;
    w.hits = sub(row.hits, p ? p->hits : 0);
    w.misses = sub(row.misses, p ? p->misses : 0);
    w.entries = row.entries;
    tables_[row.table] = w;
  }
}

const PortWindow* SourceWindow::port(uint32_t port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? nullptr : &it->second;
}

const TableWindow* SourceWindow::table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

uint64_t SourceWindow::PortIn(uint32_t p) const {
  const PortWindow* w = port(p);
  return w == nullptr ? 0 : w->packets_in;
}

uint64_t SourceWindow::PortOut(uint32_t p) const {
  const PortWindow* w = port(p);
  return w == nullptr ? 0 : w->packets_out;
}

}  // namespace ipsa::reactor
