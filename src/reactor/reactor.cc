#include "reactor/reactor.h"

#include "util/clock.h"

namespace ipsa::reactor {

MetricSource SourceFromBackend(std::string name, rpc::Backend& backend) {
  rpc::Backend* b = &backend;
  return MetricSource{std::move(name), [b] { return b->QueryMetrics(); }};
}

MetricSource SourceFromClient(std::string name, rpc::Client& client) {
  rpc::Client* c = &client;
  return MetricSource{std::move(name), [c] { return c->QueryMetrics(); }};
}

Status BackendSink::ApplyOps(const CompiledPlan& plan) {
  for (const rpc::TableOp& op : plan.ops) {
    IPSA_RETURN_IF_ERROR(backend_->ApplyTableOp(op));
  }
  return OkStatus();
}

Result<uint64_t> BackendSink::Install(const CompiledPlan::Install& install) {
  IPSA_ASSIGN_OR_RETURN(
      rpc::InstallOutcome outcome,
      backend_->Install(rpc::InstallKind::kScript, install.source));
  return outcome.epoch;
}

Status ClientSink::ApplyOps(const CompiledPlan& plan) {
  if (plan.ops.empty()) return OkStatus();
  // One buffer copy of the pre-encoded payload (Call takes ownership); no
  // per-op encoding happens here.
  IPSA_ASSIGN_OR_RETURN(rpc::TableBatchResponse resp,
                        client_->ApplyBatchPrepacked(plan.wire_batch));
  if (resp.applied != plan.ops.size()) {
    return InternalError("batch applied " + std::to_string(resp.applied) +
                         " of " + std::to_string(plan.ops.size()) + " ops");
  }
  return OkStatus();
}

Result<uint64_t> ClientSink::Install(const CompiledPlan::Install& install) {
  IPSA_ASSIGN_OR_RETURN(
      rpc::InstallResponse resp,
      client_->Install(rpc::InstallKind::kScript, install.source));
  return resp.epoch;
}

Status Reactor::AddSource(MetricSource source) {
  if (source.name.empty()) return InvalidArgument("source needs a name");
  if (!source.poll) return InvalidArgument("source needs a poll function");
  if (windows_.count(source.name) > 0) {
    return AlreadyExists("duplicate source '" + source.name + "'");
  }
  windows_[source.name];  // default-construct the window
  sources_.push_back(std::move(source));
  return OkStatus();
}

Status Reactor::AddPolicy(Policy policy) {
  if (policy.name.empty()) return InvalidArgument("policy needs a name");
  auto check = [this, &policy](const Condition& c) -> Status {
    if (windows_.count(c.source) == 0) {
      return InvalidArgument("policy '" + policy.name +
                             "' references unknown source '" + c.source + "'");
    }
    if (!c.guard_source.empty() && windows_.count(c.guard_source) == 0) {
      return InvalidArgument("policy '" + policy.name +
                             "' references unknown guard source '" +
                             c.guard_source + "'");
    }
    return OkStatus();
  };
  IPSA_RETURN_IF_ERROR(check(policy.trigger));
  if (policy.clear.has_value()) IPSA_RETURN_IF_ERROR(check(*policy.clear));
  for (const auto& st : policies_) {
    if (st.policy.name == policy.name) {
      return AlreadyExists("duplicate policy '" + policy.name + "'");
    }
  }
  PolicyState st;
  st.policy = std::move(policy);
  policies_.push_back(std::move(st));
  return OkStatus();
}

void Reactor::FireBindings(const std::vector<PlanBinding>& bindings,
                           PolicyState& st, TickReport& report) {
  // The detect→applied clock: starts the instant the condition evaluated
  // true (our caller invokes us immediately), stops when the last sink has
  // acknowledged every op and install.
  util::Stopwatch sw;
  for (const PlanBinding& b : bindings) {
    Status s = b.sink->ApplyOps(b.plan);
    if (s.ok()) {
      for (const CompiledPlan::Install& inst : b.plan.installs) {
        Result<uint64_t> epoch = b.sink->Install(inst);
        if (!epoch.ok()) {
          s = epoch.status();
          break;
        }
        st.status.last_applied_epoch = epoch.value();
      }
    }
    if (!s.ok()) {
      ++st.status.apply_errors;
      ++report.apply_errors;
      st.status.last_error = "plan '" + b.plan.name + "': " + s.ToString();
      return;  // don't keep mutating through a failing reaction
    }
  }
  double us = sw.ElapsedMicros();
  st.status.last_detect_to_applied_us = us;
  st.status.detect_to_applied_ns.Observe(static_cast<uint64_t>(us * 1e3));
}

Result<TickReport> Reactor::Tick() {
  TickReport report;
  report.tick = ++ticks_;
  for (const MetricSource& src : sources_) {
    Result<rpc::MetricsResponse> resp = src.poll();
    SourceWindow& w = windows_[src.name];
    if (!resp.ok()) {
      ++report.poll_errors;
      w.MarkStale();
      continue;
    }
    ++report.polled;
    if (w.Push(resp.value().snapshot) == 0) ++report.stale;
  }
  for (PolicyState& st : policies_) {
    if (st.cooldown > 0) {
      --st.cooldown;
      continue;
    }
    switch (st.status.state) {
      case PolicyStatus::State::kArmed:
        if (Evaluate(st.policy.trigger, windows_)) {
          FireBindings(st.policy.fire, st, report);
          ++st.status.fires;
          ++report.fired;
          st.cooldown = st.policy.cooldown_ticks;
          if (st.policy.clear.has_value()) {
            st.status.state = PolicyStatus::State::kFired;
          } else if (st.policy.max_fires > 0 &&
                     st.status.fires >= st.policy.max_fires) {
            st.status.state = PolicyStatus::State::kExhausted;
          }
        }
        break;
      case PolicyStatus::State::kFired:
        if (Evaluate(*st.policy.clear, windows_)) {
          FireBindings(st.policy.unfire, st, report);
          ++st.status.clears;
          ++report.cleared;
          st.cooldown = st.policy.cooldown_ticks;
          st.status.state = (st.policy.max_fires > 0 &&
                             st.status.fires >= st.policy.max_fires)
                                ? PolicyStatus::State::kExhausted
                                : PolicyStatus::State::kArmed;
        }
        break;
      case PolicyStatus::State::kExhausted:
        break;
    }
  }
  return report;
}

uint64_t Reactor::missed_snapshots() const {
  uint64_t total = 0;
  for (const auto& [name, w] : windows_) total += w.missed();
  return total;
}

const SourceWindow* Reactor::window(const std::string& source) const {
  auto it = windows_.find(source);
  return it == windows_.end() ? nullptr : &it->second;
}

const PolicyStatus* Reactor::status(const std::string& policy) const {
  for (const auto& st : policies_) {
    if (st.policy.name == policy) return &st.status;
  }
  return nullptr;
}

util::Json Reactor::ReportJson() const {
  util::Json j = util::Json::Object();
  j["ticks"] = ticks_;
  util::Json sources = util::Json::Object();
  for (const auto& [name, w] : windows_) {
    util::Json s = util::Json::Object();
    s["seq"] = w.seq();
    s["ready"] = w.ready();
    s["fresh"] = w.fresh();
    s["missed"] = w.missed();
    sources[name] = std::move(s);
  }
  j["sources"] = std::move(sources);
  util::Json policies = util::Json::Object();
  for (const auto& st : policies_) {
    util::Json p = util::Json::Object();
    switch (st.status.state) {
      case PolicyStatus::State::kArmed: p["state"] = "armed"; break;
      case PolicyStatus::State::kFired: p["state"] = "fired"; break;
      case PolicyStatus::State::kExhausted: p["state"] = "exhausted"; break;
    }
    p["trigger"] = st.policy.trigger.ToString();
    p["fires"] = st.status.fires;
    p["clears"] = st.status.clears;
    p["apply_errors"] = st.status.apply_errors;
    p["last_applied_epoch"] = st.status.last_applied_epoch;
    p["last_detect_to_applied_us"] = st.status.last_detect_to_applied_us;
    if (!st.status.detect_to_applied_ns.empty()) {
      p["detect_to_applied_p50_us"] =
          static_cast<double>(st.status.detect_to_applied_ns.Percentile(0.5)) /
          1e3;
      p["detect_to_applied_p99_us"] =
          static_cast<double>(st.status.detect_to_applied_ns.Percentile(0.99)) /
          1e3;
    }
    if (!st.status.last_error.empty()) p["last_error"] = st.status.last_error;
    policies[st.policy.name] = std::move(p);
  }
  j["policies"] = std::move(policies);
  return j;
}

}  // namespace ipsa::reactor
