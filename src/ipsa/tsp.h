// Templated Stage Processor (paper §2.2).
//
// A TSP is a container: its behaviour is entirely determined by downloaded
// template parameters (header indicators, match predicates + table pointers,
// action primitives). Programming a TSP means writing those words — a few
// clock cycles — never synthesizing logic. One TSP can host multiple merged
// independent logical stages (§3.1), so the template is a list of
// StagePrograms executed in order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/stage.h"

namespace ipsa::ipbm {

enum class TspRole { kBypass, kIngress, kEgress };

std::string_view TspRoleName(TspRole role);

class Tsp {
 public:
  explicit Tsp(uint32_t id) : id_(id) {}

  uint32_t id() const { return id_; }
  TspRole role() const { return role_; }
  void SetRole(TspRole role) {
    role_ = role;
    ++config_version_;
  }

  // Bypassed TSPs are held in a low-power idle state (§2.3); the power model
  // reads this flag.
  bool powered() const { return role_ != TspRole::kBypass; }

  bool HasTemplate() const { return !programs_.empty(); }
  const std::vector<arch::StageProgram>& programs() const { return programs_; }

  // Overwrites the template; returns the config words written.
  uint32_t WriteTemplate(std::vector<arch::StageProgram> programs) {
    programs_ = std::move(programs);
    uint32_t words = 1;  // template header word
    for (const auto& p : programs_) words += p.ConfigWords();
    template_writes_ += 1;
    config_words_ += words;
    ++config_version_;
    return words;
  }

  uint32_t ClearTemplate() {
    programs_.clear();
    config_words_ += 1;
    ++config_version_;
    return 1;
  }

  // Names of all logical stages hosted here (Fig. 4's mapping display).
  std::vector<std::string> StageNames() const {
    std::vector<std::string> out;
    out.reserve(programs_.size());
    for (const auto& p : programs_) out.push_back(p.name);
    return out;
  }

  // All tables referenced by the template (for crossbar routing).
  std::vector<std::string> ReferencedTables() const {
    std::vector<std::string> out;
    for (const auto& p : programs_) {
      for (const auto& rule : p.matcher) {
        if (!rule.table.empty()) out.push_back(rule.table);
      }
    }
    return out;
  }

  uint64_t config_words() const { return config_words_; }
  uint64_t template_writes() const { return template_writes_; }

  // Bumped on every role/template mutation; the switch's compiled fast path
  // revalidates against the sum over all TSPs, so direct pipeline edits
  // (bypassing the CCM surface) still invalidate compiled state.
  uint64_t config_version() const { return config_version_; }

 private:
  uint32_t id_;
  TspRole role_ = TspRole::kBypass;
  std::vector<arch::StageProgram> programs_;
  uint64_t config_words_ = 0;
  uint64_t template_writes_ = 0;
  uint64_t config_version_ = 0;
};

}  // namespace ipsa::ipbm
