#include "ipsa/ipbm.h"

#include <chrono>

#include "arch/ii_model.h"
#include "arch/parse_engine.h"
#include "pisa/executor.h"
#include "telemetry/plan_observers.h"
#include "util/logging.h"

namespace ipsa::ipbm {

namespace {

mem::PoolConfig MakePoolConfig(const IpbmOptions& o) {
  mem::PoolConfig cfg;
  cfg.sram_blocks = o.sram_blocks;
  cfg.tcam_blocks = o.tcam_blocks;
  cfg.sram_width_bits = o.sram_width_bits;
  cfg.sram_depth = o.sram_depth;
  cfg.tcam_width_bits = o.tcam_width_bits;
  cfg.tcam_depth = o.tcam_depth;
  cfg.clusters = o.clusters;
  return cfg;
}

}  // namespace

IpbmSwitch::IpbmSwitch(const IpbmOptions& options)
    : options_(options),
      pool_(MakePoolConfig(options)),
      xbar_(options.crossbar, options.tsp_count, options.clusters),
      catalog_(pool_),
      metadata_proto_(arch::Metadata::Standard()),
      pipeline_(options.tsp_count),
      ports_(options.port_count) {}

Status IpbmSwitch::AddHeaderType(const arch::HeaderTypeDef& def) {
  IPSA_RETURN_IF_ERROR(registry_.Add(def));
  ChargeConfigWords(2 + def.fields().size() + def.links().size());
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::RemoveHeaderType(const std::string& name) {
  IPSA_RETURN_IF_ERROR(registry_.Remove(name));
  ChargeConfigWords(1);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::LinkHeader(const std::string& pre, const std::string& next,
                              uint64_t tag) {
  IPSA_RETURN_IF_ERROR(registry_.LinkHeader(pre, next, tag));
  ChargeConfigWords(1);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::UnlinkHeader(const std::string& pre, uint64_t tag) {
  IPSA_RETURN_IF_ERROR(registry_.UnlinkHeader(pre, tag));
  ChargeConfigWords(1);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::DeclareMetadata(const std::string& name,
                                   uint32_t width_bits) {
  IPSA_RETURN_IF_ERROR(metadata_proto_.Declare(name, width_bits));
  ChargeConfigWords(1);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::AddAction(const arch::ActionDef& def) {
  IPSA_RETURN_IF_ERROR(actions_.Add(def));
  ChargeConfigWords(2 + def.params.size() + def.body.size() * 2);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::RemoveAction(const std::string& name) {
  IPSA_RETURN_IF_ERROR(actions_.Remove(name));
  ChargeConfigWords(1);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::CreateRegister(const std::string& name, uint32_t size) {
  IPSA_RETURN_IF_ERROR(regs_.Create(name, size));
  ChargeConfigWords(1);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::DestroyRegister(const std::string& name) {
  IPSA_RETURN_IF_ERROR(regs_.Destroy(name));
  ChargeConfigWords(1);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::CreateTable(const arch::TableDecl& decl) {
  IPSA_RETURN_IF_ERROR(catalog_.CreateTable(decl.spec, decl.binding));
  ChargeConfigWords(4);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::DestroyTable(const std::string& name) {
  // Recycles the table's pool blocks (§2.4) and any crossbar routes pointing
  // at them are stale; re-routing happens on the next template write of the
  // affected TSPs.
  IPSA_RETURN_IF_ERROR(catalog_.DestroyTable(name));
  ChargeConfigWords(1);
  BumpStructuralEpoch();
  return OkStatus();
}

Status IpbmSwitch::RouteCrossbarFor(uint32_t tsp_id) {
  xbar_.DisconnectProc(tsp_id);
  for (const std::string& table : pipeline_.tsp(tsp_id).ReferencedTables()) {
    IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog_.Get(table));
    IPSA_RETURN_IF_ERROR(t->ConnectTo(xbar_, tsp_id));
  }
  return OkStatus();
}

Status IpbmSwitch::WriteTspTemplate(uint32_t tsp_id, TspRole role,
                                    std::vector<arch::StageProgram> programs) {
  if (tsp_id >= pipeline_.tsp_count()) return OutOfRange("bad TSP id");
  // Validate referenced tables and actions exist *before* draining.
  for (const auto& p : programs) {
    for (const auto& rule : p.matcher) {
      if (!rule.table.empty() && !catalog_.Has(rule.table)) {
        return FailedPrecondition("template references missing table '" +
                                  rule.table + "'");
      }
    }
    for (const auto& [tag, action] : p.executor) {
      if (!actions_.Has(action)) {
        return FailedPrecondition("template references missing action '" +
                                  action + "'");
      }
    }
  }
  // Drain through backpressure, then rewrite (paper §2.3).
  auto t0 = std::chrono::steady_clock::now();
  telemetry_.OnDrainWindow(pipeline_.Drain());
  uint32_t words = pipeline_.tsp(tsp_id).WriteTemplate(std::move(programs));
  IPSA_RETURN_IF_ERROR(pipeline_.SetRole(tsp_id, role));
  IPSA_RETURN_IF_ERROR(RouteCrossbarFor(tsp_id));
  // Re-decode the software indexes of every table the rewritten TSP
  // references: an in-situ update re-binds storage routes, and the decoded
  // caches must never serve bits the pool no longer holds.
  for (const std::string& table : pipeline_.tsp(tsp_id).ReferencedTables()) {
    if (auto t = catalog_.Get(table); t.ok()) (*t)->RefreshCache();
  }
  ChargeConfigWords(words + 1);  // template + selector word
  ++stats_.template_writes;
  BumpStructuralEpoch();
  RecordUpdateWindow(t0);
  return OkStatus();
}

Status IpbmSwitch::ClearTsp(uint32_t tsp_id) {
  if (tsp_id >= pipeline_.tsp_count()) return OutOfRange("bad TSP id");
  auto t0 = std::chrono::steady_clock::now();
  telemetry_.OnDrainWindow(pipeline_.Drain());
  pipeline_.tsp(tsp_id).ClearTemplate();
  IPSA_RETURN_IF_ERROR(pipeline_.SetRole(tsp_id, TspRole::kBypass));
  xbar_.DisconnectProc(tsp_id);
  ChargeConfigWords(2);
  ++stats_.template_writes;
  BumpStructuralEpoch();
  RecordUpdateWindow(t0);
  return OkStatus();
}

// Runtime entry ops are CCM commands like any other, so they advance
// config_epoch_ (snapshots and traces across a group mutation must see it
// move). Unlike structural commands they leave structural_epoch_ — and thus
// the compiled fast path — untouched: lookups read table content live
// through the RCU-published indexes, so entry churn may run concurrently
// with packet workers.
Status IpbmSwitch::AddEntry(const std::string& table,
                            const table::Entry& entry, bool upsert) {
  IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog_.Get(table));
  ++stats_.table_ops;
  ChargeConfigWords(1);
  config_epoch_.fetch_add(1, std::memory_order_relaxed);
  return upsert ? t->Insert(entry) : t->InsertUnique(entry);
}

Status IpbmSwitch::EraseEntry(const std::string& table,
                              const table::Entry& entry) {
  IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog_.Get(table));
  ++stats_.table_ops;
  ChargeConfigWords(1);
  config_epoch_.fetch_add(1, std::memory_order_relaxed);
  return t->Erase(entry);
}

Status IpbmSwitch::BeginEntryBatch(const std::string& table) {
  IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog_.Get(table));
  t->BeginBatch();
  return OkStatus();
}

Status IpbmSwitch::EndEntryBatch(const std::string& table) {
  IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog_.Get(table));
  t->EndBatch();
  return OkStatus();
}

Status IpbmSwitch::LoadBaseDesign(const arch::DesignConfig& design,
                                  const std::vector<TspAssignment>& assignments) {
  for (const auto& name : design.headers.TypeNames()) {
    IPSA_ASSIGN_OR_RETURN(const arch::HeaderTypeDef* def,
                          design.headers.Get(name));
    IPSA_RETURN_IF_ERROR(AddHeaderType(*def));
  }
  registry_.SetEntryType(design.headers.entry_type());
  for (const auto& m : design.metadata) {
    IPSA_RETURN_IF_ERROR(DeclareMetadata(m.name, m.width_bits));
  }
  for (const auto& a : design.actions) {
    IPSA_RETURN_IF_ERROR(AddAction(a));
  }
  for (const auto& r : design.registers) {
    IPSA_RETURN_IF_ERROR(CreateRegister(r.name, r.size));
  }
  for (const auto& t : design.tables) {
    IPSA_RETURN_IF_ERROR(CreateTable(t));
  }
  for (const auto& assign : assignments) {
    std::vector<arch::StageProgram> programs;
    programs.reserve(assign.stage_names.size());
    for (const auto& stage_name : assign.stage_names) {
      const arch::StageProgram* stage = design.FindStage(stage_name);
      if (stage == nullptr) {
        return NotFound("assignment references unknown stage '" + stage_name +
                        "'");
      }
      programs.push_back(*stage);
    }
    IPSA_RETURN_IF_ERROR(
        WriteTspTemplate(assign.tsp_id, assign.role, std::move(programs)));
  }
  IPSA_LOG(kInfo) << "ipbm: base design '" << design.name << "' loaded onto "
                  << assignments.size() << " TSPs";
  return OkStatus();
}

void IpbmSwitch::RecordUpdateWindow(
    std::chrono::steady_clock::time_point start) {
  telemetry_.OnUpdateWindow(
      config_epoch(), std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count());
}

IpbmSwitch::CompiledKey IpbmSwitch::CurrentKey() const {
  uint64_t pipeline_version = 0;
  for (uint32_t i = 0; i < pipeline_.tsp_count(); ++i) {
    pipeline_version += pipeline_.tsp(i).config_version();
  }
  return CompiledKey{.epoch = structural_epoch_,
                     .registry = registry_.version(),
                     .catalog = catalog_.version(),
                     .actions = actions_.version(),
                     .pipeline = pipeline_version};
}

void IpbmSwitch::EnsureCompiled() {
  CompiledKey key = CurrentKey();
  if (key == compiled_key_) return;

  compiled_tsps_.clear();
  compiled_tsps_.resize(pipeline_.tsp_count());
  for (uint32_t id = 0; id < pipeline_.tsp_count(); ++id) {
    for (const arch::StageProgram& program : pipeline_.tsp(id).programs()) {
      CompiledProgram cp;
      cp.source = &program;
      if (exec_mode_ == arch::ExecMode::kInterpret) {
        cp.uses_registers = arch::StageMayUseRegisters(program, actions_);
        compiled_tsps_[id].push_back(std::move(cp));
        continue;
      }
      auto compiled = arch::CompileStage(program, catalog_, actions_,
                                         registry_, metadata_proto_);
      if (compiled.ok()) {
        cp.uses_registers = compiled->uses_registers;
        cp.compiled = std::move(compiled).value();
      } else {
        cp.uses_registers = arch::StageMayUseRegisters(program, actions_);
      }
      compiled_tsps_[id].push_back(std::move(cp));
    }
  }

  ingress_ids_ = pipeline_.IngressIds();
  egress_ids_ = pipeline_.EgressIds();
  pipeline_uses_registers_ = false;
  for (const std::vector<uint32_t>* side : {&ingress_ids_, &egress_ids_}) {
    for (uint32_t id : *side) {
      for (const CompiledProgram& cp : compiled_tsps_[id]) {
        pipeline_uses_registers_ |= cp.uses_registers;
      }
    }
  }

  ingress_port_slot_ = metadata_proto_.SlotOf("ingress_port");
  scratch_ctx_.metadata() = metadata_proto_;
  compiled_key_ = key;

  // Telemetry stage slots: the TSP programs flattened in id order. A TSP's
  // programs occupy tsp_slot_base_[id] .. +size; an unchanged layout keeps
  // its counters across recompiles (Collector::SetStages decides).
  tsp_slot_base_.assign(pipeline_.tsp_count(), 0);
  std::vector<telemetry::StageInfo> infos;
  for (uint32_t id = 0; id < pipeline_.tsp_count(); ++id) {
    tsp_slot_base_[id] = static_cast<uint32_t>(infos.size());
    for (const CompiledProgram& cp : compiled_tsps_[id]) {
      infos.push_back(telemetry::StageInfo{id, cp.source->name});
    }
  }
  telemetry_.SetStages(std::move(infos));

  // Lower the elastic pipeline into the straight-line plan: only the active
  // TSPs of each side appear, in traversal order, each charging its fixed
  // 2-cycle entry (stage traversal + template-parameter load).
  plan_ = arch::PipelinePlan{};
  plan_valid_ = exec_mode_ == arch::ExecMode::kSpecialize;
  if (plan_valid_) {
    auto plan_side = [this](const std::vector<uint32_t>& ids,
                            std::vector<arch::PlanGroup>& groups) {
      for (uint32_t id : ids) {
        arch::PlanGroup group;
        group.unit = id;
        group.entry_cycles = 1 + 1;
        uint32_t slot = tsp_slot_base_[id];
        for (const CompiledProgram& cp : compiled_tsps_[id]) {
          group.programs.push_back(arch::PlanProgram{
              cp.compiled.has_value() ? &*cp.compiled : nullptr, cp.source,
              slot});
          ++slot;
        }
        groups.push_back(std::move(group));
      }
    };
    plan_side(ingress_ids_, plan_.ingress);
    plan_side(egress_ids_, plan_.egress);
    plan_.tm_cycles = 1;      // traffic manager between the sides
    plan_.jit_parse = true;   // TSPs parse just-in-time
    plan_.per_group_ii = true;
  }
}

Result<telemetry::ProcessResult> IpbmSwitch::ProcessCore(
    net::Packet& packet, uint32_t in_port, arch::PacketContext& ctx,
    telemetry::DeviceStats& stats, telemetry::MetricsShard* tshard,
    telemetry::ProcessTrace* trace) {
  ++stats.packets_in;
  ctx.Rebind(packet, registry_);
  ctx.metadata().Reset();
  ctx.metadata().SlotWriteUint(ingress_port_slot_, in_port);

  telemetry::ProcessResult result;

  if (plan_valid_) {
    // Specialized walk: pick the observer instantiation once, so the
    // telemetry/trace branches vanish from the per-stage loop.
    Result<arch::PlanRunStats> ran = InternalError("unreachable");
    if (trace != nullptr) {
      ran = arch::RunPlan(plan_, ctx, catalog_, actions_, &regs_,
                          telemetry::PlanTraceObserver{tshard, trace});
    } else if (tshard != nullptr) {
      ran = arch::RunPlan(plan_, ctx, catalog_, actions_, &regs_,
                          telemetry::PlanShardObserver{tshard});
    } else {
      ran = arch::RunPlan(plan_, ctx, catalog_, actions_, &regs_,
                          arch::PlanNullObserver{});
    }
    IPSA_RETURN_IF_ERROR(ran.status());
    result.pipeline_ii = ran->worst_ii;
  } else {
    // Bypassed TSPs are excluded from the physical pipeline entirely — no
    // latency, no power (§2.3). Each active TSP charges one extra cycle for
    // loading its per-packet template parameters (§5 Throughput). The
    // packet's pipeline II is the slowest TSP it traverses
    // (arch/ii_model.h).
    double worst_ii = 1.0;
    auto run_tsp = [&](uint32_t id) -> Status {
      ctx.ChargeCycles(1 + 1);  // stage traversal + template-parameter load
      uint64_t tsp_parse_bytes = 0;
      uint64_t tsp_access = 0;
      uint32_t slot = tsp_slot_base_[id];
      for (const CompiledProgram& cp : compiled_tsps_[id]) {
        arch::StageRunStats run_stats;
        if (cp.compiled.has_value()) {
          IPSA_ASSIGN_OR_RETURN(
              run_stats,
              RunCompiledStage(*cp.compiled, ctx, &regs_, /*jit_parse=*/true,
                               /*fill_names=*/trace != nullptr));
        } else {
          // Unresolvable references at compile time: interpreter fallback.
          IPSA_ASSIGN_OR_RETURN(run_stats,
                                RunStage(*cp.source, ctx, catalog_, actions_,
                                         &regs_, /*jit_parse=*/true));
        }
        tsp_parse_bytes += run_stats.parse_bytes;
        tsp_access = std::max(tsp_access, run_stats.access_cycles);
        if (tshard != nullptr) {
          tshard->OnStage(slot, run_stats.table_applied, run_stats.hit);
        }
        ++slot;
        if (trace != nullptr) {
          trace->steps.push_back(telemetry::TraceStep{
              .unit = id,
              .stage = cp.source->name,
              .table = run_stats.applied_table,
              .hit = run_stats.hit,
              .action = run_stats.executed_action,
              .parse_bytes = run_stats.parse_bytes});
        }
        if (ctx.dropped()) break;
      }
      worst_ii =
          std::max(worst_ii, arch::IpsaTspIi(tsp_parse_bytes, tsp_access));
      return OkStatus();
    };
    for (uint32_t id : ingress_ids_) {
      IPSA_RETURN_IF_ERROR(run_tsp(id));
      if (ctx.dropped()) break;
    }
    if (!ctx.dropped()) {
      // Traffic manager: one cycle of queueing model.
      ctx.ChargeCycles(1);
      for (uint32_t id : egress_ids_) {
        IPSA_RETURN_IF_ERROR(run_tsp(id));
        if (ctx.dropped()) break;
      }
    }
    result.pipeline_ii = worst_ii;
  }

  result.dropped = ctx.dropped();
  result.marked = ctx.marked();
  result.egress_port = ctx.egress_spec();
  result.cycles = ctx.cycles();
  for (const auto& h : ctx.phv().instances()) {
    if (h.valid) ++result.headers_parsed;
    if (trace != nullptr && h.valid) trace->parsed_headers.push_back(h.name);
  }
  stats.total_cycles += ctx.cycles();
  if (result.dropped) {
    ++stats.packets_dropped;
  } else {
    ++stats.packets_out;
  }
  if (result.marked) ++stats.packets_marked;
  if (tshard != nullptr) tshard->OnResult(in_port, result);
  return result;
}

Result<telemetry::ProcessResult> IpbmSwitch::ProcessSampled(
    net::Packet& packet, uint32_t in_port, arch::PacketContext& ctx,
    telemetry::DeviceStats& stats, telemetry::MetricsShard* tshard,
    telemetry::ProcessTrace* trace) {
  if (trace == nullptr && telemetry_.ShouldTrace(in_port)) {
    telemetry::ProcessTrace sampled;
    auto result = ProcessCore(packet, in_port, ctx, stats, tshard, &sampled);
    if (result.ok()) {
      telemetry_.CommitTrace(config_epoch(), in_port, *result,
                             std::move(sampled));
    }
    return result;
  }
  return ProcessCore(packet, in_port, ctx, stats, tshard, trace);
}

Result<telemetry::ProcessResult> IpbmSwitch::Process(net::Packet& packet,
                                                uint32_t in_port,
                                                telemetry::ProcessTrace* trace) {
  EnsureCompiled();
  return ProcessSampled(packet, in_port, scratch_ctx_, stats_,
                        telemetry_.shard(), trace);
}

Result<std::vector<telemetry::ProcessResult>> IpbmSwitch::ProcessBatch(
    std::span<net::Packet> packets, uint32_t in_port) {
  EnsureCompiled();
  telemetry::MetricsShard* tshard = telemetry_.shard();
  std::vector<telemetry::ProcessResult> out;
  out.reserve(packets.size());
  for (net::Packet& packet : packets) {
    IPSA_ASSIGN_OR_RETURN(telemetry::ProcessResult r,
                          ProcessSampled(packet, in_port, scratch_ctx_, stats_,
                                         tshard, nullptr));
    out.push_back(r);
  }
  return out;
}

Result<uint32_t> IpbmSwitch::RunToCompletion(uint32_t workers) {
  EnsureCompiled();
  // Register read-modify-write order across packets is observable (e.g. the
  // flow-probe counters); a register-touching pipeline runs single-worker so
  // results stay identical to the serial drain.
  if (pipeline_uses_registers_) workers = 1;
  if (workers <= 1) {
    telemetry::MetricsShard* tshard = telemetry_.shard();
    uint32_t processed = 0;
    for (uint32_t p = 0; p < ports_.count(); ++p) {
      while (auto packet = ports_.port(p).rx().Pop()) {
        IPSA_ASSIGN_OR_RETURN(telemetry::ProcessResult r,
                              ProcessSampled(*packet, p, scratch_ctx_, stats_,
                                             tshard, nullptr));
        if (!r.dropped && r.egress_port < ports_.count()) {
          ports_.port(r.egress_port).tx().Push(std::move(*packet));
        }
        ++processed;
      }
    }
    return processed;
  }

  std::vector<arch::PacketContext> ctxs(workers);
  std::vector<telemetry::DeviceStats> worker_stats(workers);
  // Telemetry shards mirror the DeviceStats pattern: worker-local, no
  // atomics, merged after the join so totals equal a serial drain exactly.
  std::vector<telemetry::MetricsShard> worker_shards;
  if (telemetry_.enabled()) worker_shards = telemetry_.MakeWorkerShards(workers);
  for (arch::PacketContext& c : ctxs) c.metadata() = metadata_proto_;
  IPSA_ASSIGN_OR_RETURN(
      uint32_t processed,
      pisa::DrainPortsSharded(
          ports_, workers,
          [&](net::Packet& packet, uint32_t in_port, uint32_t worker) {
            return ProcessSampled(packet, in_port, ctxs[worker],
                                  worker_stats[worker],
                                  worker_shards.empty() ? nullptr
                                                        : &worker_shards[worker],
                                  nullptr);
          }));
  for (const telemetry::DeviceStats& s : worker_stats) stats_.MergeFrom(s);
  telemetry_.MergeWorkerShards(worker_shards);
  return processed;
}

std::string IpbmSwitch::PlanToString() {
  EnsureCompiled();
  return plan_valid_ ? plan_.ToString() : std::string();
}

int32_t IpbmSwitch::TspOfStage(std::string_view stage_name) const {
  for (uint32_t i = 0; i < pipeline_.tsp_count(); ++i) {
    for (const auto& p : pipeline_.tsp(i).programs()) {
      if (p.name == stage_name) return static_cast<int32_t>(i);
    }
  }
  return -1;
}

}  // namespace ipsa::ipbm
