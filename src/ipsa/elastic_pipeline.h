// Elastic pipeline (paper §2.3).
//
// All TSPs are chained left to right. A selector picks which TSP feeds the
// Traffic Manager (the last ingress TSP) and which receives from it (the
// first egress TSP); middle TSPs can belong to either side or be bypassed
// and power-gated. Validity invariant: every ingress TSP lies left of every
// egress TSP, and bypassed TSPs may appear anywhere.
//
// Stage insertion/deletion drains the pipeline through backpressure first
// (charged in cycles), then rewrites the affected templates and the selector
// configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "ipsa/tsp.h"
#include "util/status.h"

namespace ipsa::ipbm {

class ElasticPipeline {
 public:
  explicit ElasticPipeline(uint32_t tsp_count);

  uint32_t tsp_count() const { return static_cast<uint32_t>(tsps_.size()); }
  Tsp& tsp(uint32_t id) { return tsps_.at(id); }
  const Tsp& tsp(uint32_t id) const { return tsps_.at(id); }

  // Reassigns a TSP's side; validates the ingress-left-of-egress invariant.
  // Each role change is one selector config word.
  Status SetRole(uint32_t tsp_id, TspRole role);

  // TSP ids on each side, in pipeline order.
  std::vector<uint32_t> IngressIds() const { return IdsWithRole(TspRole::kIngress); }
  std::vector<uint32_t> EgressIds() const { return IdsWithRole(TspRole::kEgress); }
  uint32_t ActiveCount() const;

  // Backpressure drain before reconfiguration: costs the current pipeline
  // occupancy in cycles (one per active TSP — each in-flight packet must
  // leave its stage).
  uint64_t Drain();

  uint64_t drain_events() const { return drain_events_; }
  uint64_t drain_cycles() const { return drain_cycles_; }
  uint64_t selector_words() const { return selector_words_; }

  // Human-readable mapping table (Fig. 4 style) for examples/benches.
  std::string MappingToString() const;

 private:
  std::vector<uint32_t> IdsWithRole(TspRole role) const;
  bool RolesValid() const;

  std::vector<Tsp> tsps_;
  uint64_t drain_events_ = 0;
  uint64_t drain_cycles_ = 0;
  uint64_t selector_words_ = 0;
};

}  // namespace ipsa::ipbm
