#include "ipsa/elastic_pipeline.h"

#include "util/strings.h"

namespace ipsa::ipbm {

std::string_view TspRoleName(TspRole role) {
  switch (role) {
    case TspRole::kBypass:
      return "bypass";
    case TspRole::kIngress:
      return "ingress";
    case TspRole::kEgress:
      return "egress";
  }
  return "?";
}

ElasticPipeline::ElasticPipeline(uint32_t tsp_count) {
  tsps_.reserve(tsp_count);
  for (uint32_t i = 0; i < tsp_count; ++i) tsps_.emplace_back(i);
}

bool ElasticPipeline::RolesValid() const {
  // No ingress TSP may appear to the right of any egress TSP.
  int32_t last_ingress = -1;
  int32_t first_egress = -1;
  for (uint32_t i = 0; i < tsps_.size(); ++i) {
    if (tsps_[i].role() == TspRole::kIngress) {
      last_ingress = static_cast<int32_t>(i);
    } else if (tsps_[i].role() == TspRole::kEgress &&
               first_egress < 0) {
      first_egress = static_cast<int32_t>(i);
    }
  }
  return first_egress < 0 || last_ingress < first_egress;
}

Status ElasticPipeline::SetRole(uint32_t tsp_id, TspRole role) {
  if (tsp_id >= tsps_.size()) return OutOfRange("bad TSP id");
  TspRole old = tsps_[tsp_id].role();
  if (old == role) return OkStatus();
  tsps_[tsp_id].SetRole(role);
  if (!RolesValid()) {
    tsps_[tsp_id].SetRole(old);
    return FailedPrecondition(
        "selector: ingress TSPs must all precede egress TSPs");
  }
  ++selector_words_;
  return OkStatus();
}

std::vector<uint32_t> ElasticPipeline::IdsWithRole(TspRole role) const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < tsps_.size(); ++i) {
    if (tsps_[i].role() == role) out.push_back(i);
  }
  return out;
}

uint32_t ElasticPipeline::ActiveCount() const {
  uint32_t n = 0;
  for (const auto& t : tsps_) {
    if (t.powered()) ++n;
  }
  return n;
}

uint64_t ElasticPipeline::Drain() {
  uint64_t cost = ActiveCount();
  ++drain_events_;
  drain_cycles_ += cost;
  return cost;
}

std::string ElasticPipeline::MappingToString() const {
  std::string out;
  for (const auto& t : tsps_) {
    std::string stages = util::Join(t.StageNames(), ",");
    out += util::Format("TSP%-2u [%-7s] %s\n", t.id(),
                        std::string(TspRoleName(t.role())).c_str(),
                        stages.empty() ? "-" : stages.c_str());
  }
  return out;
}

}  // namespace ipsa::ipbm
