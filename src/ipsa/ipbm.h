// ipbm — the IPSA behavioral model (paper §4.1).
//
// Four modules, as in the paper:
//  * CM  (Communication Module): packet I/O — in-memory ports here.
//  * PM  (Pipeline Module): the TSPs in an elastic pipeline.
//  * CCM (Control Channel Module): the runtime configuration surface the
//    controller drives; every operation below is a CCM command.
//  * SM  (Storage Module): the disaggregated memory pool, crossbar, table
//    catalog, header registry and register file.
//
// The defining property: there is NO monolithic load. The base design and
// all later updates go through the same incremental commands — write a TSP
// template, create/destroy a table, link a header, flip the selector. Each
// charges only its own config words, which is why t_L stays milliseconds
// while PISA reloads everything (Table 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/design.h"
#include "ipsa/elastic_pipeline.h"
#include "mem/crossbar.h"
#include "net/ports.h"
#include "pisa/device_stats.h"
#include "util/status.h"

namespace ipsa::ipbm {

struct IpbmOptions {
  uint32_t tsp_count = 12;
  uint32_t port_count = 16;
  mem::CrossbarKind crossbar = mem::CrossbarKind::kFull;
  // Shared disaggregated pool (contrast with pbm's per-stage proration).
  uint32_t sram_blocks = 128;
  uint32_t tcam_blocks = 32;
  uint32_t sram_width_bits = 256;
  uint32_t sram_depth = 2048;
  uint32_t tcam_width_bits = 256;
  uint32_t tcam_depth = 512;
  uint32_t clusters = 1;  // >1 exercises the clustered-crossbar tradeoff
};

// rp4bc's placement of logical stages onto a TSP.
struct TspAssignment {
  uint32_t tsp_id = 0;
  TspRole role = TspRole::kIngress;
  std::vector<std::string> stage_names;  // merged stages, in order
};

class IpbmSwitch {
 public:
  explicit IpbmSwitch(const IpbmOptions& options = {});

  // --- CCM: header plane -------------------------------------------------
  Status AddHeaderType(const arch::HeaderTypeDef& def);
  Status RemoveHeaderType(const std::string& name);
  Status LinkHeader(const std::string& pre, const std::string& next,
                    uint64_t tag);
  Status UnlinkHeader(const std::string& pre, uint64_t tag);

  // --- CCM: program plane ------------------------------------------------
  Status DeclareMetadata(const std::string& name, uint32_t width_bits);
  Status AddAction(const arch::ActionDef& def);
  Status RemoveAction(const std::string& name);
  Status CreateRegister(const std::string& name, uint32_t size);
  Status DestroyRegister(const std::string& name);
  Status CreateTable(const arch::TableDecl& decl);
  Status DestroyTable(const std::string& name);

  // --- CCM: pipeline plane (drains first) ---------------------------------
  // Writes a TSP's template (the merged stage programs), assigns its side,
  // and routes the crossbar to every table the template references.
  Status WriteTspTemplate(uint32_t tsp_id, TspRole role,
                          std::vector<arch::StageProgram> programs);
  // Clears a TSP back to bypassed/idle and tears down its crossbar routes.
  Status ClearTsp(uint32_t tsp_id);

  // --- CCM: runtime table API ---------------------------------------------
  Status AddEntry(const std::string& table, const table::Entry& entry);
  Status EraseEntry(const std::string& table, const table::Entry& entry);

  // Applies a full base design through the incremental commands above.
  // `assignments` is rp4bc's stage->TSP layout.
  Status LoadBaseDesign(const arch::DesignConfig& design,
                        const std::vector<TspAssignment>& assignments);

  // --- CM / data plane -----------------------------------------------------
  // When `trace` is non-null, every stage execution is recorded into it.
  Result<pisa::ProcessResult> Process(net::Packet& packet, uint32_t in_port,
                                      pisa::ProcessTrace* trace = nullptr);
  net::PortSet& ports() { return ports_; }
  Result<uint32_t> RunToCompletion();

  // --- introspection -------------------------------------------------------
  ElasticPipeline& pipeline() { return pipeline_; }
  const ElasticPipeline& pipeline() const { return pipeline_; }
  mem::Pool& pool() { return pool_; }
  mem::Crossbar& crossbar() { return xbar_; }
  arch::HeaderRegistry& headers() { return registry_; }
  arch::RegisterFile& registers() { return regs_; }
  const arch::TableCatalog& catalog() const { return catalog_; }
  pisa::DeviceStats& stats() { return stats_; }
  const pisa::DeviceStats& stats() const { return stats_; }

  // Finds the TSP currently hosting a logical stage, or -1.
  int32_t TspOfStage(std::string_view stage_name) const;

 private:
  Status RouteCrossbarFor(uint32_t tsp_id);
  void ChargeConfigWords(uint64_t words) {
    stats_.config_words_written += words;
  }

  IpbmOptions options_;
  mem::Pool pool_;
  mem::Crossbar xbar_;
  arch::TableCatalog catalog_;
  arch::ActionStore actions_;
  arch::RegisterFile regs_;
  arch::HeaderRegistry registry_;
  arch::Metadata metadata_proto_;
  ElasticPipeline pipeline_;
  net::PortSet ports_;
  pisa::DeviceStats stats_;
};

}  // namespace ipsa::ipbm
