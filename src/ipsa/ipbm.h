// ipbm — the IPSA behavioral model (paper §4.1).
//
// Four modules, as in the paper:
//  * CM  (Communication Module): packet I/O — in-memory ports here.
//  * PM  (Pipeline Module): the TSPs in an elastic pipeline.
//  * CCM (Control Channel Module): the runtime configuration surface the
//    controller drives; every operation below is a CCM command.
//  * SM  (Storage Module): the disaggregated memory pool, crossbar, table
//    catalog, header registry and register file.
//
// The defining property: there is NO monolithic load. The base design and
// all later updates go through the same incremental commands — write a TSP
// template, create/destroy a table, link a header, flip the selector. Each
// charges only its own config words, which is why t_L stays milliseconds
// while PISA reloads everything (Table 1).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arch/compiled_stage.h"
#include "arch/design.h"
#include "arch/pipeline_plan.h"
#include "ipsa/elastic_pipeline.h"
#include "mem/crossbar.h"
#include "net/ports.h"
#include "telemetry/collector.h"
#include "telemetry/device_stats.h"
#include "util/status.h"

namespace ipsa::ipbm {

struct IpbmOptions {
  uint32_t tsp_count = 12;
  uint32_t port_count = 16;
  mem::CrossbarKind crossbar = mem::CrossbarKind::kFull;
  // Shared disaggregated pool (contrast with pbm's per-stage proration).
  uint32_t sram_blocks = 128;
  uint32_t tcam_blocks = 32;
  uint32_t sram_width_bits = 256;
  uint32_t sram_depth = 2048;
  uint32_t tcam_width_bits = 256;
  uint32_t tcam_depth = 512;
  uint32_t clusters = 1;  // >1 exercises the clustered-crossbar tradeoff
};

// rp4bc's placement of logical stages onto a TSP.
struct TspAssignment {
  uint32_t tsp_id = 0;
  TspRole role = TspRole::kIngress;
  std::vector<std::string> stage_names;  // merged stages, in order
};

class IpbmSwitch {
 public:
  explicit IpbmSwitch(const IpbmOptions& options = {});

  // --- CCM: header plane -------------------------------------------------
  Status AddHeaderType(const arch::HeaderTypeDef& def);
  Status RemoveHeaderType(const std::string& name);
  Status LinkHeader(const std::string& pre, const std::string& next,
                    uint64_t tag);
  Status UnlinkHeader(const std::string& pre, uint64_t tag);

  // --- CCM: program plane ------------------------------------------------
  Status DeclareMetadata(const std::string& name, uint32_t width_bits);
  Status AddAction(const arch::ActionDef& def);
  Status RemoveAction(const std::string& name);
  Status CreateRegister(const std::string& name, uint32_t size);
  Status DestroyRegister(const std::string& name);
  Status CreateTable(const arch::TableDecl& decl);
  Status DestroyTable(const std::string& name);

  // --- CCM: pipeline plane (drains first) ---------------------------------
  // Writes a TSP's template (the merged stage programs), assigns its side,
  // and routes the crossbar to every table the template references.
  Status WriteTspTemplate(uint32_t tsp_id, TspRole role,
                          std::vector<arch::StageProgram> programs);
  // Clears a TSP back to bypassed/idle and tears down its crossbar routes.
  Status ClearTsp(uint32_t tsp_id);

  // --- CCM: runtime table API ---------------------------------------------
  // upsert=false is the strict bulk-RPC semantics: a duplicate identity
  // fails with kAlreadyExists instead of updating in place.
  Status AddEntry(const std::string& table, const table::Entry& entry,
                  bool upsert = true);
  Status EraseEntry(const std::string& table, const table::Entry& entry);
  // Brackets a bulk frame of entry ops on one table: publication of the
  // table's lookup views is deferred to EndEntryBatch, so the frame becomes
  // visible with one atomic swap + one grace period.
  Status BeginEntryBatch(const std::string& table);
  Status EndEntryBatch(const std::string& table);

  // Applies a full base design through the incremental commands above.
  // `assignments` is rp4bc's stage->TSP layout.
  Status LoadBaseDesign(const arch::DesignConfig& design,
                        const std::vector<TspAssignment>& assignments);

  // --- CM / data plane -----------------------------------------------------
  // When `trace` is non-null, every stage execution is recorded into it.
  Result<telemetry::ProcessResult> Process(net::Packet& packet, uint32_t in_port,
                                      telemetry::ProcessTrace* trace = nullptr);
  // Processes a batch of packets arriving on one port through the compiled
  // fast path, reusing one scratch context across the whole batch. Results
  // are identical to calling Process per packet in order.
  Result<std::vector<telemetry::ProcessResult>> ProcessBatch(
      std::span<net::Packet> packets, uint32_t in_port);
  net::PortSet& ports() { return ports_; }
  // Drains all RX queues; with workers > 1 ports are sharded across that
  // many threads (output is bit-identical to the serial drain; pipelines
  // whose programs touch the register file are serialized to one worker to
  // keep read-modify-write order deterministic).
  Result<uint32_t> RunToCompletion(uint32_t workers = 1);

  // --- introspection -------------------------------------------------------
  ElasticPipeline& pipeline() { return pipeline_; }
  const ElasticPipeline& pipeline() const { return pipeline_; }
  mem::Pool& pool() { return pool_; }
  mem::Crossbar& crossbar() { return xbar_; }
  arch::HeaderRegistry& headers() { return registry_; }
  arch::RegisterFile& registers() { return regs_; }
  const arch::TableCatalog& catalog() const { return catalog_; }
  telemetry::DeviceStats& stats() { return stats_; }
  const telemetry::DeviceStats& stats() const { return stats_; }

  // Telemetry: disabled by default (costs one branch per packet). Configure
  // sizes per-port metrics to this device's port count.
  void ConfigureTelemetry(const telemetry::TelemetryConfig& config) {
    telemetry_.Configure(config, options_.port_count);
  }
  telemetry::Collector& telemetry() { return telemetry_; }
  const telemetry::Collector& telemetry() const { return telemetry_; }
  // Bumped on every CCM command; tags snapshots and sampled traces, so a
  // scrape across an in-situ update shows the epoch advancing. Atomic:
  // runtime entry ops bump it while data-plane workers stamp traces.
  uint64_t config_epoch() const {
    return config_epoch_.load(std::memory_order_relaxed);
  }

  // Pins the execution mode (default: the epoch-specialized pipeline plan).
  // The differential fuzzing harness pins devices to each mode to
  // cross-check the execution paths on identical devices; flipping it
  // invalidates the compiled state like any other config change.
  void SetExecMode(arch::ExecMode mode) {
    if (exec_mode_ != mode) {
      exec_mode_ = mode;
      BumpStructuralEpoch();
    }
  }
  arch::ExecMode exec_mode() const { return exec_mode_; }
  // Back-compat spelling: pins every TSP program to the interpreter.
  void SetForceInterpreter(bool force) {
    SetExecMode(force ? arch::ExecMode::kInterpret
                      : arch::ExecMode::kSpecialize);
  }
  bool force_interpreter() const {
    return exec_mode_ == arch::ExecMode::kInterpret;
  }

  // Finds the TSP currently hosting a logical stage, or -1.
  int32_t TspOfStage(std::string_view stage_name) const;

  // Debug/test introspection: the specialized plan for the current config
  // state (forces the lazy rebuild). Empty unless exec_mode() is
  // kSpecialize — the other modes run the generic walk with no plan.
  std::string PlanToString();

 private:
  // One stage program of one TSP, pre-resolved where possible. A program
  // whose references cannot all be resolved (compiled == nullopt) falls back
  // to the interpreter — never an error at compile time.
  struct CompiledProgram {
    const arch::StageProgram* source = nullptr;
    std::optional<arch::CompiledStage> compiled;
    bool uses_registers = false;
  };
  // Everything the compiled state depends on. The structural epoch covers
  // structural CCM commands (including metadata declarations, which have no
  // own version counter); the component versions cover direct mutations
  // through the mutable headers()/pipeline() accessors. Runtime entry ops
  // deliberately stay out of the key: lookups read table content live, so
  // churn never invalidates (or races with) the compiled fast path.
  struct CompiledKey {
    uint64_t epoch = 0;
    uint64_t registry = 0;
    uint64_t catalog = 0;
    uint64_t actions = 0;
    uint64_t pipeline = 0;
    bool operator==(const CompiledKey&) const = default;
  };

  Status RouteCrossbarFor(uint32_t tsp_id);
  void ChargeConfigWords(uint64_t words) {
    stats_.config_words_written += words;
  }
  // A structural CCM command: advances both epochs. Only runs quiesced
  // relative to the data plane (callers drain first or own the device).
  void BumpStructuralEpoch() {
    ++structural_epoch_;
    config_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  CompiledKey CurrentKey() const;
  // Recompiles every TSP's template if anything changed since the last call.
  void EnsureCompiled();
  // The per-packet pipeline walk. `ctx` is a reusable scratch context and
  // `stats` the counter shard to charge (worker-local when parallel).
  // EnsureCompiled() must have run since the last configuration change.
  Result<telemetry::ProcessResult> ProcessCore(net::Packet& packet,
                                               uint32_t in_port,
                                               arch::PacketContext& ctx,
                                               telemetry::DeviceStats& stats,
                                               telemetry::MetricsShard* tshard,
                                               telemetry::ProcessTrace* trace);
  // Runs one packet with `tshard` charged, sampling a trace when the
  // collector's predicate fires (only consulted when `trace` is null).
  Result<telemetry::ProcessResult> ProcessSampled(
      net::Packet& packet, uint32_t in_port, arch::PacketContext& ctx,
      telemetry::DeviceStats& stats, telemetry::MetricsShard* tshard,
      telemetry::ProcessTrace* trace);
  // Stopwatches one CCM mutation: charges the wall-clock window and, when
  // the command drained the pipeline, the drain cycles.
  void RecordUpdateWindow(std::chrono::steady_clock::time_point start);

  IpbmOptions options_;
  mem::Pool pool_;
  mem::Crossbar xbar_;
  arch::TableCatalog catalog_;
  arch::ActionStore actions_;
  arch::RegisterFile regs_;
  arch::HeaderRegistry registry_;
  arch::Metadata metadata_proto_;
  ElasticPipeline pipeline_;
  net::PortSet ports_;
  telemetry::DeviceStats stats_;
  telemetry::Collector telemetry_;

  // Compiled fast-path state (rebuilt lazily by EnsureCompiled).
  // config_epoch_ counts every CCM command including runtime entry ops
  // (telemetry-visible); structural_epoch_ counts only the quiesced
  // structural commands and feeds CompiledKey, so entry churn concurrent
  // with packet workers neither rebuilds nor races the compiled state.
  std::atomic<uint64_t> config_epoch_{1};
  uint64_t structural_epoch_ = 1;
  arch::ExecMode exec_mode_ = arch::ExecMode::kSpecialize;
  CompiledKey compiled_key_;  // all-zero: never matches the first CurrentKey
  std::vector<std::vector<CompiledProgram>> compiled_tsps_;
  // Straight-line execution plan over the active TSPs (kSpecialize); points
  // into compiled_tsps_/the pipeline templates and is rebuilt with them.
  arch::PipelinePlan plan_;
  bool plan_valid_ = false;
  // Flattened telemetry stage slots: TSP id -> first slot of its programs
  // (rebuilt by EnsureCompiled alongside the stage layout).
  std::vector<uint32_t> tsp_slot_base_;
  std::vector<uint32_t> ingress_ids_;
  std::vector<uint32_t> egress_ids_;
  bool pipeline_uses_registers_ = false;
  int ingress_port_slot_ = arch::Metadata::kInvalidSlot;
  arch::PacketContext scratch_ctx_;
};

}  // namespace ipsa::ipbm
