// HLIR — the target-independent intermediate representation produced by the
// p4lite front end (standing in for p4c's HLIR, which the paper's rp4fc
// consumes; §3.2 "rp4fc takes the HLIR, the target-independent output of
// p4c, as input").
//
// The HLIR keeps P4's structure: an explicit parse graph (states with
// extracts and select transitions) and per-control apply trees, rather than
// rP4's stage-oriented form. rp4fc and the PISA backend both lower from
// here.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/actions.h"
#include "arch/header_types.h"
#include "util/status.h"

namespace ipsa::p4lite {

struct HlirParseState {
  std::string name;
  std::vector<std::string> extracts;  // header instance names, in order
  // Optional select at the end of the state.
  std::string select_instance;  // instance of the selector field
  std::string select_field;
  std::vector<std::pair<uint64_t, std::string>> transitions;  // tag -> state
  std::string default_transition = "accept";
};

struct HlirKeyField {
  arch::FieldRef field;
  std::string match_type;  // exact | lpm | ternary | selector/hash
};

struct HlirTable {
  std::string name;
  std::vector<HlirKeyField> key;
  std::vector<std::string> actions;  // in declaration order; ids follow this
  uint32_t size = 1024;
  std::string default_action = "NoAction";
};

// Control-flow tree of an `apply { ... }` block.
struct HlirApplyNode {
  enum class Kind { kSeq, kApply, kIf };
  Kind kind = Kind::kSeq;
  std::string table;                      // kApply
  arch::ExprPtr cond;                     // kIf
  std::vector<HlirApplyNode> children;    // kSeq body / kIf [then, else]
  std::vector<HlirApplyNode> else_children;  // kIf else branch
};

struct HlirControl {
  std::string name;
  std::vector<HlirTable> tables;
  std::vector<arch::ActionDef> actions;
  HlirApplyNode apply;  // kSeq root
};

struct Hlir {
  std::string program_name = "p4_program";
  // Header *types* keyed by type name (no links; linkage lives in the parse
  // graph until a backend flattens it).
  std::vector<arch::HeaderTypeDef> header_types;
  // Instance name -> type name (from the headers struct).
  std::vector<std::pair<std::string, std::string>> header_instances;
  std::vector<std::pair<std::string, uint32_t>> metadata;  // name, width
  std::vector<std::pair<std::string, uint32_t>> registers;  // name, size
  std::vector<HlirParseState> parse_states;
  std::string start_state = "start";
  HlirControl ingress;
  HlirControl egress;

  const arch::HeaderTypeDef* FindHeaderType(std::string_view name) const;
  const HlirParseState* FindState(std::string_view name) const;
  std::string InstanceType(std::string_view instance) const;

  // Flattens the parse graph into per-header-type links (tag -> next header
  // type), the form both IPSA's distributed parsers and PISA's front parser
  // consume. Fails on states whose select field is ambiguous across paths.
  Result<arch::HeaderRegistry> BuildHeaderRegistry() const;
};

}  // namespace ipsa::p4lite

