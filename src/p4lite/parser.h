// p4lite — a P4-16 subset front end (stand-in for p4c; see DESIGN.md).
//
// Supported surface:
//   header <name>_t { bit<N> f; ... [varsize(f, add, mult);] }
//   struct metadata_t { bit<N> f; ... }          (any struct not headers_t)
//   struct headers_t { <type> <instance>; ... }  (the header layout)
//   register<bit<N>> name[size];                 (dialect: array registers)
//   parser <name>(...) { state ... }             (extract + select/transition)
//   control <name>(...) { action... table... apply {...} }
//
// The first control is ingress, the second (if present) egress. Statements
// and expressions share the rP4 surface (drop(), mark(), forward(e),
// push_header, pop_header, set_raw/get_raw, if/else, assignment).
// Field references are `hdr.<instance>.<field>`, `meta.<field>`, or
// `standard_metadata.<field>`.
#pragma once

#include <string_view>

#include "p4lite/hlir.h"
#include "util/status.h"

namespace ipsa::p4lite {

Result<Hlir> ParseP4(std::string_view source);

}  // namespace ipsa::p4lite
