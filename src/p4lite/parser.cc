#include "p4lite/parser.h"

#include <set>

#include "rp4/lexer.h"

namespace ipsa::p4lite {

namespace {

using arch::ActionDef;
using arch::ActionOp;
using arch::ActionParam;
using arch::Expr;
using arch::ExprPtr;
using arch::FieldDef;
using arch::FieldRef;
using rp4::TokenCursor;
using rp4::TokKind;
using rp4::Token;

class Parser {
 public:
  explicit Parser(TokenCursor cursor) : cur_(std::move(cursor)) {}

  Result<Hlir> ParseProgram() {
    while (!cur_.AtEnd()) {
      const Token& t = cur_.Peek();
      if (t.IsIdent("header")) {
        IPSA_RETURN_IF_ERROR(ParseHeaderType());
      } else if (t.IsIdent("struct")) {
        IPSA_RETURN_IF_ERROR(ParseStruct());
      } else if (t.IsIdent("register")) {
        IPSA_RETURN_IF_ERROR(ParseRegister());
      } else if (t.IsIdent("parser")) {
        IPSA_RETURN_IF_ERROR(ParseParser());
      } else if (t.IsIdent("control")) {
        IPSA_RETURN_IF_ERROR(ParseControl());
      } else {
        return cur_.ErrorHere("unexpected top-level token");
      }
    }
    return std::move(hlir_);
  }

 private:
  // Nesting caps: the grammar is recursive-descent, so unchecked nesting
  // depth is unchecked C++ stack depth — adversarial input like thousands of
  // nested parentheses must fail with a Status, not a stack overflow.
  static constexpr int kMaxNesting = 64;
  // Field widths outside [1, 4096] are rejected up front: width 0 has no
  // packet representation, and a giant width would size device buffers (and
  // keys, and action data) proportionally.
  static constexpr uint64_t kMaxFieldWidth = 4096;

  Result<uint32_t> CheckWidth(uint64_t width) {
    if (width == 0 || width > kMaxFieldWidth) {
      return Status(StatusCode::kInvalidArgument,
                    "p4lite: field width " + std::to_string(width) +
                        " outside [1, " + std::to_string(kMaxFieldWidth) +
                        "]");
    }
    return static_cast<uint32_t>(width);
  }

  struct NestingGuard {
    explicit NestingGuard(int& depth) : depth_(depth) { ++depth_; }
    ~NestingGuard() { --depth_; }
    int& depth_;
  };

  Status ParseHeaderType() {
    cur_.Next();  // header
    IPSA_ASSIGN_OR_RETURN(std::string name, cur_.ExpectIdent());
    IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
    std::vector<FieldDef> fields;
    std::optional<arch::VarSizeRule> varsize;
    while (!cur_.TryConsume("}")) {
      if (cur_.Peek().IsIdent("varsize")) {
        cur_.Next();
        IPSA_RETURN_IF_ERROR(cur_.Expect("("));
        arch::VarSizeRule rule;
        IPSA_ASSIGN_OR_RETURN(rule.len_field, cur_.ExpectIdent());
        IPSA_RETURN_IF_ERROR(cur_.Expect(","));
        IPSA_ASSIGN_OR_RETURN(uint64_t add, cur_.ExpectNumber());
        rule.add = static_cast<uint32_t>(add);
        IPSA_RETURN_IF_ERROR(cur_.Expect(","));
        IPSA_ASSIGN_OR_RETURN(uint64_t mult, cur_.ExpectNumber());
        rule.multiplier = static_cast<uint32_t>(mult);
        IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
        IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
        varsize = rule;
        continue;
      }
      IPSA_RETURN_IF_ERROR(cur_.Expect("bit"));
      IPSA_RETURN_IF_ERROR(cur_.Expect("<"));
      IPSA_ASSIGN_OR_RETURN(uint64_t raw_width, cur_.ExpectNumber());
      IPSA_ASSIGN_OR_RETURN(uint32_t width, CheckWidth(raw_width));
      IPSA_RETURN_IF_ERROR(cur_.Expect(">"));
      IPSA_ASSIGN_OR_RETURN(std::string fname, cur_.ExpectIdent());
      IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      fields.push_back(FieldDef{fname, width});
    }
    arch::HeaderTypeDef def(name, std::move(fields));
    if (varsize.has_value()) def.SetVarSize(*varsize);
    hlir_.header_types.push_back(std::move(def));
    return OkStatus();
  }

  Status ParseStruct() {
    cur_.Next();  // struct
    IPSA_ASSIGN_OR_RETURN(std::string name, cur_.ExpectIdent());
    IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
    bool is_headers = name == "headers_t" || name == "headers";
    while (!cur_.TryConsume("}")) {
      if (cur_.Peek().IsIdent("bit")) {
        // metadata member
        cur_.Next();
        IPSA_RETURN_IF_ERROR(cur_.Expect("<"));
        IPSA_ASSIGN_OR_RETURN(uint64_t raw_width, cur_.ExpectNumber());
        IPSA_ASSIGN_OR_RETURN(uint32_t width, CheckWidth(raw_width));
        IPSA_RETURN_IF_ERROR(cur_.Expect(">"));
        IPSA_ASSIGN_OR_RETURN(std::string fname, cur_.ExpectIdent());
        IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
        if (!is_headers) {
          hlir_.metadata.emplace_back(fname, width);
        }
      } else {
        // header instance: <type> <instance>;
        IPSA_ASSIGN_OR_RETURN(std::string type, cur_.ExpectIdent());
        IPSA_ASSIGN_OR_RETURN(std::string inst, cur_.ExpectIdent());
        IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
        if (is_headers) {
          hlir_.header_instances.emplace_back(inst, type);
        }
      }
    }
    cur_.TryConsume(";");
    return OkStatus();
  }

  Status ParseRegister() {
    cur_.Next();  // register
    if (cur_.TryConsume("<")) {
      IPSA_RETURN_IF_ERROR(cur_.Expect("bit"));
      IPSA_RETURN_IF_ERROR(cur_.Expect("<"));
      IPSA_ASSIGN_OR_RETURN(uint64_t width, cur_.ExpectNumber());
      (void)width;
      // The closing brackets lex as one ">>" token.
      if (!cur_.TryConsume(">>")) {
        IPSA_RETURN_IF_ERROR(cur_.Expect(">"));
        IPSA_RETURN_IF_ERROR(cur_.Expect(">"));
      }
    }
    IPSA_ASSIGN_OR_RETURN(std::string name, cur_.ExpectIdent());
    IPSA_RETURN_IF_ERROR(cur_.Expect("["));
    IPSA_ASSIGN_OR_RETURN(uint64_t size, cur_.ExpectNumber());
    IPSA_RETURN_IF_ERROR(cur_.Expect("]"));
    IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
    register_names_.insert(name);
    registers_.emplace_back(name, static_cast<uint32_t>(size));
    return OkStatus();
  }

  Status SkipParamList() {
    IPSA_RETURN_IF_ERROR(cur_.Expect("("));
    int depth = 1;
    while (depth > 0) {
      if (cur_.AtEnd()) return cur_.ErrorHere("unterminated parameter list");
      const Token& t = cur_.Next();
      if (t.Is("(")) ++depth;
      if (t.Is(")")) --depth;
    }
    return OkStatus();
  }

  Status ParseParser() {
    cur_.Next();  // parser
    IPSA_ASSIGN_OR_RETURN(std::string name, cur_.ExpectIdent());
    (void)name;
    IPSA_RETURN_IF_ERROR(SkipParamList());
    IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
    while (!cur_.TryConsume("}")) {
      IPSA_RETURN_IF_ERROR(cur_.Expect("state"));
      HlirParseState state;
      IPSA_ASSIGN_OR_RETURN(state.name, cur_.ExpectIdent());
      IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
      while (!cur_.TryConsume("}")) {
        if (cur_.TryConsume("transition")) {
          if (cur_.TryConsume("select")) {
            IPSA_RETURN_IF_ERROR(cur_.Expect("("));
            // hdr.<instance>.<field>
            IPSA_RETURN_IF_ERROR(cur_.Expect("hdr"));
            IPSA_RETURN_IF_ERROR(cur_.Expect("."));
            IPSA_ASSIGN_OR_RETURN(state.select_instance, cur_.ExpectIdent());
            IPSA_RETURN_IF_ERROR(cur_.Expect("."));
            IPSA_ASSIGN_OR_RETURN(state.select_field, cur_.ExpectIdent());
            IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
            IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
            while (!cur_.TryConsume("}")) {
              if (cur_.TryConsume("default")) {
                IPSA_RETURN_IF_ERROR(cur_.Expect(":"));
                IPSA_ASSIGN_OR_RETURN(state.default_transition,
                                      cur_.ExpectIdent());
                IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
              } else {
                IPSA_ASSIGN_OR_RETURN(uint64_t tag, cur_.ExpectNumber());
                IPSA_RETURN_IF_ERROR(cur_.Expect(":"));
                IPSA_ASSIGN_OR_RETURN(std::string target, cur_.ExpectIdent());
                IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
                state.transitions.emplace_back(tag, std::move(target));
              }
            }
          } else {
            IPSA_ASSIGN_OR_RETURN(state.default_transition,
                                  cur_.ExpectIdent());
            IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
          }
        } else if (cur_.TryConsume("pkt")) {
          IPSA_RETURN_IF_ERROR(cur_.Expect("."));
          IPSA_RETURN_IF_ERROR(cur_.Expect("extract"));
          IPSA_RETURN_IF_ERROR(cur_.Expect("("));
          IPSA_RETURN_IF_ERROR(cur_.Expect("hdr"));
          IPSA_RETURN_IF_ERROR(cur_.Expect("."));
          IPSA_ASSIGN_OR_RETURN(std::string inst, cur_.ExpectIdent());
          IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
          IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
          state.extracts.push_back(std::move(inst));
        } else {
          return cur_.ErrorHere("expected extract or transition");
        }
      }
      hlir_.parse_states.push_back(std::move(state));
    }
    return OkStatus();
  }

  Status ParseControl() {
    cur_.Next();  // control
    HlirControl control;
    IPSA_ASSIGN_OR_RETURN(control.name, cur_.ExpectIdent());
    IPSA_RETURN_IF_ERROR(SkipParamList());
    IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
    while (!cur_.TryConsume("}")) {
      const Token& t = cur_.Peek();
      if (t.IsIdent("action")) {
        IPSA_ASSIGN_OR_RETURN(ActionDef def, ParseAction());
        control.actions.push_back(std::move(def));
      } else if (t.IsIdent("table")) {
        IPSA_ASSIGN_OR_RETURN(HlirTable table, ParseTable());
        control.tables.push_back(std::move(table));
      } else if (t.IsIdent("apply")) {
        cur_.Next();
        IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
        IPSA_ASSIGN_OR_RETURN(control.apply.children, ParseApplyBlock());
        control.apply.kind = HlirApplyNode::Kind::kSeq;
      } else {
        return cur_.ErrorHere("expected action, table, or apply");
      }
    }
    if (!have_ingress_) {
      hlir_.ingress = std::move(control);
      have_ingress_ = true;
    } else {
      hlir_.egress = std::move(control);
    }
    return OkStatus();
  }

  Result<ActionDef> ParseAction() {
    cur_.Next();  // action
    ActionDef def;
    IPSA_ASSIGN_OR_RETURN(def.name, cur_.ExpectIdent());
    IPSA_RETURN_IF_ERROR(cur_.Expect("("));
    param_names_.clear();
    if (!cur_.TryConsume(")")) {
      while (true) {
        IPSA_RETURN_IF_ERROR(cur_.Expect("bit"));
        IPSA_RETURN_IF_ERROR(cur_.Expect("<"));
        IPSA_ASSIGN_OR_RETURN(uint64_t raw_width, cur_.ExpectNumber());
        IPSA_ASSIGN_OR_RETURN(uint32_t width, CheckWidth(raw_width));
        IPSA_RETURN_IF_ERROR(cur_.Expect(">"));
        IPSA_ASSIGN_OR_RETURN(std::string name, cur_.ExpectIdent());
        def.params.push_back(ActionParam{name, width});
        param_names_.insert(name);
        if (cur_.TryConsume(")")) break;
        IPSA_RETURN_IF_ERROR(cur_.Expect(","));
      }
    }
    IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
    IPSA_ASSIGN_OR_RETURN(def.body, ParseStatements());
    param_names_.clear();
    return def;
  }

  Result<HlirTable> ParseTable() {
    cur_.Next();  // table
    HlirTable table;
    IPSA_ASSIGN_OR_RETURN(table.name, cur_.ExpectIdent());
    IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
    while (!cur_.TryConsume("}")) {
      if (cur_.TryConsume("key")) {
        IPSA_RETURN_IF_ERROR(cur_.Expect("="));
        IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
        while (!cur_.TryConsume("}")) {
          HlirKeyField kf;
          IPSA_ASSIGN_OR_RETURN(kf.field, ParseFieldRef());
          IPSA_RETURN_IF_ERROR(cur_.Expect(":"));
          IPSA_ASSIGN_OR_RETURN(kf.match_type, cur_.ExpectIdent());
          IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
          table.key.push_back(std::move(kf));
        }
      } else if (cur_.TryConsume("actions")) {
        IPSA_RETURN_IF_ERROR(cur_.Expect("="));
        IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
        while (!cur_.TryConsume("}")) {
          IPSA_ASSIGN_OR_RETURN(std::string name, cur_.ExpectIdent());
          table.actions.push_back(std::move(name));
          cur_.TryConsume(";");
          cur_.TryConsume(",");
        }
      } else if (cur_.TryConsume("size")) {
        IPSA_RETURN_IF_ERROR(cur_.Expect("="));
        IPSA_ASSIGN_OR_RETURN(uint64_t size, cur_.ExpectNumber());
        table.size = static_cast<uint32_t>(size);
        IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      } else if (cur_.TryConsume("default_action")) {
        IPSA_RETURN_IF_ERROR(cur_.Expect("="));
        IPSA_ASSIGN_OR_RETURN(table.default_action, cur_.ExpectIdent());
        IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      } else {
        return cur_.ErrorHere("unexpected token in table body");
      }
    }
    return table;
  }

  Result<std::vector<HlirApplyNode>> ParseApplyBlock() {
    std::vector<HlirApplyNode> nodes;
    while (!cur_.TryConsume("}")) {
      IPSA_ASSIGN_OR_RETURN(HlirApplyNode node, ParseApplyStatement());
      nodes.push_back(std::move(node));
    }
    return nodes;
  }

  Result<HlirApplyNode> ParseApplyStatement() {
    if (stmt_depth_ >= kMaxNesting) {
      return cur_.ErrorHere("apply-block nesting too deep");
    }
    NestingGuard guard(stmt_depth_);
    if (cur_.TryConsume("if")) {
      HlirApplyNode node;
      node.kind = HlirApplyNode::Kind::kIf;
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_ASSIGN_OR_RETURN(node.cond, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
      IPSA_ASSIGN_OR_RETURN(node.children, ParseApplyBlock());
      if (cur_.TryConsume("else")) {
        if (cur_.TryConsume("if")) {
          // Desugar `else if` into else { if ... }.
          HlirApplyNode nested;
          nested.kind = HlirApplyNode::Kind::kIf;
          IPSA_RETURN_IF_ERROR(cur_.Expect("("));
          IPSA_ASSIGN_OR_RETURN(nested.cond, ParseExpr());
          IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
          IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
          IPSA_ASSIGN_OR_RETURN(nested.children, ParseApplyBlock());
          if (cur_.TryConsume("else")) {
            IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
            IPSA_ASSIGN_OR_RETURN(nested.else_children, ParseApplyBlock());
          }
          node.else_children.push_back(std::move(nested));
        } else {
          IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
          IPSA_ASSIGN_OR_RETURN(node.else_children, ParseApplyBlock());
        }
      }
      return node;
    }
    // <table>.apply();
    HlirApplyNode node;
    node.kind = HlirApplyNode::Kind::kApply;
    IPSA_ASSIGN_OR_RETURN(node.table, cur_.ExpectIdent());
    IPSA_RETURN_IF_ERROR(cur_.Expect("."));
    IPSA_RETURN_IF_ERROR(cur_.Expect("apply"));
    IPSA_RETURN_IF_ERROR(cur_.Expect("("));
    IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
    IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
    return node;
  }

  // --- statements & expressions (rP4-compatible surface) -----------------

  Result<std::vector<ActionOp>> ParseStatements() {
    std::vector<ActionOp> ops;
    while (!cur_.TryConsume("}")) {
      IPSA_ASSIGN_OR_RETURN(ActionOp op, ParseStatement());
      ops.push_back(std::move(op));
    }
    return ops;
  }

  Result<ActionOp> ParseStatement() {
    if (stmt_depth_ >= kMaxNesting) {
      return cur_.ErrorHere("statement nesting too deep");
    }
    NestingGuard guard(stmt_depth_);
    const Token& t = cur_.Peek();
    if (t.IsIdent("if")) {
      cur_.Next();
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
      IPSA_ASSIGN_OR_RETURN(std::vector<ActionOp> then_ops, ParseStatements());
      std::vector<ActionOp> else_ops;
      if (cur_.TryConsume("else")) {
        IPSA_RETURN_IF_ERROR(cur_.Expect("{"));
        IPSA_ASSIGN_OR_RETURN(else_ops, ParseStatements());
      }
      return ActionOp::If(std::move(cond), std::move(then_ops),
                          std::move(else_ops));
    }
    if (t.IsIdent("drop") || t.IsIdent("mark_to_drop")) {
      cur_.Next();
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      cur_.TryConsume("standard_metadata");  // mark_to_drop(standard_metadata)
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      return ActionOp::Drop();
    }
    if (t.IsIdent("mark")) {
      cur_.Next();
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      return ActionOp::Mark();
    }
    if (t.IsIdent("forward")) {
      cur_.Next();
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_ASSIGN_OR_RETURN(ExprPtr port, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      return ActionOp::Forward(std::move(port));
    }
    if (t.IsIdent("push_header")) {
      cur_.Next();
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_ASSIGN_OR_RETURN(std::string header, ParseInstanceName());
      std::string after;
      ExprPtr size;
      if (cur_.TryConsume(",")) {
        IPSA_ASSIGN_OR_RETURN(after, ParseInstanceName());
        if (cur_.TryConsume(",")) {
          IPSA_ASSIGN_OR_RETURN(size, ParseExpr());
        }
      }
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      return ActionOp::PushHeader(std::move(header), std::move(after),
                                  std::move(size));
    }
    if (t.IsIdent("pop_header")) {
      cur_.Next();
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_ASSIGN_OR_RETURN(std::string header, ParseInstanceName());
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      return ActionOp::PopHeader(std::move(header));
    }
    if (t.IsIdent("update_checksum")) {
      cur_.Next();
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_ASSIGN_OR_RETURN(std::string instance, ParseInstanceName());
      std::string field = "hdr_checksum";
      if (cur_.TryConsume(",")) {
        IPSA_ASSIGN_OR_RETURN(field, cur_.ExpectIdent());
      }
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      return ActionOp::UpdateChecksum(std::move(instance), std::move(field));
    }
    if (t.IsIdent("set_raw")) {
      cur_.Next();
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_ASSIGN_OR_RETURN(std::string instance, ParseInstanceName());
      IPSA_RETURN_IF_ERROR(cur_.Expect(","));
      IPSA_ASSIGN_OR_RETURN(ExprPtr offset, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(","));
      IPSA_ASSIGN_OR_RETURN(uint64_t width, cur_.ExpectNumber());
      IPSA_RETURN_IF_ERROR(cur_.Expect(","));
      IPSA_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      return ActionOp::AssignRaw(std::move(instance), std::move(offset),
                                 static_cast<uint32_t>(width),
                                 std::move(value));
    }
    if (t.kind == TokKind::kIdent) {
      IPSA_ASSIGN_OR_RETURN(std::string first, cur_.ExpectIdent());
      if (cur_.TryConsume("[")) {
        if (register_names_.count(first) == 0) {
          return cur_.ErrorHere("'" + first + "' is not a register");
        }
        IPSA_ASSIGN_OR_RETURN(ExprPtr index, ParseExpr());
        IPSA_RETURN_IF_ERROR(cur_.Expect("]"));
        IPSA_RETURN_IF_ERROR(cur_.Expect("="));
        IPSA_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
        IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
        return ActionOp::RegWrite(std::move(first), std::move(index),
                                  std::move(value));
      }
      IPSA_ASSIGN_OR_RETURN(FieldRef dest, FinishFieldRef(first));
      IPSA_RETURN_IF_ERROR(cur_.Expect("="));
      IPSA_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(";"));
      return ActionOp::Assign(std::move(dest), std::move(value));
    }
    return cur_.ErrorHere("expected statement");
  }

  // In P4, header instances appear as `hdr.<instance>`; accept bare names
  // too so shared snippets work.
  Result<std::string> ParseInstanceName() {
    IPSA_ASSIGN_OR_RETURN(std::string first, cur_.ExpectIdent());
    if (first == "hdr") {
      IPSA_RETURN_IF_ERROR(cur_.Expect("."));
      return cur_.ExpectIdent();
    }
    return first;
  }

  // `first` is the leading identifier, already consumed; completes a field
  // reference (`hdr.x.f`, `meta.f`, `standard_metadata.f`).
  Result<FieldRef> FinishFieldRef(const std::string& first) {
    IPSA_RETURN_IF_ERROR(cur_.Expect("."));
    IPSA_ASSIGN_OR_RETURN(std::string second, cur_.ExpectIdent());
    if (first == "meta" || first == "standard_metadata") {
      return FieldRef::Meta(second);
    }
    if (first == "hdr") {
      IPSA_RETURN_IF_ERROR(cur_.Expect("."));
      IPSA_ASSIGN_OR_RETURN(std::string third, cur_.ExpectIdent());
      return FieldRef::Header(second, third);
    }
    return FieldRef::Header(first, second);
  }

  Result<FieldRef> ParseFieldRef() {
    IPSA_ASSIGN_OR_RETURN(std::string first, cur_.ExpectIdent());
    return FinishFieldRef(first);
  }

  Result<ExprPtr> ParseExpr() {
    if (expr_depth_ >= kMaxNesting) {
      return cur_.ErrorHere("expression nesting too deep");
    }
    NestingGuard guard(expr_depth_);
    return ParseBinary(0);
  }

  struct Level {
    std::string_view token;
    Expr::Op op;
  };

  Result<ExprPtr> ParseBinary(int level) {
    static const std::vector<std::vector<Level>> kLevels = {
        {{"||", Expr::Op::kOr}},
        {{"&&", Expr::Op::kAnd}},
        {{"|", Expr::Op::kBitOr}},
        {{"^", Expr::Op::kBitXor}},
        {{"&", Expr::Op::kBitAnd}},
        {{"==", Expr::Op::kEq}, {"!=", Expr::Op::kNe}},
        {{"<", Expr::Op::kLt},
         {"<=", Expr::Op::kLe},
         {">", Expr::Op::kGt},
         {">=", Expr::Op::kGe}},
        {{"<<", Expr::Op::kShl}, {">>", Expr::Op::kShr}},
        {{"+", Expr::Op::kAdd}, {"-", Expr::Op::kSub}},
        {{"*", Expr::Op::kMul}},
    };
    if (level >= static_cast<int>(kLevels.size())) return ParseUnary();
    IPSA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBinary(level + 1));
    while (true) {
      bool matched = false;
      for (const Level& l : kLevels[static_cast<size_t>(level)]) {
        if (cur_.Peek().kind == TokKind::kPunct && cur_.Peek().Is(l.token)) {
          cur_.Next();
          IPSA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBinary(level + 1));
          lhs = Expr::Binary(l.op, std::move(lhs), std::move(rhs));
          matched = true;
          break;
        }
      }
      if (!matched) break;
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (cur_.TryConsume("!")) {
      IPSA_ASSIGN_OR_RETURN(ExprPtr a, ParseUnary());
      return Expr::Unary(Expr::Op::kNot, std::move(a));
    }
    if (cur_.TryConsume("~")) {
      IPSA_ASSIGN_OR_RETURN(ExprPtr a, ParseUnary());
      return Expr::Unary(Expr::Op::kBitNot, std::move(a));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = cur_.Peek();
    if (t.kind == TokKind::kNumber) {
      cur_.Next();
      return Expr::ConstU(t.number);
    }
    if (cur_.TryConsume("(")) {
      IPSA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      return e;
    }
    if (t.kind != TokKind::kIdent) {
      return cur_.ErrorHere("expected expression");
    }
    IPSA_ASSIGN_OR_RETURN(std::string first, cur_.ExpectIdent());
    if (first == "true") return Expr::ConstU(1, 1);
    if (first == "false") return Expr::ConstU(0, 1);
    if (first == "get_raw") {
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_ASSIGN_OR_RETURN(std::string instance, ParseInstanceName());
      IPSA_RETURN_IF_ERROR(cur_.Expect(","));
      IPSA_ASSIGN_OR_RETURN(ExprPtr offset, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(","));
      IPSA_ASSIGN_OR_RETURN(uint64_t width, cur_.ExpectNumber());
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      return Expr::Raw(std::move(instance), std::move(offset),
                       static_cast<uint32_t>(width));
    }
    if (first == "sat_add" || first == "fxp_quantize" ||
        first == "fxp_dequantize") {
      Expr::Op op = first == "sat_add"        ? Expr::Op::kSatAdd
                    : first == "fxp_quantize" ? Expr::Op::kFxpQuantize
                                              : Expr::Op::kFxpDequantize;
      IPSA_RETURN_IF_ERROR(cur_.Expect("("));
      IPSA_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(","));
      IPSA_ASSIGN_OR_RETURN(ExprPtr b, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
      return Expr::Binary(op, std::move(a), std::move(b));
    }
    if (cur_.Peek().Is("[")) {
      cur_.Next();
      if (register_names_.count(first) == 0) {
        return cur_.ErrorHere("'" + first + "' is not a register");
      }
      IPSA_ASSIGN_OR_RETURN(ExprPtr index, ParseExpr());
      IPSA_RETURN_IF_ERROR(cur_.Expect("]"));
      return Expr::Register(std::move(first), std::move(index));
    }
    if (cur_.Peek().Is(".")) {
      // hdr.x.f / meta.f / hdr.x.isValid()
      if (first == "hdr") {
        cur_.Next();
        IPSA_ASSIGN_OR_RETURN(std::string inst, cur_.ExpectIdent());
        IPSA_RETURN_IF_ERROR(cur_.Expect("."));
        IPSA_ASSIGN_OR_RETURN(std::string third, cur_.ExpectIdent());
        if (third == "isValid") {
          IPSA_RETURN_IF_ERROR(cur_.Expect("("));
          IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
          return Expr::IsValid(std::move(inst));
        }
        return Expr::Field(FieldRef::Header(inst, third));
      }
      cur_.Next();
      IPSA_ASSIGN_OR_RETURN(std::string second, cur_.ExpectIdent());
      if (second == "isValid") {
        IPSA_RETURN_IF_ERROR(cur_.Expect("("));
        IPSA_RETURN_IF_ERROR(cur_.Expect(")"));
        return Expr::IsValid(std::move(first));
      }
      if (first == "meta" || first == "standard_metadata") {
        return Expr::Field(FieldRef::Meta(second));
      }
      return Expr::Field(FieldRef::Header(first, second));
    }
    if (param_names_.count(first) > 0) {
      return Expr::Param(std::move(first));
    }
    return cur_.ErrorHere("unknown identifier '" + first + "' in expression");
  }

  TokenCursor cur_;
  Hlir hlir_;
  int expr_depth_ = 0;
  int stmt_depth_ = 0;
  bool have_ingress_ = false;
  std::set<std::string> param_names_;
  std::set<std::string> register_names_;

 public:
  std::vector<std::pair<std::string, uint32_t>> registers_;
};

}  // namespace

Result<Hlir> ParseP4(std::string_view source) {
  IPSA_ASSIGN_OR_RETURN(std::vector<rp4::Token> tokens,
                        rp4::Tokenize(source));
  Parser parser{TokenCursor(std::move(tokens))};
  IPSA_ASSIGN_OR_RETURN(Hlir hlir, parser.ParseProgram());
  // Registers parsed at top level attach to the HLIR.
  for (auto& [name, size] : parser.registers_) {
    hlir.registers.emplace_back(name, size);
  }
  return hlir;
}

}  // namespace ipsa::p4lite
