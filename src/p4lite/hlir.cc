#include "p4lite/hlir.h"

namespace ipsa::p4lite {

const arch::HeaderTypeDef* Hlir::FindHeaderType(std::string_view name) const {
  for (const auto& t : header_types) {
    if (t.name() == name) return &t;
  }
  return nullptr;
}

const HlirParseState* Hlir::FindState(std::string_view name) const {
  for (const auto& s : parse_states) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string Hlir::InstanceType(std::string_view instance) const {
  for (const auto& [inst, type] : header_instances) {
    if (inst == instance) return type;
  }
  return "";
}

Result<arch::HeaderRegistry> Hlir::BuildHeaderRegistry() const {
  arch::HeaderRegistry registry;

  // Instance -> header type def (instances are what the pipeline sees; we
  // register one type per *instance* so per-instance links are unambiguous).
  for (const auto& [inst, type_name] : header_instances) {
    const arch::HeaderTypeDef* type = FindHeaderType(type_name);
    if (type == nullptr) {
      return NotFound("headers struct references unknown type '" + type_name +
                      "'");
    }
    arch::HeaderTypeDef copy(inst, type->fields());
    if (type->var_size().has_value()) copy.SetVarSize(*type->var_size());
    IPSA_RETURN_IF_ERROR(registry.Add(std::move(copy)));
  }

  // Walk the parse graph: a state that extracts instance X and then selects
  // on X.f with transitions {tag -> state extracting Y} contributes links
  // X --(f, tag)--> Y.
  for (const auto& state : parse_states) {
    if (state.select_field.empty() || state.extracts.empty()) continue;
    const std::string& from = state.extracts.back();
    if (state.select_instance != from) {
      // Selecting on a previously-extracted header is legal P4 but exceeds
      // what per-header implicit parsers can express.
      return Unimplemented(
          "parse state '" + state.name +
          "' selects on a field of a non-latest header; not supported");
    }
    IPSA_ASSIGN_OR_RETURN(arch::HeaderTypeDef * def,
                          registry.GetMutable(from));
    if (def->selector_field().has_value() &&
        *def->selector_field() != state.select_field) {
      return InvalidArgument("header '" + from +
                             "' has conflicting selector fields");
    }
    def->SetSelectorField(state.select_field);
    for (const auto& [tag, next_state_name] : state.transitions) {
      if (next_state_name == "accept" || next_state_name == "reject") {
        continue;
      }
      const HlirParseState* next = FindState(next_state_name);
      if (next == nullptr) {
        return NotFound("transition to unknown state '" + next_state_name +
                        "'");
      }
      if (next->extracts.empty()) continue;
      def->SetLink(tag, next->extracts.front());
    }
  }

  // Entry type: first extract of the start state.
  const HlirParseState* start = FindState(start_state);
  if (start == nullptr || start->extracts.empty()) {
    return InvalidArgument("start state missing or extracts nothing");
  }
  registry.SetEntryType(start->extracts.front());
  return registry;
}

}  // namespace ipsa::p4lite
