#include "compiler/pisa_backend.h"

#include "compiler/linearize.h"
#include "compiler/rp4fc.h"
#include "rp4/ast.h"

namespace ipsa::compiler {

uint64_t RefinePlacement(const arch::DesignConfig& design, uint32_t rounds) {
  // Cost model: sum over stages of (parse-set pressure + matcher depth +
  // executor fan-out) weighted by a placement permutation; local search
  // swaps placement slots to minimize it. This stands in for the
  // whole-program optimization passes (PHV allocation, table placement)
  // that dominate a hardware P4 compiler's runtime — and that rerun on
  // EVERY full recompile, while the incremental rP4 flow never pays them.
  std::vector<const arch::StageProgram*> stages;
  for (const auto& s : design.ingress_stages) stages.push_back(&s);
  for (const auto& s : design.egress_stages) stages.push_back(&s);
  if (stages.empty()) return 0;

  auto stage_weight = [&](size_t i) -> uint64_t {
    const arch::StageProgram* s = stages[i];
    return 1 + s->parse_set.size() * 3 + s->matcher.size() * 5 +
           s->executor.size() * 2;
  };
  std::vector<size_t> placement(stages.size());
  for (size_t i = 0; i < placement.size(); ++i) placement[i] = i;

  auto cost = [&]() {
    uint64_t c = 0;
    for (size_t i = 0; i < placement.size(); ++i) {
      // Deeper physical slots are more expensive for heavy stages (models
      // wiring/congestion pressure).
      c += stage_weight(placement[i]) * (i + 1);
    }
    return c;
  };

  uint64_t best = cost();
  uint64_t seed = 0x9E3779B97F4A7C15ull;
  uint64_t per_round = stages.size() * stages.size() *
                       (design.tables.size() + design.actions.size() + 1);
  for (uint32_t round = 0; round < rounds; ++round) {
    for (uint64_t step = 0; step < per_round; ++step) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      size_t a = static_cast<size_t>(seed >> 33) % placement.size();
      size_t b = static_cast<size_t>(seed >> 13) % placement.size();
      std::swap(placement[a], placement[b]);
      uint64_t c = cost();
      if (c <= best) {
        best = c;
      } else {
        std::swap(placement[a], placement[b]);  // reject
      }
    }
  }
  return best;
}

Result<PisaBackendResult> RunPisaBackend(const p4lite::Hlir& hlir,
                                         const PisaBackendOptions& options) {
  // Front half is shared with rp4fc: linearize controls and resolve widths.
  IPSA_ASSIGN_OR_RETURN(Rp4fcResult fc, RunRp4fc(hlir));
  IPSA_ASSIGN_OR_RETURN(arch::DesignConfig design,
                        rp4::LowerToDesign(fc.program));
  design.name = hlir.program_name;

  if (design.ingress_stages.size() > options.physical_ingress_stages) {
    return ResourceExhausted("design needs " +
                             std::to_string(design.ingress_stages.size()) +
                             " ingress stages; chip has " +
                             std::to_string(options.physical_ingress_stages));
  }
  if (design.egress_stages.size() > options.physical_egress_stages) {
    return ResourceExhausted("design needs more egress stages than the chip");
  }

  // PISA's prorated memory: one cluster per physical stage; a logical
  // stage's tables are pinned to the stage's cluster.
  uint32_t stage_count =
      options.physical_ingress_stages + options.physical_egress_stages;
  std::vector<ClusterCapacity> clusters(
      stage_count, ClusterCapacity{options.sram_blocks_per_stage,
                                   options.tcam_blocks_per_stage});

  std::vector<AllocRequest> requests;
  auto blocks_for = [&options](const arch::TableDecl& t) {
    bool tcam = t.spec.match_kind == table::MatchKind::kTernary;
    uint32_t w = tcam ? options.tcam_width_bits : options.sram_width_bits;
    uint32_t d = tcam ? options.tcam_depth : options.sram_depth;
    uint32_t row_width =
        t.spec.key_width_bits + 8 + 16 + t.spec.action_data_width_bits;
    uint32_t cols = (row_width + w - 1) / w;
    uint32_t rows = (t.spec.size + d - 1) / d;
    return cols * rows;
  };
  auto stage_of_table = [&design, &options](
                            const std::string& table) -> std::optional<uint32_t> {
    for (size_t i = 0; i < design.ingress_stages.size(); ++i) {
      for (const auto& rule : design.ingress_stages[i].matcher) {
        if (rule.table == table) return static_cast<uint32_t>(i);
      }
    }
    for (size_t i = 0; i < design.egress_stages.size(); ++i) {
      for (const auto& rule : design.egress_stages[i].matcher) {
        if (rule.table == table) {
          return options.physical_ingress_stages + static_cast<uint32_t>(i);
        }
      }
    }
    return std::nullopt;
  };
  for (const auto& t : design.tables) {
    AllocRequest req;
    req.table = t.spec.name;
    req.kind = t.spec.match_kind == table::MatchKind::kTernary
                   ? mem::BlockKind::kTcam
                   : mem::BlockKind::kSram;
    req.blocks_needed = blocks_for(t);
    req.required_cluster = stage_of_table(t.spec.name);
    requests.push_back(std::move(req));
  }

  IPSA_ASSIGN_OR_RETURN(
      AllocPlan plan,
      SolveTableAllocation(requests, clusters, options.solver,
                           options.solver_node_budget));

  if (options.refine_rounds > 0) {
    RefinePlacement(design, options.refine_rounds);
  }

  PisaBackendResult result;
  result.design = std::move(design);
  result.alloc = std::move(plan);
  return result;
}

}  // namespace ipsa::compiler
