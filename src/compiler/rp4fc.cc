#include "compiler/rp4fc.h"

#include "compiler/linearize.h"
#include "rp4/parser.h"

namespace ipsa::compiler {

namespace {

// Rebuilds surface header declarations from a flattened registry.
std::vector<rp4::Rp4HeaderDecl> HeadersFromRegistry(
    const arch::HeaderRegistry& registry) {
  std::vector<rp4::Rp4HeaderDecl> out;
  for (const auto& name : registry.TypeNames()) {
    auto def = registry.Get(name);
    if (!def.ok()) continue;
    rp4::Rp4HeaderDecl h;
    h.name = name;
    for (const auto& f : (*def)->fields()) {
      h.fields.push_back(rp4::Rp4FieldDecl{f.name, f.width_bits});
    }
    if ((*def)->selector_field().has_value()) {
      rp4::Rp4ParserDecl p;
      p.selector_field = *(*def)->selector_field();
      for (const auto& [tag, next] : (*def)->links()) {
        p.links.emplace_back(tag, next);
      }
      h.parser = std::move(p);
    }
    if ((*def)->var_size().has_value()) {
      h.varsize = rp4::Rp4VarSizeDecl{(*def)->var_size()->len_field,
                                      (*def)->var_size()->add,
                                      (*def)->var_size()->multiplier};
    }
    out.push_back(std::move(h));
  }
  return out;
}

}  // namespace

util::Json ApiSpec::ToJson() const {
  util::Json j = util::Json::Object();
  for (const auto& [name, api] : tables) {
    util::Json tj = util::Json::Object();
    tj["match"] = std::string(table::MatchKindName(api.match_kind));
    util::Json key = util::Json::Array();
    for (size_t i = 0; i < api.key_fields.size(); ++i) {
      util::Json kf = util::Json::Object();
      kf["field"] = api.key_fields[i].ToString();
      kf["width"] = api.key_field_widths[i];
      key.push_back(std::move(kf));
    }
    tj["key"] = std::move(key);
    util::Json actions = util::Json::Object();
    for (const auto& [action, info] : api.actions) {
      util::Json aj = util::Json::Object();
      aj["id"] = info.first;
      util::Json widths = util::Json::Array();
      for (uint32_t w : info.second) widths.push_back(w);
      aj["param_widths"] = std::move(widths);
      actions[action] = std::move(aj);
    }
    tj["actions"] = std::move(actions);
    j[name] = std::move(tj);
  }
  return j;
}

ApiSpec BuildApiSpec(const arch::DesignConfig& design) {
  ApiSpec spec;
  auto field_width = [&design](const arch::FieldRef& ref) -> uint32_t {
    if (ref.space == arch::FieldRef::Space::kMeta) {
      for (const auto& m : design.metadata) {
        if (m.name == ref.field) return m.width_bits;
      }
      arch::Metadata std_meta = arch::Metadata::Standard();
      return std_meta.WidthOf(ref.field);
    }
    auto def = design.headers.Get(ref.instance);
    if (!def.ok()) return 0;
    auto w = (*def)->FieldWidthBits(ref.field);
    return w.ok() ? *w : 0;
  };
  auto param_widths = [&design](std::string_view action) {
    std::vector<uint32_t> out;
    for (const auto& a : design.actions) {
      if (a.name == action) {
        for (const auto& p : a.params) out.push_back(p.width_bits);
      }
    }
    return out;
  };

  auto scan_stage = [&](const arch::StageProgram& stage) {
    for (const auto& rule : stage.matcher) {
      if (rule.table.empty()) continue;
      for (const auto& t : design.tables) {
        if (t.spec.name != rule.table) continue;
        TableApi& api = spec.tables[rule.table];
        api.table = rule.table;
        api.match_kind = t.spec.match_kind;
        api.key_fields = t.binding.key_fields;
        api.key_field_widths.clear();
        for (const auto& f : t.binding.key_fields) {
          api.key_field_widths.push_back(field_width(f));
        }
        for (const auto& [tag, action] : stage.executor) {
          api.actions[action] = {tag, param_widths(action)};
        }
      }
    }
  };
  for (const auto& s : design.ingress_stages) scan_stage(s);
  for (const auto& s : design.egress_stages) scan_stage(s);
  return spec;
}

Result<Rp4fcResult> RunRp4fc(const p4lite::Hlir& hlir) {
  Rp4fcResult result;
  rp4::Rp4Program& prog = result.program;
  prog.name = hlir.program_name;

  // Headers with the parse graph folded into implicit parsers.
  IPSA_ASSIGN_OR_RETURN(arch::HeaderRegistry registry,
                        hlir.BuildHeaderRegistry());
  prog.headers = HeadersFromRegistry(registry);
  prog.entry_header = registry.entry_type();

  // Metadata struct.
  if (!hlir.metadata.empty()) {
    rp4::Rp4StructDecl meta;
    meta.name = "metadata_t";
    meta.alias = "meta";
    for (const auto& [name, width] : hlir.metadata) {
      meta.members.push_back(rp4::Rp4FieldDecl{name, width});
    }
    prog.structs.push_back(std::move(meta));
  }

  for (const auto& [name, size] : hlir.registers) {
    prog.registers.push_back(rp4::Rp4RegisterDecl{name, size, 64});
  }

  // Actions from both controls.
  for (const auto& a : hlir.ingress.actions) prog.actions.push_back(a);
  for (const auto& a : hlir.egress.actions) prog.actions.push_back(a);

  // Tables.
  auto convert_tables = [&prog](const p4lite::HlirControl& control) {
    for (const auto& t : control.tables) {
      rp4::Rp4TableDecl decl;
      decl.name = t.name;
      decl.size = t.size;
      decl.default_action = t.default_action;
      for (const auto& kf : t.key) {
        decl.key.push_back(rp4::Rp4KeyField{kf.field, kf.match_type});
      }
      decl.actions = t.actions;
      prog.tables.push_back(std::move(decl));
    }
  };
  convert_tables(hlir.ingress);
  convert_tables(hlir.egress);

  // Stages from the apply trees.
  IPSA_ASSIGN_OR_RETURN(prog.ingress_stages,
                        LinearizeControl(hlir.ingress, "ig"));
  IPSA_ASSIGN_OR_RETURN(prog.egress_stages,
                        LinearizeControl(hlir.egress, "eg"));

  // Fill parse sets (the rP4 per-stage parser blocks).
  std::vector<arch::TableDecl> table_decls;
  {
    // Temporarily lower tables for parse-set computation.
    IPSA_ASSIGN_OR_RETURN(arch::DesignConfig tmp, rp4::LowerToDesign(prog));
    table_decls = tmp.tables;
  }
  for (auto& s : prog.ingress_stages) {
    s.parse_set = ComputeParseSet(s, table_decls, prog.actions);
  }
  for (auto& s : prog.egress_stages) {
    s.parse_set = ComputeParseSet(s, table_decls, prog.actions);
  }

  // The whole base design forms one user function.
  rp4::Rp4FuncDecl base;
  base.name = "base";
  for (const auto& s : prog.ingress_stages) base.stages.push_back(s.name);
  for (const auto& s : prog.egress_stages) base.stages.push_back(s.name);
  prog.funcs.push_back(std::move(base));
  if (!prog.ingress_stages.empty()) {
    prog.ingress_entry = prog.ingress_stages.front().name;
  }
  if (!prog.egress_stages.empty()) {
    prog.egress_entry = prog.egress_stages.front().name;
  }

  // API spec from the lowered design.
  IPSA_ASSIGN_OR_RETURN(arch::DesignConfig design, rp4::LowerToDesign(prog));
  result.api = BuildApiSpec(design);
  return result;
}

}  // namespace ipsa::compiler
