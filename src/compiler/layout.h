// Incremental layout optimization (paper §3.2, "Algorithms in rP4
// Compiler", item 2).
//
// After an update edits the logical stage order, each stage *group* (the
// merged stages that share one TSP) must be placed on a TSP such that group
// order matches TSP order (the elastic pipeline flows left to right).
// Every group placed on a TSP other than its current one costs a template
// rewrite (and a table re-route), so the optimizer minimizes relocations.
//
// Two modes, the tradeoff the paper describes:
//  * kGreedy — first fit: keep a group on its old TSP when still legal,
//    otherwise take the next free slot. O(groups). Fast, may relocate more.
//  * kDp — sequence-alignment DP over (group, TSP) minimizing total
//    relocations; optimal but O(groups x TSPs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ipsa/ipbm.h"
#include "util/status.h"

namespace ipsa::compiler {

enum class LayoutMode { kGreedy, kDp };

struct LayoutGroup {
  std::vector<std::string> stages;  // merged logical stages, in order
  ipbm::TspRole role = ipbm::TspRole::kIngress;
  int32_t old_tsp = -1;  // current TSP, -1 for a new group
};

struct LayoutResult {
  std::vector<ipbm::TspAssignment> assignments;
  uint32_t relocations = 0;   // groups that moved (or are new)
  uint64_t work_units = 0;    // search effort (DP cells / greedy steps)
};

// Groups must already be in pipeline order with all ingress groups before
// all egress groups.
Result<LayoutResult> PlaceGroups(const std::vector<LayoutGroup>& groups,
                                 uint32_t tsp_count, LayoutMode mode);

}  // namespace ipsa::compiler
