// rp4bc — the rP4 back-end compiler (paper §3.2).
//
// Base mode: takes an rP4 program, analyzes logical-stage dependencies,
// merges independent stages into TSPs, allocates tables in the memory pool
// (set packing, table_alloc.h), computes the stage->TSP layout, and emits
// the TSP template parameters as JSON for device configuration.
//
// Incremental mode: takes the current base design + layout and an update
// request (an rP4 snippet plus the script commands of Fig. 5b/5c) and emits
// only the *delta*: an ordered list of device operations (create tables,
// add headers/links, write the affected TSP templates, reconfigure the
// selector) plus the updated base design for the next round. Function
// removal works the same way in reverse.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/design.h"
#include "compiler/layout.h"
#include "compiler/table_alloc.h"
#include "ipsa/ipbm.h"
#include "rp4/ast.h"
#include "util/json.h"
#include "util/status.h"

namespace ipsa::compiler {

struct Rp4bcOptions {
  uint32_t tsp_count = 12;
  uint32_t max_stages_per_tsp = 2;
  // Memory pool geometry (must match the target ipbm instance).
  uint32_t clusters = 1;
  uint32_t sram_blocks = 128;
  uint32_t tcam_blocks = 32;
  uint32_t sram_width_bits = 256;
  uint32_t sram_depth = 2048;
  uint32_t tcam_width_bits = 256;
  uint32_t tcam_depth = 512;
  SolveMode solver = SolveMode::kExact;
  uint64_t solver_node_budget = 2'000'000;
  LayoutMode layout_mode = LayoutMode::kDp;
  bool merge_stages = true;  // ablation knob
};

struct TspLayout {
  std::vector<ipbm::TspAssignment> assignments;
  std::map<std::string, uint32_t> table_cluster;
};

struct Rp4bcResult {
  arch::DesignConfig design;
  TspLayout layout;
  AllocPlan alloc;
  util::Json templates_json;  // TSP template parameters (§3.2 output)
};

Result<Rp4bcResult> CompileBase(const rp4::Rp4Program& program,
                                const Rp4bcOptions& options);

// --- incremental updates ---------------------------------------------------

struct HeaderLinkCmd {
  std::string pre;
  std::string next;
  uint64_t tag = 0;
};

struct UpdateRequest {
  std::string func_name;
  // `load`: the parsed rP4 snippet defining the function.
  std::optional<rp4::Rp4Program> snippet;
  // Pipeline-graph edits (Fig. 5b): stage adjacency to add/remove.
  std::vector<std::pair<std::string, std::string>> add_links;
  std::vector<std::pair<std::string, std::string>> del_links;
  // Header-graph edits (Fig. 5c).
  std::vector<HeaderLinkCmd> link_headers;
  // `remove`: offload the named function instead of loading one.
  bool remove = false;
  // `update`: replace a loaded function's logic IN PLACE (§4.2: updates
  // "require less compiling time and data-plane modifications"). The
  // snippet's stages must be a subset of the function's existing stages;
  // the pipeline graph, the layout and all table contents (including
  // registers) are untouched — only the affected TSP templates and changed
  // actions are rewritten.
  bool update = false;
};

struct DeviceOp {
  enum class Kind {
    kAddHeader,
    kRemoveHeader,
    kLinkHeader,
    kUnlinkHeader,
    kDeclareMetadata,
    kAddAction,
    kRemoveAction,
    kCreateRegister,
    kDestroyRegister,
    kCreateTable,
    kDestroyTable,
    kWriteTemplate,
    kClearTsp,
  };
  Kind kind;
  arch::HeaderTypeDef header;    // kAddHeader
  std::string name;              // remove/destroy ops
  HeaderLinkCmd link;            // k(Un)LinkHeader
  arch::MetadataDecl metadata;   // kDeclareMetadata
  arch::ActionDef action;        // kAddAction
  arch::TableDecl table;         // kCreateTable
  arch::RegisterDecl reg;        // kCreateRegister
  uint32_t tsp_id = 0;           // kWriteTemplate / kClearTsp
  ipbm::TspRole role = ipbm::TspRole::kIngress;
  std::vector<arch::StageProgram> programs;  // kWriteTemplate

  std::string ToString() const;
};

struct UpdatePlan {
  std::vector<DeviceOp> ops;
  rp4::Rp4Program updated_program;
  arch::DesignConfig updated_design;
  TspLayout updated_layout;
  uint32_t relocations = 0;       // template rewrites beyond new/removed TSPs
  uint64_t layout_work_units = 0;
};

Result<UpdatePlan> CompileUpdate(const rp4::Rp4Program& base,
                                 const TspLayout& layout,
                                 const UpdateRequest& request,
                                 const Rp4bcOptions& options);

// Applies an UpdatePlan's device operations to an ipbm switch, in order.
Status ApplyPlanToDevice(const UpdatePlan& plan, ipbm::IpbmSwitch& device);

// Whether two logical stages are independent (mergeable into one TSP):
// neither writes a field the other reads, and neither edits the packet's
// header structure.
bool StagesIndependent(const arch::DesignConfig& design,
                       const arch::StageProgram& a,
                       const arch::StageProgram& b);

}  // namespace ipsa::compiler
