// rp4fc — the rP4 front-end compiler (paper §3.2, Fig. 3).
//
// Input:  the HLIR (p4lite's target-independent output, standing in for
//         p4c's HLIR).
// Output: (1) a semantically equivalent rP4 program, and
//         (2) the runtime table-access API spec for the controller.
#pragma once

#include "p4lite/hlir.h"
#include "rp4/ast.h"
#include "util/json.h"
#include "util/status.h"

namespace ipsa::compiler {

// The per-table runtime API: how the controller encodes entries.
struct TableApi {
  std::string table;
  table::MatchKind match_kind = table::MatchKind::kExact;
  std::vector<arch::FieldRef> key_fields;
  std::vector<uint32_t> key_field_widths;
  // Action name -> (tag used as action_id, parameter widths).
  std::map<std::string, std::pair<uint32_t, std::vector<uint32_t>>> actions;
};

struct ApiSpec {
  std::map<std::string, TableApi> tables;

  const TableApi* Find(std::string_view table) const {
    auto it = tables.find(std::string(table));
    return it == tables.end() ? nullptr : &it->second;
  }
  util::Json ToJson() const;
};

struct Rp4fcResult {
  rp4::Rp4Program program;
  ApiSpec api;
};

// Transforms the HLIR into rP4. The emitted program is also pretty-printable
// via rp4::PrintRp4 and re-parseable (the real design flow writes the text).
Result<Rp4fcResult> RunRp4fc(const p4lite::Hlir& hlir);

// Builds the API spec from any design (used after incremental updates too).
ApiSpec BuildApiSpec(const arch::DesignConfig& design);

}  // namespace ipsa::compiler
