// Lowers an HLIR control's apply tree into an ordered list of logical
// stages (parse-match-action triads). Shared by rp4fc (which then prints
// rP4) and the PISA backend (which maps stages onto physical MAUs).
//
// Shape rules:
//  * a bare `t.apply()` becomes one stage with an unconditional rule;
//  * an if/else-if chain whose branches each contain a single apply becomes
//    ONE stage whose matcher is the guard chain (this is exactly rP4's
//    matcher block, and how ECMP's v4/v6 tables share a stage);
//  * anything nested deeper recurses, conjoining the path condition.
//
// Executor tags: each applied table contributes its action list; action ids
// are assigned per-stage, 1-based, in first-appearance order (0 stays
// NoAction). The controller's runtime API uses the same assignment.
#pragma once

#include <vector>

#include "arch/design.h"
#include "arch/stage.h"
#include "p4lite/hlir.h"
#include "util/status.h"

namespace ipsa::compiler {

// Linearizes one control. Stage names are "<prefix><n>_<table>".
Result<std::vector<arch::StageProgram>> LinearizeControl(
    const p4lite::HlirControl& control, const std::string& prefix);

// Computes the parse set of a stage: every header instance its guards, key
// fields, and executor actions touch.
std::vector<std::string> ComputeParseSet(
    const arch::StageProgram& stage,
    const std::vector<arch::TableDecl>& tables,
    const std::vector<arch::ActionDef>& actions);

// Header instances an action body touches.
void CollectActionHeaderDeps(const arch::ActionDef& action,
                             std::vector<std::string>& out);

// Fields an action body writes (for stage dependency analysis).
void CollectActionWrites(const arch::ActionDef& action,
                         std::vector<arch::FieldRef>& out);

// Fields a stage reads (guards + keys) given the table/action environment.
std::vector<arch::FieldRef> CollectStageReads(
    const arch::StageProgram& stage,
    const std::vector<arch::TableDecl>& tables);

}  // namespace ipsa::compiler
