#include "compiler/rp4bc.h"

#include <algorithm>
#include <map>
#include <set>

#include "compiler/linearize.h"
#include "util/strings.h"

namespace ipsa::compiler {

namespace {

using arch::ActionDef;
using arch::DesignConfig;
using arch::FieldRef;
using arch::StageProgram;
using ipbm::TspAssignment;
using ipbm::TspRole;

const ActionDef* FindAction(const DesignConfig& design,
                            std::string_view name) {
  for (const auto& a : design.actions) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

// Whether any action this stage can execute edits packet structure
// (push/pop header) — such stages never merge.
bool EditsStructure(const DesignConfig& design, const StageProgram& stage) {
  auto op_edits = [](const auto& self, const arch::ActionOp& op) -> bool {
    if (op.kind == arch::ActionOp::Kind::kPushHeader ||
        op.kind == arch::ActionOp::Kind::kPopHeader) {
      return true;
    }
    for (const auto& o : op.then_ops) {
      if (self(self, o)) return true;
    }
    for (const auto& o : op.else_ops) {
      if (self(self, o)) return true;
    }
    return false;
  };
  for (const auto& [tag, name] : stage.executor) {
    const ActionDef* a = FindAction(design, name);
    if (a == nullptr) continue;
    for (const auto& op : a->body) {
      if (op_edits(op_edits, op)) return true;
    }
  }
  return false;
}

std::vector<FieldRef> StageWrites(const DesignConfig& design,
                                  const StageProgram& stage) {
  std::vector<FieldRef> writes;
  for (const auto& [tag, name] : stage.executor) {
    const ActionDef* a = FindAction(design, name);
    if (a != nullptr) CollectActionWrites(*a, writes);
  }
  return writes;
}

bool Overlaps(const std::vector<FieldRef>& a, const std::vector<FieldRef>& b) {
  for (const auto& x : a) {
    for (const auto& y : b) {
      if (x == y) return true;
    }
  }
  return false;
}

uint32_t BlocksForTable(const arch::TableDecl& t, const Rp4bcOptions& o) {
  bool tcam = t.spec.match_kind == table::MatchKind::kTernary;
  uint32_t w = tcam ? o.tcam_width_bits : o.sram_width_bits;
  uint32_t d = tcam ? o.tcam_depth : o.sram_depth;
  uint32_t row_width =
      t.spec.key_width_bits + 8 + 16 + t.spec.action_data_width_bits;
  return ((row_width + w - 1) / w) * ((t.spec.size + d - 1) / d);
}

// Per-cluster capacities with the pool's round-robin striping.
std::vector<ClusterCapacity> ClusterCapacities(const Rp4bcOptions& o) {
  uint32_t n = std::max<uint32_t>(1, o.clusters);
  std::vector<ClusterCapacity> caps(n);
  for (uint32_t i = 0; i < o.sram_blocks; ++i) ++caps[i % n].sram_blocks;
  for (uint32_t i = 0; i < o.tcam_blocks; ++i) ++caps[i % n].tcam_blocks;
  return caps;
}

// Groups a control's stages for TSP assignment, merging adjacent
// independent stages up to the per-TSP limit.
std::vector<LayoutGroup> GroupStages(const DesignConfig& design,
                                     const std::vector<StageProgram>& stages,
                                     TspRole role,
                                     const Rp4bcOptions& options) {
  std::vector<LayoutGroup> groups;
  for (const auto& stage : stages) {
    bool merged = false;
    if (options.merge_stages && !groups.empty() &&
        groups.back().stages.size() < options.max_stages_per_tsp) {
      // Candidate: merge into the previous group if independent with every
      // stage already in it.
      bool ok = true;
      for (const auto& name : groups.back().stages) {
        const StageProgram* prev = design.FindStage(name);
        if (prev == nullptr || !StagesIndependent(design, *prev, stage)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        groups.back().stages.push_back(stage.name);
        merged = true;
      }
    }
    if (!merged) {
      LayoutGroup g;
      g.role = role;
      g.stages.push_back(stage.name);
      groups.push_back(std::move(g));
    }
  }
  return groups;
}

std::map<std::string, uint32_t> StageToTsp(const TspLayout& layout) {
  std::map<std::string, uint32_t> out;
  for (const auto& a : layout.assignments) {
    for (const auto& s : a.stage_names) out[s] = a.tsp_id;
  }
  return out;
}

util::Json TemplatesToJson(const std::vector<TspAssignment>& assignments,
                           const DesignConfig& design) {
  util::Json arr = util::Json::Array();
  for (const auto& a : assignments) {
    util::Json tj = util::Json::Object();
    tj["tsp"] = a.tsp_id;
    tj["role"] = std::string(TspRoleName(a.role));
    util::Json stages = util::Json::Array();
    for (const auto& name : a.stage_names) {
      const StageProgram* s = design.FindStage(name);
      if (s != nullptr) stages.push_back(StageProgramToJson(*s));
    }
    tj["stages"] = std::move(stages);
    arr.push_back(std::move(tj));
  }
  return arr;
}

}  // namespace

bool StagesIndependent(const DesignConfig& design, const StageProgram& a,
                       const StageProgram& b) {
  if (EditsStructure(design, a) || EditsStructure(design, b)) return false;
  std::vector<FieldRef> writes_a = StageWrites(design, a);
  std::vector<FieldRef> writes_b = StageWrites(design, b);
  std::vector<FieldRef> reads_a = CollectStageReads(a, design.tables);
  std::vector<FieldRef> reads_b = CollectStageReads(b, design.tables);
  return !Overlaps(writes_a, reads_b) && !Overlaps(writes_b, reads_a) &&
         !Overlaps(writes_a, writes_b);
}

Result<Rp4bcResult> CompileBase(const rp4::Rp4Program& program,
                                const Rp4bcOptions& options) {
  IPSA_ASSIGN_OR_RETURN(DesignConfig design, rp4::LowerToDesign(program));

  std::vector<LayoutGroup> ingress_groups =
      GroupStages(design, design.ingress_stages, TspRole::kIngress, options);
  std::vector<LayoutGroup> egress_groups =
      GroupStages(design, design.egress_stages, TspRole::kEgress, options);
  size_t total = ingress_groups.size() + egress_groups.size();
  if (total > options.tsp_count) {
    return ResourceExhausted(
        util::Format("design needs %zu TSPs but the device has %u", total,
                     options.tsp_count));
  }

  Rp4bcResult result;
  // Ingress groups map to the leftmost TSPs, egress to the rightmost (§2.3).
  uint32_t next = 0;
  for (auto& g : ingress_groups) {
    TspAssignment a;
    a.tsp_id = next++;
    a.role = TspRole::kIngress;
    a.stage_names = g.stages;
    result.layout.assignments.push_back(std::move(a));
  }
  uint32_t egress_base =
      options.tsp_count - static_cast<uint32_t>(egress_groups.size());
  for (auto& g : egress_groups) {
    TspAssignment a;
    a.tsp_id = egress_base++;
    a.role = TspRole::kEgress;
    a.stage_names = g.stages;
    result.layout.assignments.push_back(std::move(a));
  }

  // Table allocation over the memory pool.
  std::map<std::string, uint32_t> stage_tsp = StageToTsp(result.layout);
  std::vector<AllocRequest> requests;
  for (const auto& t : design.tables) {
    AllocRequest req;
    req.table = t.spec.name;
    req.kind = t.spec.match_kind == table::MatchKind::kTernary
                   ? mem::BlockKind::kTcam
                   : mem::BlockKind::kSram;
    req.blocks_needed = BlocksForTable(t, options);
    if (options.clusters > 1) {
      // Clustered crossbar: the table must live in its TSP's cluster.
      for (const auto& a : result.layout.assignments) {
        for (const auto& name : a.stage_names) {
          const StageProgram* s = design.FindStage(name);
          if (s == nullptr) continue;
          for (const auto& rule : s->matcher) {
            if (rule.table == t.spec.name) {
              req.required_cluster = a.tsp_id % options.clusters;
            }
          }
        }
      }
    }
    requests.push_back(std::move(req));
  }
  IPSA_ASSIGN_OR_RETURN(
      result.alloc,
      SolveTableAllocation(requests, ClusterCapacities(options),
                           options.solver, options.solver_node_budget));
  result.layout.table_cluster = result.alloc.table_cluster;

  result.templates_json = TemplatesToJson(result.layout.assignments, design);
  result.design = std::move(design);
  return result;
}

// ---------------------------------------------------------------------------
// Incremental updates
// ---------------------------------------------------------------------------

namespace {

// The logical pipeline as an adjacency graph over stage names.
struct PipelineGraph {
  std::vector<std::string> nodes;  // original order (old stages then new)
  std::set<std::pair<std::string, std::string>> edges;

  bool HasNode(std::string_view n) const {
    return std::find(nodes.begin(), nodes.end(), n) != nodes.end();
  }

  size_t IndexOf(const std::string& n) const {
    return static_cast<size_t>(
        std::find(nodes.begin(), nodes.end(), n) - nodes.begin());
  }

  // Kahn topological order over the subgraph reachable from `entry`,
  // breaking ties by original position.
  Result<std::vector<std::string>> OrderFrom(const std::string& entry) const {
    // Reachability.
    std::set<std::string> reachable;
    std::vector<std::string> frontier{entry};
    while (!frontier.empty()) {
      std::string n = frontier.back();
      frontier.pop_back();
      if (!reachable.insert(n).second) continue;
      for (const auto& [from, to] : edges) {
        if (from == n) frontier.push_back(to);
      }
    }
    // Kahn.
    std::map<std::string, uint32_t> indegree;
    for (const auto& n : reachable) indegree[n] = 0;
    for (const auto& [from, to] : edges) {
      if (reachable.count(from) && reachable.count(to)) ++indegree[to];
    }
    std::vector<std::string> order;
    while (order.size() < reachable.size()) {
      // Pick the ready node with the smallest original index.
      std::string pick;
      size_t best = SIZE_MAX;
      for (const auto& [n, deg] : indegree) {
        if (deg != 0) continue;
        if (std::find(order.begin(), order.end(), n) != order.end()) continue;
        size_t idx = IndexOf(n);
        if (idx < best) {
          best = idx;
          pick = n;
        }
      }
      if (pick.empty()) {
        return FailedPrecondition(
            "pipeline links form a cycle; cannot linearize");
      }
      order.push_back(pick);
      for (const auto& [from, to] : edges) {
        if (from == pick && reachable.count(to)) {
          auto it = indegree.find(to);
          if (it != indegree.end() && it->second > 0) --it->second;
        }
      }
      indegree[pick] = UINT32_MAX;  // consumed
    }
    return order;
  }
};

// Validates then merges; collisions are compile-time errors so a plan never
// fails halfway through device application.
Status MergeSnippetInto(rp4::Rp4Program& base,
                        const rp4::Rp4Program& snippet) {
  for (const auto& h : snippet.headers) {
    for (const auto& existing : base.headers) {
      if (existing.name == h.name) {
        return AlreadyExists("snippet redefines header '" + h.name + "'");
      }
    }
  }
  for (const auto& a : snippet.actions) {
    if (base.FindAction(a.name) != nullptr) {
      return AlreadyExists("snippet redefines action '" + a.name + "'");
    }
  }
  for (const auto& t : snippet.tables) {
    if (base.FindTable(t.name) != nullptr) {
      return AlreadyExists("snippet redefines table '" + t.name + "'");
    }
  }
  for (const auto& r : snippet.registers) {
    for (const auto& existing : base.registers) {
      if (existing.name == r.name) {
        return AlreadyExists("snippet redefines register '" + r.name + "'");
      }
    }
  }
  for (const auto& s : snippet.ingress_stages) {
    if (base.FindStage(s.name) != nullptr) {
      return AlreadyExists("snippet redefines stage '" + s.name + "'");
    }
  }
  for (const auto& h : snippet.headers) base.headers.push_back(h);
  for (const auto& s : snippet.structs) base.structs.push_back(s);
  for (const auto& r : snippet.registers) base.registers.push_back(r);
  for (const auto& a : snippet.actions) base.actions.push_back(a);
  for (const auto& t : snippet.tables) base.tables.push_back(t);
  // Snippet stages join the program; their position comes from the links.
  return OkStatus();
}

}  // namespace

std::string DeviceOp::ToString() const {
  switch (kind) {
    case Kind::kAddHeader:
      return "add_header " + header.name();
    case Kind::kRemoveHeader:
      return "remove_header " + name;
    case Kind::kLinkHeader:
      return util::Format("link_header %s -> %s tag %llu", link.pre.c_str(),
                          link.next.c_str(),
                          static_cast<unsigned long long>(link.tag));
    case Kind::kUnlinkHeader:
      return util::Format("unlink_header %s tag %llu", link.pre.c_str(),
                          static_cast<unsigned long long>(link.tag));
    case Kind::kDeclareMetadata:
      return "declare_metadata " + metadata.name;
    case Kind::kAddAction:
      return "add_action " + action.name;
    case Kind::kRemoveAction:
      return "remove_action " + name;
    case Kind::kCreateRegister:
      return "create_register " + reg.name;
    case Kind::kDestroyRegister:
      return "destroy_register " + name;
    case Kind::kCreateTable:
      return "create_table " + table.spec.name;
    case Kind::kDestroyTable:
      return "destroy_table " + name;
    case Kind::kWriteTemplate: {
      std::string stages;
      for (const auto& p : programs) stages += p.name + " ";
      return util::Format("write_template tsp=%u role=%s stages=[%s]", tsp_id,
                          std::string(TspRoleName(role)).c_str(),
                          stages.c_str());
    }
    case Kind::kClearTsp:
      return util::Format("clear_tsp %u", tsp_id);
  }
  return "?";
}

namespace {

// The in-place function-update fast path: same stages, new logic. The
// layout, pipeline graph, and all stateful contents stay untouched.
Result<UpdatePlan> CompileInPlaceUpdate(const rp4::Rp4Program& base,
                                        const TspLayout& layout,
                                        const UpdateRequest& request) {
  const rp4::Rp4FuncDecl* func = base.FindFunc(request.func_name);
  if (func == nullptr) {
    return NotFound("function '" + request.func_name +
                    "' is not loaded; use `load` for new functions");
  }
  if (!request.snippet.has_value()) {
    return InvalidArgument("update request needs an rP4 snippet");
  }
  const rp4::Rp4Program& snip = *request.snippet;
  std::set<std::string> func_stages(func->stages.begin(), func->stages.end());

  UpdatePlan plan;
  rp4::Rp4Program updated = base;

  // Replace or add actions; replacing emits remove+add device ops.
  for (const auto& a : snip.actions) {
    bool replaced = false;
    for (auto& existing : updated.actions) {
      if (existing.name != a.name) continue;
      if (ActionDefToJson(existing).Dump() == ActionDefToJson(a).Dump()) {
        replaced = true;  // unchanged: no op needed
        break;
      }
      existing = a;
      DeviceOp rm;
      rm.kind = DeviceOp::Kind::kRemoveAction;
      rm.name = a.name;
      plan.ops.push_back(std::move(rm));
      DeviceOp add;
      add.kind = DeviceOp::Kind::kAddAction;
      add.action = a;
      plan.ops.push_back(std::move(add));
      replaced = true;
      break;
    }
    if (!replaced) {
      updated.actions.push_back(a);
      DeviceOp add;
      add.kind = DeviceOp::Kind::kAddAction;
      add.action = a;
      plan.ops.push_back(std::move(add));
    }
  }

  // Tables: same-name tables must be shape-identical (their entries and
  // pool blocks survive the update); new tables are created.
  for (const auto& t : snip.tables) {
    const rp4::Rp4TableDecl* existing = base.FindTable(t.name);
    if (existing == nullptr) {
      updated.tables.push_back(t);
      continue;
    }
    if (existing->key.size() != t.key.size() || existing->size != t.size) {
      return FailedPrecondition(
          "update changes the shape of table '" + t.name +
          "'; remove and reload the function instead");
    }
  }

  // Registers: keep existing (their contents are the point), add new ones.
  for (const auto& r : snip.registers) {
    bool exists = false;
    for (const auto& existing : base.registers) {
      if (existing.name == r.name) exists = true;
    }
    if (!exists) {
      updated.registers.push_back(r);
      DeviceOp op;
      op.kind = DeviceOp::Kind::kCreateRegister;
      op.reg = arch::RegisterDecl{r.name, r.size};
      plan.ops.push_back(std::move(op));
    }
  }

  // Stage bodies: every snippet stage must already belong to the function.
  std::set<std::string> touched;
  auto replace_stage = [&](std::vector<arch::StageProgram>& stages,
                           const arch::StageProgram& next) {
    for (auto& s : stages) {
      if (s.name == next.name) {
        // Preserve the pipeline position; swap the triad.
        s = next;
        return true;
      }
    }
    return false;
  };
  for (const auto& lists :
       {&snip.ingress_stages, &snip.egress_stages}) {
    for (const auto& s : *lists) {
      if (func_stages.count(s.name) == 0) {
        return InvalidArgument(
            "update: stage '" + s.name + "' is not part of function '" +
            request.func_name + "'; use load/remove for structural changes");
      }
      if (!replace_stage(updated.ingress_stages, s) &&
          !replace_stage(updated.egress_stages, s)) {
        return InternalError("function stage '" + s.name +
                             "' missing from the base design");
      }
      touched.insert(s.name);
    }
  }

  IPSA_ASSIGN_OR_RETURN(plan.updated_design, rp4::LowerToDesign(updated));

  // New tables get pool space (after updated_design computes their widths).
  std::set<std::string> base_tables;
  for (const auto& t : base.tables) base_tables.insert(t.name);
  for (const auto& t : plan.updated_design.tables) {
    if (base_tables.count(t.spec.name) > 0) continue;
    DeviceOp op;
    op.kind = DeviceOp::Kind::kCreateTable;
    op.table = t;
    plan.ops.push_back(std::move(op));
  }

  // Rewrite only the TSPs hosting touched stages; the layout is unchanged.
  for (const auto& assign : layout.assignments) {
    bool affected = false;
    for (const auto& name : assign.stage_names) {
      if (touched.count(name) > 0) affected = true;
    }
    if (!affected) continue;
    DeviceOp op;
    op.kind = DeviceOp::Kind::kWriteTemplate;
    op.tsp_id = assign.tsp_id;
    op.role = assign.role;
    for (const auto& name : assign.stage_names) {
      const arch::StageProgram* s = plan.updated_design.FindStage(name);
      if (s == nullptr) return InternalError("missing stage program");
      op.programs.push_back(*s);
    }
    plan.ops.push_back(std::move(op));
  }

  plan.updated_program = std::move(updated);
  plan.updated_layout = layout;
  plan.relocations = 0;
  return plan;
}

}  // namespace

Result<UpdatePlan> CompileUpdate(const rp4::Rp4Program& base,
                                 const TspLayout& layout,
                                 const UpdateRequest& request,
                                 const Rp4bcOptions& options) {
  if (request.update) {
    return CompileInPlaceUpdate(base, layout, request);
  }
  UpdatePlan plan;
  rp4::Rp4Program updated = base;

  // 1. Collect the old linear order and the ingress/egress boundary.
  std::vector<std::string> old_order;
  for (const auto& s : base.ingress_stages) old_order.push_back(s.name);
  size_t egress_boundary = old_order.size();
  for (const auto& s : base.egress_stages) old_order.push_back(s.name);
  std::string egress_entry =
      base.egress_stages.empty() ? "" : base.egress_stages.front().name;

  // 2. New stages from the snippet (load) or deleted stages (remove).
  std::vector<std::string> new_stage_names;
  std::set<std::string> removed_by_request;
  if (request.remove) {
    const rp4::Rp4FuncDecl* func = base.FindFunc(request.func_name);
    if (func == nullptr) {
      return NotFound("function '" + request.func_name + "' is not loaded");
    }
    removed_by_request.insert(func->stages.begin(), func->stages.end());
  } else {
    if (!request.snippet.has_value()) {
      return InvalidArgument("load request needs an rP4 snippet");
    }
    if (base.FindFunc(request.func_name) != nullptr) {
      return AlreadyExists("function '" + request.func_name +
                           "' is already loaded; remove it first "
                           "(function update = remove + load)");
    }
    IPSA_RETURN_IF_ERROR(MergeSnippetInto(updated, *request.snippet));
    for (const auto& s : request.snippet->ingress_stages) {
      updated.ingress_stages.push_back(s);  // temporary; re-split below
      new_stage_names.push_back(s.name);
    }
    for (const auto& s : request.snippet->egress_stages) {
      updated.ingress_stages.push_back(s);
      new_stage_names.push_back(s.name);
    }
  }

  // 3. Build and edit the pipeline graph.
  PipelineGraph graph;
  graph.nodes = old_order;
  for (const auto& n : new_stage_names) graph.nodes.push_back(n);
  for (size_t i = 0; i + 1 < old_order.size(); ++i) {
    graph.edges.insert({old_order[i], old_order[i + 1]});
  }
  for (const auto& [a, b] : request.del_links) {
    graph.edges.erase({a, b});
  }
  for (const auto& [a, b] : request.add_links) {
    if (!graph.HasNode(a) || !graph.HasNode(b)) {
      return NotFound("add_link references unknown stage '" + a + "' or '" +
                      b + "'");
    }
    graph.edges.insert({a, b});
  }
  if (request.remove) {
    // Bridge around each removed stage, then drop its edges.
    for (const auto& r : removed_by_request) {
      std::vector<std::string> preds, succs;
      for (const auto& [from, to] : graph.edges) {
        if (to == r && removed_by_request.count(from) == 0) {
          preds.push_back(from);
        }
        if (from == r && removed_by_request.count(to) == 0) {
          succs.push_back(to);
        }
      }
      for (const auto& p : preds) {
        for (const auto& s : succs) graph.edges.insert({p, s});
      }
      for (auto it = graph.edges.begin(); it != graph.edges.end();) {
        if (it->first == r || it->second == r) {
          it = graph.edges.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // 4. Linearize. Stages that fell off the graph are deleted.
  std::string entry = base.ingress_entry.empty()
                          ? (old_order.empty() ? "" : old_order.front())
                          : base.ingress_entry;
  if (entry.empty()) return FailedPrecondition("base design has no entry");
  IPSA_ASSIGN_OR_RETURN(std::vector<std::string> new_order,
                        graph.OrderFrom(entry));
  std::set<std::string> kept(new_order.begin(), new_order.end());

  // 5. Split the new order at the egress boundary again.
  size_t new_egress_start = new_order.size();
  if (!egress_entry.empty() && kept.count(egress_entry) > 0) {
    for (size_t i = 0; i < new_order.size(); ++i) {
      if (new_order[i] == egress_entry) {
        new_egress_start = i;
        break;
      }
    }
  } else if (egress_boundary < old_order.size()) {
    // Egress entry itself was deleted; the first surviving old egress stage
    // marks the boundary.
    for (size_t i = 0; i < new_order.size(); ++i) {
      bool was_egress = false;
      for (size_t j = egress_boundary; j < old_order.size(); ++j) {
        if (old_order[j] == new_order[i]) was_egress = true;
      }
      if (was_egress) {
        new_egress_start = i;
        break;
      }
    }
  }

  // Rebuild updated program's stage lists in the new order.
  {
    std::vector<StageProgram> all_stages;
    auto find_stage = [&](const std::string& name) -> const StageProgram* {
      for (const auto& s : updated.ingress_stages) {
        if (s.name == name) return &s;
      }
      for (const auto& s : updated.egress_stages) {
        if (s.name == name) return &s;
      }
      return nullptr;
    };
    for (const auto& name : new_order) {
      const StageProgram* s = find_stage(name);
      if (s == nullptr) {
        return InternalError("ordered stage '" + name + "' has no program");
      }
      all_stages.push_back(*s);
    }
    updated.ingress_stages.assign(
        all_stages.begin(),
        all_stages.begin() + static_cast<std::ptrdiff_t>(new_egress_start));
    updated.egress_stages.assign(
        all_stages.begin() + static_cast<std::ptrdiff_t>(new_egress_start),
        all_stages.end());
    updated.ingress_entry = new_order.empty() ? "" : new_order.front();
    updated.egress_entry = new_egress_start < new_order.size()
                               ? new_order[new_egress_start]
                               : "";
  }

  // Maintain the function registry.
  if (request.remove) {
    updated.funcs.erase(
        std::remove_if(updated.funcs.begin(), updated.funcs.end(),
                       [&](const rp4::Rp4FuncDecl& f) {
                         return f.name == request.func_name;
                       }),
        updated.funcs.end());
  } else {
    rp4::Rp4FuncDecl func;
    func.name = request.func_name;
    func.stages = new_stage_names;
    updated.funcs.push_back(std::move(func));
  }

  IPSA_ASSIGN_OR_RETURN(DesignConfig updated_design,
                        rp4::LowerToDesign(updated));

  // 6. Incremental layout: keep surviving groups on their TSPs when
  // possible; place new stages with the configured optimizer.
  std::map<std::string, uint32_t> old_tsp = StageToTsp(layout);
  std::vector<LayoutGroup> groups;
  std::set<std::string> new_set(new_stage_names.begin(),
                                new_stage_names.end());
  for (size_t i = 0; i < new_order.size(); ++i) {
    const std::string& name = new_order[i];
    TspRole role = i < new_egress_start ? TspRole::kIngress : TspRole::kEgress;
    bool is_new = new_set.count(name) > 0;
    int32_t old_id = is_new ? -1
                            : static_cast<int32_t>(old_tsp.count(name)
                                                       ? old_tsp[name]
                                                       : UINT32_MAX);
    bool merged = false;
    if (!groups.empty() && groups.back().role == role) {
      LayoutGroup& prev = groups.back();
      if (!is_new && prev.old_tsp >= 0 && prev.old_tsp == old_id &&
          prev.stages.size() < options.max_stages_per_tsp) {
        // Stages that already shared a TSP stay together.
        merged = true;
      } else if (is_new && prev.old_tsp == -1 && options.merge_stages &&
                 prev.stages.size() < options.max_stages_per_tsp) {
        // Adjacent new stages merge when independent.
        bool ok = true;
        for (const auto& pname : prev.stages) {
          const StageProgram* ps = updated_design.FindStage(pname);
          const StageProgram* cs = updated_design.FindStage(name);
          if (ps == nullptr || cs == nullptr ||
              !StagesIndependent(updated_design, *ps, *cs)) {
            ok = false;
          }
        }
        merged = ok;
      }
      if (merged) prev.stages.push_back(name);
    }
    if (!merged) {
      LayoutGroup g;
      g.role = role;
      g.old_tsp = old_id;
      g.stages.push_back(name);
      groups.push_back(std::move(g));
    }
  }
  IPSA_ASSIGN_OR_RETURN(
      LayoutResult placed,
      PlaceGroups(groups, options.tsp_count, options.layout_mode));
  plan.layout_work_units = placed.work_units;

  // 7. Allocate pool space for the new tables (greedy, incremental).
  std::set<std::string> old_tables;
  for (const auto& t : base.tables) old_tables.insert(t.name);
  std::vector<ClusterCapacity> caps = ClusterCapacities(options);
  for (const auto& t : updated_design.tables) {
    auto it = layout.table_cluster.find(t.spec.name);
    if (it == layout.table_cluster.end()) continue;
    uint32_t blocks = BlocksForTable(t, options);
    auto& cap = caps[it->second];
    if (t.spec.match_kind == table::MatchKind::kTernary) {
      cap.tcam_blocks = cap.tcam_blocks > blocks ? cap.tcam_blocks - blocks : 0;
    } else {
      cap.sram_blocks = cap.sram_blocks > blocks ? cap.sram_blocks - blocks : 0;
    }
  }
  std::vector<AllocRequest> new_requests;
  for (const auto& t : updated_design.tables) {
    if (old_tables.count(t.spec.name) > 0) continue;
    AllocRequest req;
    req.table = t.spec.name;
    req.kind = t.spec.match_kind == table::MatchKind::kTernary
                   ? mem::BlockKind::kTcam
                   : mem::BlockKind::kSram;
    req.blocks_needed = BlocksForTable(t, options);
    new_requests.push_back(std::move(req));
  }
  AllocPlan new_alloc;
  if (!new_requests.empty()) {
    IPSA_ASSIGN_OR_RETURN(new_alloc,
                          SolveTableAllocation(new_requests, caps,
                                               SolveMode::kGreedy));
  }

  // 8. Emit device operations.
  std::set<std::string> referenced_tables, referenced_actions;
  auto note_refs = [&](const StageProgram& s) {
    for (const auto& rule : s.matcher) {
      if (!rule.table.empty()) referenced_tables.insert(rule.table);
    }
    for (const auto& [tag, a] : s.executor) referenced_actions.insert(a);
    referenced_actions.insert(s.miss_action);
  };
  for (const auto& s : updated.ingress_stages) note_refs(s);
  for (const auto& s : updated.egress_stages) note_refs(s);

  if (!request.remove && request.snippet.has_value()) {
    const rp4::Rp4Program& snip = *request.snippet;
    for (const auto& h : snip.headers) {
      DeviceOp op;
      op.kind = DeviceOp::Kind::kAddHeader;
      std::vector<arch::FieldDef> fields;
      for (const auto& f : h.fields) {
        fields.push_back(arch::FieldDef{f.name, f.width_bits});
      }
      arch::HeaderTypeDef def(h.name, std::move(fields));
      if (h.parser.has_value()) {
        def.SetSelectorField(h.parser->selector_field);
        for (const auto& [tag, next] : h.parser->links) def.SetLink(tag, next);
      }
      if (h.varsize.has_value()) {
        def.SetVarSize(arch::VarSizeRule{h.varsize->len_field, h.varsize->add,
                                         h.varsize->multiplier});
      }
      op.header = std::move(def);
      plan.ops.push_back(std::move(op));
    }
    for (const auto& s : snip.structs) {
      for (const auto& m : s.members) {
        DeviceOp op;
        op.kind = DeviceOp::Kind::kDeclareMetadata;
        op.metadata = arch::MetadataDecl{m.name, m.width_bits};
        plan.ops.push_back(std::move(op));
      }
    }
    for (const auto& r : snip.registers) {
      DeviceOp op;
      op.kind = DeviceOp::Kind::kCreateRegister;
      op.reg = arch::RegisterDecl{r.name, r.size};
      plan.ops.push_back(std::move(op));
    }
    for (const auto& a : snip.actions) {
      DeviceOp op;
      op.kind = DeviceOp::Kind::kAddAction;
      op.action = a;
      plan.ops.push_back(std::move(op));
    }
    for (const auto& t : updated_design.tables) {
      if (old_tables.count(t.spec.name) > 0) continue;
      DeviceOp op;
      op.kind = DeviceOp::Kind::kCreateTable;
      op.table = t;
      plan.ops.push_back(std::move(op));
    }
  }
  for (const auto& l : request.link_headers) {
    DeviceOp op;
    // An empty `next` means "unlink this tag" (controller's unlink_header).
    op.kind = l.next.empty() ? DeviceOp::Kind::kUnlinkHeader
                             : DeviceOp::Kind::kLinkHeader;
    op.link = l;
    plan.ops.push_back(std::move(op));
  }

  // Template writes for every TSP whose hosted stage set changed.
  std::map<uint32_t, std::vector<std::string>> old_by_tsp, new_by_tsp;
  std::map<uint32_t, TspRole> new_roles;
  for (const auto& a : layout.assignments) {
    old_by_tsp[a.tsp_id] = a.stage_names;
  }
  for (const auto& a : placed.assignments) {
    new_by_tsp[a.tsp_id] = a.stage_names;
    new_roles[a.tsp_id] = a.role;
  }
  uint32_t pure_relocations = 0;
  for (const auto& [tsp, stages] : new_by_tsp) {
    auto it = old_by_tsp.find(tsp);
    if (it != old_by_tsp.end() && it->second == stages) continue;  // unchanged
    DeviceOp op;
    op.kind = DeviceOp::Kind::kWriteTemplate;
    op.tsp_id = tsp;
    op.role = new_roles[tsp];
    for (const auto& name : stages) {
      const StageProgram* s = updated_design.FindStage(name);
      if (s == nullptr) return InternalError("missing stage program");
      op.programs.push_back(*s);
    }
    // A rewritten TSP hosting only pre-existing stages is a relocation.
    bool all_old = true;
    for (const auto& name : stages) {
      if (new_set.count(name) > 0) all_old = false;
    }
    if (all_old) ++pure_relocations;
    plan.ops.push_back(std::move(op));
  }
  for (const auto& [tsp, stages] : old_by_tsp) {
    if (new_by_tsp.count(tsp) == 0) {
      DeviceOp op;
      op.kind = DeviceOp::Kind::kClearTsp;
      op.tsp_id = tsp;
      plan.ops.push_back(std::move(op));
    }
  }
  plan.relocations = pure_relocations;

  // Destroy tables/actions/registers that lost their last reference
  // (deleted-stage cleanup; §2.4 "the associated memory blocks are also
  // recycled").
  for (const auto& t : base.tables) {
    if (referenced_tables.count(t.name) == 0) {
      DeviceOp op;
      op.kind = DeviceOp::Kind::kDestroyTable;
      op.name = t.name;
      plan.ops.push_back(std::move(op));
      updated.tables.erase(
          std::remove_if(updated.tables.begin(), updated.tables.end(),
                         [&](const rp4::Rp4TableDecl& d) {
                           return d.name == t.name;
                         }),
          updated.tables.end());
    }
  }
  if (request.remove) {
    for (const auto& a : base.actions) {
      if (referenced_actions.count(a.name) == 0) {
        DeviceOp op;
        op.kind = DeviceOp::Kind::kRemoveAction;
        op.name = a.name;
        plan.ops.push_back(std::move(op));
        updated.actions.erase(
            std::remove_if(updated.actions.begin(), updated.actions.end(),
                           [&](const ActionDef& d) { return d.name == a.name; }),
            updated.actions.end());
      }
    }
  }

  // Final state.
  IPSA_ASSIGN_OR_RETURN(plan.updated_design, rp4::LowerToDesign(updated));
  plan.updated_program = std::move(updated);
  plan.updated_layout.assignments = placed.assignments;
  plan.updated_layout.table_cluster = layout.table_cluster;
  for (const auto& [t, c] : new_alloc.table_cluster) {
    plan.updated_layout.table_cluster[t] = c;
  }
  return plan;
}

Status ApplyPlanToDevice(const UpdatePlan& plan, ipbm::IpbmSwitch& device) {
  for (const DeviceOp& op : plan.ops) {
    switch (op.kind) {
      case DeviceOp::Kind::kAddHeader:
        IPSA_RETURN_IF_ERROR(device.AddHeaderType(op.header));
        break;
      case DeviceOp::Kind::kRemoveHeader:
        IPSA_RETURN_IF_ERROR(device.RemoveHeaderType(op.name));
        break;
      case DeviceOp::Kind::kLinkHeader:
        IPSA_RETURN_IF_ERROR(
            device.LinkHeader(op.link.pre, op.link.next, op.link.tag));
        break;
      case DeviceOp::Kind::kUnlinkHeader:
        IPSA_RETURN_IF_ERROR(device.UnlinkHeader(op.link.pre, op.link.tag));
        break;
      case DeviceOp::Kind::kDeclareMetadata:
        IPSA_RETURN_IF_ERROR(
            device.DeclareMetadata(op.metadata.name, op.metadata.width_bits));
        break;
      case DeviceOp::Kind::kAddAction:
        IPSA_RETURN_IF_ERROR(device.AddAction(op.action));
        break;
      case DeviceOp::Kind::kRemoveAction:
        IPSA_RETURN_IF_ERROR(device.RemoveAction(op.name));
        break;
      case DeviceOp::Kind::kCreateRegister:
        IPSA_RETURN_IF_ERROR(device.CreateRegister(op.reg.name, op.reg.size));
        break;
      case DeviceOp::Kind::kDestroyRegister:
        IPSA_RETURN_IF_ERROR(device.DestroyRegister(op.name));
        break;
      case DeviceOp::Kind::kCreateTable:
        IPSA_RETURN_IF_ERROR(device.CreateTable(op.table));
        break;
      case DeviceOp::Kind::kDestroyTable:
        IPSA_RETURN_IF_ERROR(device.DestroyTable(op.name));
        break;
      case DeviceOp::Kind::kWriteTemplate:
        IPSA_RETURN_IF_ERROR(
            device.WriteTspTemplate(op.tsp_id, op.role, op.programs));
        break;
      case DeviceOp::Kind::kClearTsp:
        IPSA_RETURN_IF_ERROR(device.ClearTsp(op.tsp_id));
        break;
    }
  }
  return OkStatus();
}

}  // namespace ipsa::compiler
