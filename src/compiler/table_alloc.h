// Memory-pool table allocation — the set-packing problem of §3.2.
//
// Each table needs ceil(W/w) x ceil(D/d) blocks of its kind; clustered
// crossbars restrict which cluster a table may live in (it must be
// reachable from its TSP). The paper embeds an integer-programming solver
// (YALMIP) in rp4bc for a heuristic solution; here the exact mode is a
// branch-and-bound search over cluster assignments (objective: minimize the
// maximum cluster utilization, i.e. balance the pool) with a node budget,
// and the greedy mode is first-fit-decreasing. The full P4 flow runs exact
// mode over the whole design; the incremental rP4 flow greedily places only
// the new tables — one of the reasons t_C diverges in Table 1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mem/block.h"
#include "util/status.h"

namespace ipsa::compiler {

struct AllocRequest {
  std::string table;
  mem::BlockKind kind = mem::BlockKind::kSram;
  uint32_t blocks_needed = 1;
  // Fixed cluster (clustered crossbar: the TSP's cluster), or free choice.
  std::optional<uint32_t> required_cluster;
};

struct ClusterCapacity {
  uint32_t sram_blocks = 0;
  uint32_t tcam_blocks = 0;
};

enum class SolveMode { kExact, kGreedy };

struct AllocPlan {
  bool feasible = false;
  std::map<std::string, uint32_t> table_cluster;
  // Balance metric: max over clusters of used/capacity, in percent.
  uint32_t max_utilization_pct = 0;
  uint64_t nodes_explored = 0;
};

// Solves the packing instance. Exact mode explores up to `node_budget`
// branch-and-bound nodes, then falls back to the best found (or greedy).
Result<AllocPlan> SolveTableAllocation(
    const std::vector<AllocRequest>& requests,
    const std::vector<ClusterCapacity>& clusters, SolveMode mode,
    uint64_t node_budget = 2'000'000);

}  // namespace ipsa::compiler
