#include "compiler/linearize.h"

#include <algorithm>
#include <set>

namespace ipsa::compiler {

namespace {

using arch::ActionDef;
using arch::ActionOp;
using arch::Expr;
using arch::ExprPtr;
using arch::FieldRef;
using arch::MatchRule;
using arch::StageProgram;
using p4lite::HlirApplyNode;
using p4lite::HlirControl;
using p4lite::HlirTable;

ExprPtr Conjoin(const ExprPtr& a, const ExprPtr& b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return Expr::Binary(Expr::Op::kAnd, a, b);
}

const HlirTable* FindTable(const HlirControl& control,
                           std::string_view name) {
  for (const auto& t : control.tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

// Assigns executor tags for a stage from the tables it applies.
Status FillExecutor(const HlirControl& control, StageProgram& stage) {
  uint32_t next_tag = 1;
  std::set<std::string> seen;
  for (const MatchRule& rule : stage.matcher) {
    if (rule.table.empty()) continue;
    const HlirTable* t = FindTable(control, rule.table);
    if (t == nullptr) {
      return NotFound("apply of unknown table '" + rule.table + "'");
    }
    for (const std::string& action : t->actions) {
      if (action == "NoAction" || !seen.insert(action).second) continue;
      stage.executor[next_tag++] = action;
    }
  }
  return OkStatus();
}

// True if every branch of this if/else chain is a single apply (or empty),
// collecting (guard, table) pairs; such a chain fits one stage's matcher.
bool TryFlattenIfChain(const HlirApplyNode& node, const ExprPtr& path,
                       std::vector<MatchRule>& rules) {
  if (node.kind != HlirApplyNode::Kind::kIf) return false;
  // Then-branch must be a single apply.
  if (node.children.size() != 1 ||
      node.children[0].kind != HlirApplyNode::Kind::kApply) {
    return false;
  }
  rules.push_back(MatchRule{Conjoin(path, node.cond), node.children[0].table});
  if (node.else_children.empty()) {
    return true;
  }
  if (node.else_children.size() == 1) {
    const HlirApplyNode& e = node.else_children[0];
    if (e.kind == HlirApplyNode::Kind::kApply) {
      rules.push_back(MatchRule{path, e.table});  // unconditional else
      return true;
    }
    if (e.kind == HlirApplyNode::Kind::kIf) {
      return TryFlattenIfChain(e, path, rules);
    }
  }
  return false;
}

struct Linearizer {
  const HlirControl& control;
  std::string prefix;
  std::vector<StageProgram> stages;
  uint32_t counter = 0;

  // Stage names follow the first applied table (the names runtime scripts
  // reference, e.g. `add_link ipv4_lpm ecmp`); a numeric suffix
  // disambiguates repeated applies of the same table.
  std::string StageName(const std::string& table) {
    std::string name = table;
    for (const auto& s : stages) {
      if (s.name == name) {
        name = table + "_" + std::to_string(counter);
        break;
      }
    }
    ++counter;
    return name;
  }

  Status Emit(const HlirApplyNode& node, const ExprPtr& path) {
    switch (node.kind) {
      case HlirApplyNode::Kind::kSeq:
        for (const auto& child : node.children) {
          IPSA_RETURN_IF_ERROR(Emit(child, path));
        }
        return OkStatus();
      case HlirApplyNode::Kind::kApply: {
        StageProgram stage;
        stage.name = StageName(node.table);
        stage.matcher.push_back(MatchRule{path, node.table});
        IPSA_RETURN_IF_ERROR(FillExecutor(control, stage));
        stages.push_back(std::move(stage));
        return OkStatus();
      }
      case HlirApplyNode::Kind::kIf: {
        std::vector<MatchRule> rules;
        if (TryFlattenIfChain(node, path, rules)) {
          StageProgram stage;
          stage.name = StageName(rules.front().table);
          stage.matcher = std::move(rules);
          IPSA_RETURN_IF_ERROR(FillExecutor(control, stage));
          stages.push_back(std::move(stage));
          return OkStatus();
        }
        // Deep structure: recurse with conjoined path conditions.
        ExprPtr then_path = Conjoin(path, node.cond);
        for (const auto& child : node.children) {
          IPSA_RETURN_IF_ERROR(Emit(child, then_path));
        }
        if (!node.else_children.empty()) {
          ExprPtr else_path =
              Conjoin(path, Expr::Unary(Expr::Op::kNot, node.cond));
          for (const auto& child : node.else_children) {
            IPSA_RETURN_IF_ERROR(Emit(child, else_path));
          }
        }
        return OkStatus();
      }
    }
    return InternalError("bad apply node kind");
  }
};

void CollectOpHeaderDeps(const ActionOp& op, std::vector<std::string>& out) {
  auto from_expr = [&out](const ExprPtr& e) {
    if (e != nullptr) e->CollectHeaderDeps(out);
  };
  if (op.dest.space == FieldRef::Space::kHeader) {
    out.push_back(op.dest.instance);
  }
  if (!op.instance.empty() && op.kind != ActionOp::Kind::kPushHeader) {
    out.push_back(op.instance);
  }
  from_expr(op.value);
  from_expr(op.raw_offset);
  from_expr(op.index);
  from_expr(op.cond);
  from_expr(op.push_size_bytes);
  for (const auto& o : op.then_ops) CollectOpHeaderDeps(o, out);
  for (const auto& o : op.else_ops) CollectOpHeaderDeps(o, out);
}

void CollectOpWrites(const ActionOp& op, std::vector<FieldRef>& out) {
  if (op.kind == ActionOp::Kind::kAssign) out.push_back(op.dest);
  for (const auto& o : op.then_ops) CollectOpWrites(o, out);
  for (const auto& o : op.else_ops) CollectOpWrites(o, out);
}

}  // namespace

Result<std::vector<StageProgram>> LinearizeControl(
    const HlirControl& control, const std::string& prefix) {
  Linearizer lin{control, prefix, {}, 0};
  IPSA_RETURN_IF_ERROR(lin.Emit(control.apply, nullptr));
  return std::move(lin.stages);
}

void CollectActionHeaderDeps(const ActionDef& action,
                             std::vector<std::string>& out) {
  for (const auto& op : action.body) CollectOpHeaderDeps(op, out);
}

void CollectActionWrites(const ActionDef& action,
                         std::vector<FieldRef>& out) {
  for (const auto& op : action.body) CollectOpWrites(op, out);
}

std::vector<std::string> ComputeParseSet(
    const arch::StageProgram& stage,
    const std::vector<arch::TableDecl>& tables,
    const std::vector<arch::ActionDef>& actions) {
  std::vector<std::string> deps;
  for (const auto& rule : stage.matcher) {
    if (rule.guard != nullptr) rule.guard->CollectHeaderDeps(deps);
    for (const auto& t : tables) {
      if (t.spec.name != rule.table) continue;
      for (const auto& f : t.binding.key_fields) {
        if (f.space == FieldRef::Space::kHeader) deps.push_back(f.instance);
      }
    }
  }
  for (const auto& [tag, name] : stage.executor) {
    for (const auto& a : actions) {
      if (a.name == name) CollectActionHeaderDeps(a, deps);
    }
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

std::vector<FieldRef> CollectStageReads(
    const arch::StageProgram& stage,
    const std::vector<arch::TableDecl>& tables) {
  std::vector<FieldRef> reads;
  for (const auto& rule : stage.matcher) {
    if (rule.guard != nullptr) {
      // Every field node in the guard is a read.
      std::vector<std::string> header_deps;
      rule.guard->CollectHeaderDeps(header_deps);
      // Collect field refs via a small walk.
      struct Walker {
        std::vector<FieldRef>* reads;
        void Walk(const ExprPtr& e) {
          if (e == nullptr) return;
          if (e->kind() == Expr::Kind::kField) reads->push_back(e->field());
          Walk(e->lhs());
          Walk(e->rhs());
        }
      } walker{&reads};
      walker.Walk(rule.guard);
    }
    for (const auto& t : tables) {
      if (t.spec.name != rule.table) continue;
      for (const auto& f : t.binding.key_fields) reads.push_back(f);
    }
  }
  return reads;
}

}  // namespace ipsa::compiler
