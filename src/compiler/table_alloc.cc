#include "compiler/table_alloc.h"

#include <algorithm>

namespace ipsa::compiler {

namespace {

struct SearchState {
  const std::vector<AllocRequest>* requests;
  std::vector<ClusterCapacity> remaining;
  std::vector<ClusterCapacity> totals;
  std::vector<uint32_t> assignment;  // per-request cluster
  std::vector<uint32_t> best_assignment;
  uint32_t best_metric = UINT32_MAX;
  uint64_t nodes = 0;
  uint64_t budget = 0;

  uint32_t& Free(uint32_t cluster, mem::BlockKind kind) {
    return kind == mem::BlockKind::kSram ? remaining[cluster].sram_blocks
                                         : remaining[cluster].tcam_blocks;
  }

  uint32_t MetricNow() const {
    uint32_t worst = 0;
    for (size_t c = 0; c < remaining.size(); ++c) {
      auto pct = [](uint32_t total, uint32_t rem) -> uint32_t {
        if (total == 0) return 0;
        return (total - rem) * 100 / total;
      };
      worst = std::max(worst, pct(totals[c].sram_blocks,
                                  remaining[c].sram_blocks));
      worst = std::max(worst, pct(totals[c].tcam_blocks,
                                  remaining[c].tcam_blocks));
    }
    return worst;
  }

  void Search(size_t i) {
    if (nodes >= budget) return;
    ++nodes;
    if (MetricNow() >= best_metric) return;  // bound
    if (i == requests->size()) {
      best_metric = MetricNow();
      best_assignment = assignment;
      return;
    }
    const AllocRequest& req = (*requests)[i];
    for (uint32_t c = 0; c < remaining.size(); ++c) {
      if (req.required_cluster.has_value() && *req.required_cluster != c) {
        continue;
      }
      uint32_t& free_blocks = Free(c, req.kind);
      if (free_blocks < req.blocks_needed) continue;
      free_blocks -= req.blocks_needed;
      assignment[i] = c;
      Search(i + 1);
      free_blocks += req.blocks_needed;
    }
  }
};

Result<AllocPlan> SolveGreedy(const std::vector<AllocRequest>& requests,
                              std::vector<ClusterCapacity> remaining) {
  AllocPlan plan;
  std::vector<ClusterCapacity> totals = remaining;
  // First-fit decreasing: biggest requests first, each into the cluster
  // with the most free space of its kind (or its required cluster).
  std::vector<size_t> order(requests.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return requests[a].blocks_needed > requests[b].blocks_needed;
  });
  for (size_t i : order) {
    const AllocRequest& req = requests[i];
    ++plan.nodes_explored;
    int32_t chosen = -1;
    uint32_t best_free = 0;
    for (uint32_t c = 0; c < remaining.size(); ++c) {
      if (req.required_cluster.has_value() && *req.required_cluster != c) {
        continue;
      }
      uint32_t free_blocks = req.kind == mem::BlockKind::kSram
                                 ? remaining[c].sram_blocks
                                 : remaining[c].tcam_blocks;
      if (free_blocks >= req.blocks_needed && free_blocks >= best_free) {
        best_free = free_blocks;
        chosen = static_cast<int32_t>(c);
      }
    }
    if (chosen < 0) {
      return ResourceExhausted("table '" + req.table +
                               "' does not fit in the memory pool");
    }
    uint32_t c = static_cast<uint32_t>(chosen);
    if (req.kind == mem::BlockKind::kSram) {
      remaining[c].sram_blocks -= req.blocks_needed;
    } else {
      remaining[c].tcam_blocks -= req.blocks_needed;
    }
    plan.table_cluster[req.table] = c;
  }
  plan.feasible = true;
  uint32_t worst = 0;
  for (size_t c = 0; c < remaining.size(); ++c) {
    auto pct = [](uint32_t total, uint32_t rem) -> uint32_t {
      return total == 0 ? 0 : (total - rem) * 100 / total;
    };
    worst = std::max(worst,
                     pct(totals[c].sram_blocks, remaining[c].sram_blocks));
    worst = std::max(worst,
                     pct(totals[c].tcam_blocks, remaining[c].tcam_blocks));
  }
  plan.max_utilization_pct = worst;
  return plan;
}

}  // namespace

Result<AllocPlan> SolveTableAllocation(
    const std::vector<AllocRequest>& requests,
    const std::vector<ClusterCapacity>& clusters, SolveMode mode,
    uint64_t node_budget) {
  if (clusters.empty()) return InvalidArgument("no memory clusters");
  if (mode == SolveMode::kGreedy) {
    return SolveGreedy(requests, clusters);
  }

  // Exact: branch and bound, largest-first ordering for tighter bounds.
  std::vector<AllocRequest> ordered = requests;
  std::sort(ordered.begin(), ordered.end(),
            [](const AllocRequest& a, const AllocRequest& b) {
              return a.blocks_needed > b.blocks_needed;
            });
  SearchState state;
  state.requests = &ordered;
  state.remaining = clusters;
  state.totals = clusters;
  state.assignment.resize(ordered.size(), 0);
  state.budget = node_budget;
  state.Search(0);

  AllocPlan plan;
  plan.nodes_explored = state.nodes;
  if (state.best_metric == UINT32_MAX) {
    // No complete assignment found within budget; fall back to greedy.
    auto greedy = SolveGreedy(requests, clusters);
    if (!greedy.ok()) return greedy.status();
    greedy->nodes_explored += state.nodes;
    return greedy;
  }
  plan.feasible = true;
  plan.max_utilization_pct = state.best_metric;
  for (size_t i = 0; i < ordered.size(); ++i) {
    plan.table_cluster[ordered[i].table] = state.best_assignment[i];
  }
  return plan;
}

}  // namespace ipsa::compiler
