// The PISA back-end compiler: HLIR -> monolithic device design for pbm.
//
// This is the baseline ("P4 design flow") of Table 1: EVERY functional
// change recompiles the whole program through this path and produces a new
// monolithic DesignConfig that the device must fully reload. The backend
// runs the complete pipeline every time: linearize both controls, map
// logical stages onto the fixed physical stages, and run the exact-mode
// table allocator over the entire design (PISA's prorated memory: one
// cluster per physical stage).
#pragma once

#include "arch/design.h"
#include "compiler/table_alloc.h"
#include "p4lite/hlir.h"
#include "util/status.h"

namespace ipsa::compiler {

struct PisaBackendOptions {
  uint32_t physical_ingress_stages = 8;
  uint32_t physical_egress_stages = 8;
  uint32_t sram_blocks_per_stage = 8;
  uint32_t tcam_blocks_per_stage = 2;
  uint32_t sram_width_bits = 256;
  uint32_t sram_depth = 2048;
  uint32_t tcam_width_bits = 256;
  uint32_t tcam_depth = 512;
  SolveMode solver = SolveMode::kExact;
  uint64_t solver_node_budget = 2'000'000;
  // Whole-program placement refinement (models the expensive backend
  // optimization a hardware P4 compiler runs on every full recompile —
  // PHV allocation, table placement, action scheduling). Iterations scale
  // with design size; 0 disables (bmv2-class software backend).
  uint32_t refine_rounds = 400;
};

// Deterministic local-search refinement over a stage->resource placement
// cost; returns the final cost (exposed for ablation benches).
uint64_t RefinePlacement(const arch::DesignConfig& design,
                         uint32_t rounds);

struct PisaBackendResult {
  arch::DesignConfig design;
  AllocPlan alloc;  // table -> physical-stage cluster
};

Result<PisaBackendResult> RunPisaBackend(const p4lite::Hlir& hlir,
                                         const PisaBackendOptions& options);

}  // namespace ipsa::compiler
