#include "compiler/layout.h"

namespace ipsa::compiler {

namespace {

LayoutResult BuildResult(const std::vector<LayoutGroup>& groups,
                         const std::vector<uint32_t>& slots,
                         uint64_t work_units) {
  LayoutResult result;
  result.work_units = work_units;
  for (size_t i = 0; i < groups.size(); ++i) {
    ipbm::TspAssignment assign;
    assign.tsp_id = slots[i];
    assign.role = groups[i].role;
    assign.stage_names = groups[i].stages;
    if (groups[i].old_tsp < 0 ||
        static_cast<uint32_t>(groups[i].old_tsp) != slots[i]) {
      ++result.relocations;
    }
    result.assignments.push_back(std::move(assign));
  }
  return result;
}

Result<LayoutResult> PlaceGreedy(const std::vector<LayoutGroup>& groups,
                                 uint32_t tsp_count) {
  std::vector<uint32_t> slots(groups.size(), 0);
  int64_t prev = -1;
  uint64_t work = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    ++work;
    int64_t candidate;
    if (groups[i].old_tsp > prev) {
      candidate = groups[i].old_tsp;  // stay put
    } else {
      candidate = prev + 1;  // first free slot to the right
    }
    if (candidate >= static_cast<int64_t>(tsp_count)) {
      return ResourceExhausted("layout: not enough TSPs for all groups");
    }
    slots[i] = static_cast<uint32_t>(candidate);
    prev = candidate;
  }
  return BuildResult(groups, slots, work);
}

Result<LayoutResult> PlaceDp(const std::vector<LayoutGroup>& groups,
                             uint32_t tsp_count) {
  size_t n = groups.size();
  if (n > tsp_count) {
    return ResourceExhausted("layout: not enough TSPs for all groups");
  }
  // dp[i][j]: min relocations placing the first i groups within the first j
  // TSP slots. Placement of group i on slot j costs 0 iff old_tsp == j-1.
  constexpr uint32_t kInf = UINT32_MAX / 2;
  std::vector<std::vector<uint32_t>> dp(n + 1,
                                        std::vector<uint32_t>(tsp_count + 1,
                                                              kInf));
  std::vector<std::vector<uint8_t>> placed(
      n + 1, std::vector<uint8_t>(tsp_count + 1, 0));
  for (uint32_t j = 0; j <= tsp_count; ++j) dp[0][j] = 0;
  uint64_t work = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (uint32_t j = 1; j <= tsp_count; ++j) {
      ++work;
      uint32_t skip = dp[i][j - 1];
      uint32_t cost =
          (groups[i - 1].old_tsp >= 0 &&
           static_cast<uint32_t>(groups[i - 1].old_tsp) == j - 1)
              ? 0
              : 1;
      uint32_t take = dp[i - 1][j - 1] == kInf ? kInf
                                               : dp[i - 1][j - 1] + cost;
      if (take < skip) {
        dp[i][j] = take;
        placed[i][j] = 1;
      } else {
        dp[i][j] = skip;
      }
    }
  }
  if (dp[n][tsp_count] >= kInf) {
    return ResourceExhausted("layout: DP found no feasible placement");
  }
  // Reconstruct.
  std::vector<uint32_t> slots(n, 0);
  size_t i = n;
  uint32_t j = tsp_count;
  while (i > 0) {
    if (placed[i][j]) {
      slots[i - 1] = j - 1;
      --i;
      --j;
    } else {
      --j;
    }
  }
  return BuildResult(groups, slots, work);
}

}  // namespace

Result<LayoutResult> PlaceGroups(const std::vector<LayoutGroup>& groups,
                                 uint32_t tsp_count, LayoutMode mode) {
  // Validate role monotonicity (ingress strictly before egress).
  bool seen_egress = false;
  for (const auto& g : groups) {
    if (g.role == ipbm::TspRole::kEgress) {
      seen_egress = true;
    } else if (seen_egress) {
      return InvalidArgument("layout: ingress group after an egress group");
    }
  }
  return mode == LayoutMode::kGreedy ? PlaceGreedy(groups, tsp_count)
                                     : PlaceDp(groups, tsp_count);
}

}  // namespace ipsa::compiler
