// Sampled packet-trace ring buffer.
//
// Holds the last N ProcessTraces that matched the sampling predicate
// (1-in-N, optional ingress-port filter, optional applied-table filter).
// Bounded: when full, the oldest record is evicted and counted as dropped.
// Drainable without stopping the device — the daemon's GetTraces RPC pops
// records while packets keep flowing.
//
// Thread model: the sampling decision uses one relaxed atomic counter (only
// touched when sampling is enabled), and commits serialize on a mutex —
// contention is 1-in-N by construction, so the packet path stays cheap.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/device_stats.h"

namespace ipsa::telemetry {

struct TraceConfig {
  uint32_t sample_every = 0;  // 0 = tracing off; 1 = every packet; N = 1-in-N
  int32_t port = -1;          // -1 = any ingress port
  std::string table;          // "" = any; else only traces that applied it
  uint32_t capacity = 256;    // ring depth
};

struct TraceRecord {
  uint64_t seq = 0;           // monotonically increasing capture id
  uint64_t config_epoch = 0;  // device epoch when the packet was processed
  uint32_t in_port = 0;
  ProcessResult result;
  ProcessTrace trace;
};

class TraceRing {
 public:
  void Configure(const TraceConfig& config);
  const TraceConfig& config() const { return config_; }

  // Cheap sampling decision, callable from any worker. False when tracing
  // is off, the port filter mismatches, or this packet loses the 1-in-N.
  bool ShouldTrace(uint32_t in_port) {
    uint32_t every = config_.sample_every;
    if (every == 0) return false;
    if (config_.port >= 0 && static_cast<uint32_t>(config_.port) != in_port) {
      return false;
    }
    return sample_counter_.fetch_add(1, std::memory_order_relaxed) % every == 0;
  }

  // Applies the table predicate and stores the record (evicting the oldest
  // when full). Returns true when the record was kept.
  bool Commit(TraceRecord record);

  // Pops up to `max` records, oldest first (0 = all pending).
  std::vector<TraceRecord> Drain(uint32_t max = 0);

  uint32_t pending() const;
  uint64_t captured() const { return captured_; }
  uint64_t dropped() const { return dropped_; }

  void Reset();

 private:
  TraceConfig config_;
  std::atomic<uint64_t> sample_counter_{0};

  mutable std::mutex mutex_;
  std::deque<TraceRecord> ring_;
  uint64_t next_seq_ = 1;
  uint64_t captured_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace ipsa::telemetry
