#include "telemetry/collector.h"

namespace ipsa::telemetry {

void Collector::Configure(const TelemetryConfig& config, uint32_t port_count) {
  config_ = config;
  port_count_ = port_count;
  master_.SizeTo(port_count_, stage_infos_.size());
  ring_.Configure(config_.trace);
}

void Collector::SetStages(std::vector<StageInfo> stages) {
  bool same = stages.size() == stage_infos_.size();
  if (same) {
    for (size_t i = 0; i < stages.size(); ++i) {
      if (stages[i].unit != stage_infos_[i].unit ||
          stages[i].name != stage_infos_[i].name) {
        same = false;
        break;
      }
    }
  }
  stage_infos_ = std::move(stages);
  if (!same) {
    // Layout changed: positional counters no longer mean the same thing.
    master_.stages.assign(stage_infos_.size(), StageMetrics{});
  }
}

std::vector<MetricsShard> Collector::MakeWorkerShards(uint32_t workers) const {
  std::vector<MetricsShard> shards(workers);
  for (MetricsShard& s : shards) {
    s.SizeTo(master_.ports.size(), master_.stages.size());
  }
  return shards;
}

void Collector::MergeWorkerShards(std::span<MetricsShard> shards) {
  for (const MetricsShard& s : shards) master_.MergeFrom(s);
}

void Collector::OnUpdateWindow(uint64_t config_epoch, double wall_micros) {
  if (!config_.enabled) return;
  ++updates_;
  last_update_epoch_ = config_epoch;
  last_update_ms_ = wall_micros / 1000.0;
  update_window_us_.Observe(static_cast<uint64_t>(wall_micros));
}

void Collector::OnDrainWindow(uint64_t drain_cycles) {
  if (!config_.enabled) return;
  drain_window_cycles_.Observe(drain_cycles);
}

void Collector::CommitTrace(uint64_t config_epoch, uint32_t in_port,
                            const ProcessResult& result, ProcessTrace trace) {
  TraceRecord record;
  record.config_epoch = config_epoch;
  record.in_port = in_port;
  record.result = result;
  record.trace = std::move(trace);
  ring_.Commit(std::move(record));
}

MetricsSnapshot Collector::Snapshot(uint64_t config_epoch,
                                    const DeviceStats& device) {
  MetricsSnapshot snap;
  snap.enabled = config_.enabled;
  snap.seq = ++snapshot_seq_;
  snap.config_epoch = config_epoch;
  snap.device = device;
  for (uint32_t p = 0; p < master_.ports.size(); ++p) {
    if (master_.ports[p].packets_in == 0) continue;  // quiet ports stay out
    snap.ports.push_back(PortRow{p, master_.ports[p]});
  }
  for (size_t i = 0; i < master_.stages.size(); ++i) {
    const StageInfo info = i < stage_infos_.size() ? stage_infos_[i]
                                                   : StageInfo{};
    if (info.name.empty() && master_.stages[i].executions == 0) continue;
    snap.stages.push_back(StageRow{info.unit, info.name, master_.stages[i]});
  }
  snap.updates = updates_;
  snap.last_update_epoch = last_update_epoch_;
  snap.last_update_ms = last_update_ms_;
  snap.update_window_us = update_window_us_;
  snap.drain_window_cycles = drain_window_cycles_;
  snap.traces_captured = ring_.captured();
  snap.traces_dropped = ring_.dropped();
  snap.traces_pending = ring_.pending();
  return snap;
}

void Collector::Reset() {
  master_.Reset();
  updates_ = 0;
  last_update_epoch_ = 0;
  last_update_ms_ = 0;
  update_window_us_.Reset();
  drain_window_cycles_.Reset();
  ring_.Reset();
}

}  // namespace ipsa::telemetry
