// Counters and trace types shared by both behavioral devices: config-bus
// traffic (drives load-time accounting), packet/drop counts, cycle totals,
// and the per-packet execution trace.
//
// These used to live in src/pisa, but nothing here is PISA-specific — the
// IPSA device, the daemon backends, and the parallel executor all consume
// them, so they live in the shared telemetry layer. src/pisa/device_stats.h
// remains as an aliasing shim for existing ipsa::pisa:: spellings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ipsa::telemetry {

struct DeviceStats {
  // Config plane.
  uint64_t config_words_written = 0;
  uint64_t full_loads = 0;        // monolithic design loads (PISA)
  uint64_t template_writes = 0;   // incremental template writes (IPSA)
  uint64_t table_ops = 0;         // runtime entry add/del

  // Data plane.
  uint64_t packets_in = 0;
  uint64_t packets_out = 0;
  uint64_t packets_dropped = 0;
  uint64_t packets_marked = 0;
  uint64_t total_cycles = 0;

  void Reset() { *this = DeviceStats{}; }

  // Accumulates another shard's counters (parallel workers keep per-worker
  // stats and merge them after the join).
  void MergeFrom(const DeviceStats& o) {
    config_words_written += o.config_words_written;
    full_loads += o.full_loads;
    template_writes += o.template_writes;
    table_ops += o.table_ops;
    packets_in += o.packets_in;
    packets_out += o.packets_out;
    packets_dropped += o.packets_dropped;
    packets_marked += o.packets_marked;
    total_cycles += o.total_cycles;
  }
};

// One stage execution in a packet trace.
struct TraceStep {
  uint32_t unit = 0;          // physical stage index / TSP id
  std::string stage;          // logical stage name
  std::string table;          // applied table ("" if the guard skipped it)
  bool hit = false;
  std::string action;         // executed action
  uint64_t parse_bytes = 0;   // bytes extracted just-in-time (IPSA)
};

// Per-packet execution trace (filled when a trace sink is passed to
// Process) — the observability base for the paper's "dynamic network
// visibility" motivation.
struct ProcessTrace {
  std::vector<std::string> parsed_headers;  // final PHV contents
  std::vector<TraceStep> steps;
};

// Per-packet processing outcome, shared by both behavioral devices.
struct ProcessResult {
  bool dropped = false;
  bool marked = false;
  uint32_t egress_port = 0;
  uint64_t cycles = 0;
  uint32_t headers_parsed = 0;
  // Pipeline initiation interval for this packet (arch/ii_model.h);
  // throughput = clock / E[pipeline_ii].
  double pipeline_ii = 1.0;
};

}  // namespace ipsa::telemetry
