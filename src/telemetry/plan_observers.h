// RunPlan observer policies shared by both behavioral devices.
//
// arch::RunPlan (arch/pipeline_plan.h) is templated over an Observer so the
// telemetry and trace hooks specialize out of the packet loop when unused.
// The arch layer cannot depend on telemetry, so the concrete observers live
// here: the devices pick one per batch —
//
//   PlanNullObserver   no telemetry, no trace (the hot path)
//   PlanShardObserver  per-stage counters into a MetricsShard
//   PlanTraceObserver  counters + full TraceStep recording (names filled)
#pragma once

#include "arch/pipeline_plan.h"
#include "telemetry/collector.h"
#include "telemetry/device_stats.h"

namespace ipsa::telemetry {

struct PlanShardObserver {
  static constexpr bool kFillNames = false;
  MetricsShard* shard = nullptr;

  void OnProgram(const arch::PlanGroup&, const arch::PlanProgram& program,
                 const arch::StageRunStats& stats) const {
    shard->OnStage(program.slot, stats.table_applied, stats.hit);
  }
};

struct PlanTraceObserver {
  static constexpr bool kFillNames = true;
  MetricsShard* shard = nullptr;  // may be null while tracing
  ProcessTrace* trace = nullptr;

  void OnProgram(const arch::PlanGroup& group,
                 const arch::PlanProgram& program,
                 const arch::StageRunStats& stats) const {
    if (shard != nullptr) {
      shard->OnStage(program.slot, stats.table_applied, stats.hit);
    }
    trace->steps.push_back(TraceStep{.unit = group.unit,
                                     .stage = program.source->name,
                                     .table = stats.applied_table,
                                     .hit = stats.hit,
                                     .action = stats.executed_action,
                                     .parse_bytes = stats.parse_bytes});
  }
};

}  // namespace ipsa::telemetry
