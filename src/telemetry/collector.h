// The per-device telemetry front door.
//
// A behavioral device owns one Collector. When disabled (the default), the
// only cost on the packet path is `shard() == nullptr` — one branch. When
// enabled, the device:
//   * passes shard() (or a per-worker shard from MakeWorkerShards) into its
//     ProcessCore so counters/histograms accumulate without atomics;
//   * calls SetStages() from its EnsureCompiled so stage slots map to
//     logical stage names (an unchanged layout keeps its counters across
//     recompiles; a changed layout starts fresh — the epoch tag in the
//     snapshot marks the transition);
//   * brackets reconfigurations with OnUpdateWindow / OnDrainWindow so a
//     scrape across an in-situ update shows the paper's headline numbers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace_ring.h"

namespace ipsa::telemetry {

struct TelemetryConfig {
  bool enabled = false;
  TraceConfig trace;  // sampling is independent of counter collection
};

// One stage slot in the device's current layout.
struct StageInfo {
  uint32_t unit = 0;  // physical stage index / TSP id
  std::string name;   // logical stage name ("" = empty slot)
};

class Collector {
 public:
  void Configure(const TelemetryConfig& config, uint32_t port_count);
  bool enabled() const { return config_.enabled; }
  const TelemetryConfig& config() const { return config_; }

  // Null when disabled: the single-branch gate for the packet path.
  MetricsShard* shard() { return config_.enabled ? &master_ : nullptr; }

  // Installs the current stage layout. Counters survive when the layout is
  // unchanged (same units and names); otherwise per-stage counters restart.
  void SetStages(std::vector<StageInfo> stages);

  // Worker shards for a parallel drain, sized like the master.
  std::vector<MetricsShard> MakeWorkerShards(uint32_t workers) const;
  void MergeWorkerShards(std::span<MetricsShard> shards);

  // Reconfiguration windows (recorded only when enabled).
  void OnUpdateWindow(uint64_t config_epoch, double wall_micros);
  void OnDrainWindow(uint64_t drain_cycles);

  // Sampled tracing.
  bool ShouldTrace(uint32_t in_port) {
    return config_.enabled && ring_.ShouldTrace(in_port);
  }
  void CommitTrace(uint64_t config_epoch, uint32_t in_port,
                   const ProcessResult& result, ProcessTrace trace);
  std::vector<TraceRecord> DrainTraces(uint32_t max = 0) {
    return ring_.Drain(max);
  }

  // Epoch-tagged copy of everything except per-table rows (the owner fills
  // those from its table catalog, which keeps this layer table-agnostic).
  MetricsSnapshot Snapshot(uint64_t config_epoch, const DeviceStats& device);

  // Clears counters, histograms, windows, and the trace ring. The
  // configuration (enabled flag, sampling predicate) is preserved.
  void Reset();

 private:
  TelemetryConfig config_;
  uint32_t port_count_ = 0;
  MetricsShard master_;
  std::vector<StageInfo> stage_infos_;

  uint64_t snapshot_seq_ = 0;
  uint64_t updates_ = 0;
  uint64_t last_update_epoch_ = 0;
  double last_update_ms_ = 0;
  Histogram update_window_us_;
  Histogram drain_window_cycles_;

  TraceRing ring_;
};

}  // namespace ipsa::telemetry
