#include "telemetry/metrics.h"

#include <bit>

namespace ipsa::telemetry {

namespace {

// Bucket index for a value: smallest i with value <= 2^i, saturating into
// the +inf bucket. A bit-width computation, no loop.
uint32_t BucketIndex(uint64_t value) {
  if (value <= 1) return 0;
  uint32_t idx = static_cast<uint32_t>(std::bit_width(value - 1));
  return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
}

}  // namespace

uint64_t Histogram::UpperBound(uint32_t i) {
  if (i + 1 >= kHistogramBuckets) {
    return std::numeric_limits<uint64_t>::max();
  }
  return uint64_t{1} << i;
}

void Histogram::Observe(uint64_t value) {
  ++buckets[BucketIndex(value)];
  ++count;
  sum += value;
  if (value < min) min = value;
  if (value > max) max = value;
}

void Histogram::MergeFrom(const Histogram& o) {
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
  if (o.min < min) min = o.min;
  if (o.max > max) max = o.max;
}

uint64_t Histogram::Percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation, 1-based.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      uint64_t bound = UpperBound(i);
      return bound < max ? bound : max;
    }
  }
  return max;
}

void PortMetrics::MergeFrom(const PortMetrics& o) {
  packets_in += o.packets_in;
  packets_out += o.packets_out;
  packets_dropped += o.packets_dropped;
  packets_marked += o.packets_marked;
  cycles.MergeFrom(o.cycles);
}

void MetricsShard::SizeTo(size_t port_count, size_t stage_count) {
  ports.assign(port_count, PortMetrics{});
  stages.assign(stage_count, StageMetrics{});
}

void MetricsShard::MergeFrom(const MetricsShard& o) {
  if (ports.size() < o.ports.size()) ports.resize(o.ports.size());
  if (stages.size() < o.stages.size()) stages.resize(o.stages.size());
  for (size_t i = 0; i < o.ports.size(); ++i) ports[i].MergeFrom(o.ports[i]);
  for (size_t i = 0; i < o.stages.size(); ++i) {
    stages[i].MergeFrom(o.stages[i]);
  }
}

void MetricsShard::Reset() {
  for (PortMetrics& p : ports) p.Reset();
  for (StageMetrics& s : stages) s.Reset();
}

bool MetricsShard::operator==(const MetricsShard& o) const {
  return ports == o.ports && stages == o.stages;
}

}  // namespace ipsa::telemetry
