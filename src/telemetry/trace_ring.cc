#include "telemetry/trace_ring.h"

namespace ipsa::telemetry {

void TraceRing::Configure(const TraceConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  if (config_.capacity == 0) config_.capacity = 1;
  while (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  sample_counter_.store(0, std::memory_order_relaxed);
}

bool TraceRing::Commit(TraceRecord record) {
  if (!config_.table.empty()) {
    bool matched = false;
    for (const TraceStep& step : record.trace.steps) {
      if (step.table == config_.table) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  record.seq = next_seq_++;
  if (ring_.size() >= config_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(record));
  ++captured_;
  return true;
}

std::vector<TraceRecord> TraceRing::Drain(uint32_t max) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t take = max == 0 ? ring_.size() : std::min<size_t>(max, ring_.size());
  std::vector<TraceRecord> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(std::move(ring_.front()));
    ring_.pop_front();
  }
  return out;
}

uint32_t TraceRing::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<uint32_t>(ring_.size());
}

void TraceRing::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_seq_ = 1;
  captured_ = 0;
  dropped_ = 0;
  sample_counter_.store(0, std::memory_order_relaxed);
}

}  // namespace ipsa::telemetry
