#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace ipsa::telemetry {

namespace {

void Append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<size_t>(static_cast<size_t>(n),
                                              sizeof(buf) - 1));
}

// Escapes a Prometheus label value (backslash, quote, newline).
std::string EscapeLabel(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void RenderHistogram(std::string& out, const std::string& name,
                     const std::string& labels, const Histogram& h) {
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += h.buckets[i];
    if (h.buckets[i] == 0 && i + 1 < kHistogramBuckets) continue;
    if (i + 1 == kHistogramBuckets) {
      Append(out, "%s_bucket{%sle=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
             labels.c_str(), cumulative);
    } else {
      Append(out, "%s_bucket{%sle=\"%" PRIu64 "\"} %" PRIu64 "\n",
             name.c_str(), labels.c_str(), Histogram::UpperBound(i),
             cumulative);
    }
  }
  Append(out, "%s_sum{%s} %" PRIu64 "\n", name.c_str(),
         labels.substr(0, labels.size() - 1).c_str(), h.sum);
  Append(out, "%s_count{%s} %" PRIu64 "\n", name.c_str(),
         labels.substr(0, labels.size() - 1).c_str(), h.count);
}

util::Json HistogramToJson(const Histogram& h) {
  util::Json j = util::Json::Object();
  j["count"] = h.count;
  j["sum"] = h.sum;
  j["min"] = h.empty() ? uint64_t{0} : h.min;
  j["max"] = h.max;
  j["mean"] = h.Mean();
  j["p50"] = h.Percentile(0.50);
  j["p90"] = h.Percentile(0.90);
  j["p99"] = h.Percentile(0.99);
  util::Json buckets = util::Json::Array();
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    util::Json b = util::Json::Object();
    if (i + 1 == kHistogramBuckets) {
      b["le"] = "+Inf";
    } else {
      b["le"] = Histogram::UpperBound(i);
    }
    b["n"] = h.buckets[i];
    buckets.push_back(std::move(b));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snap,
                             std::string_view arch) {
  std::string a = EscapeLabel(arch);
  std::string out;
  out.reserve(4096);

  Append(out, "# HELP ipsa_telemetry_enabled 1 when collection is on\n");
  Append(out, "# TYPE ipsa_telemetry_enabled gauge\n");
  Append(out, "ipsa_telemetry_enabled{arch=\"%s\"} %d\n", a.c_str(),
         snap.enabled ? 1 : 0);
  Append(out, "# HELP ipsa_config_epoch device configuration epoch\n");
  Append(out, "# TYPE ipsa_config_epoch gauge\n");
  Append(out, "ipsa_config_epoch{arch=\"%s\"} %" PRIu64 "\n", a.c_str(),
         snap.config_epoch);
  Append(out, "# HELP ipsa_snapshot_seq scrape sequence number\n");
  Append(out, "# TYPE ipsa_snapshot_seq counter\n");
  Append(out, "ipsa_snapshot_seq{arch=\"%s\"} %" PRIu64 "\n", a.c_str(),
         snap.seq);

  // Aggregate device counters.
  struct {
    const char* name;
    uint64_t value;
  } device[] = {
      {"ipsa_device_packets_in_total", snap.device.packets_in},
      {"ipsa_device_packets_out_total", snap.device.packets_out},
      {"ipsa_device_packets_dropped_total", snap.device.packets_dropped},
      {"ipsa_device_packets_marked_total", snap.device.packets_marked},
      {"ipsa_device_cycles_total", snap.device.total_cycles},
      {"ipsa_config_words_written_total", snap.device.config_words_written},
      {"ipsa_full_loads_total", snap.device.full_loads},
      {"ipsa_template_writes_total", snap.device.template_writes},
      {"ipsa_table_ops_total", snap.device.table_ops},
  };
  for (const auto& d : device) {
    Append(out, "# TYPE %s counter\n", d.name);
    Append(out, "%s{arch=\"%s\"} %" PRIu64 "\n", d.name, a.c_str(), d.value);
  }

  // Per-port counters + latency histograms.
  Append(out, "# TYPE ipsa_port_packets_in_total counter\n");
  Append(out, "# TYPE ipsa_port_packets_out_total counter\n");
  Append(out, "# TYPE ipsa_port_packets_dropped_total counter\n");
  Append(out, "# TYPE ipsa_packet_cycles histogram\n");
  for (const PortRow& row : snap.ports) {
    std::string labels = "arch=\"" + a + "\",port=\"" +
                         std::to_string(row.port) + "\"";
    Append(out, "ipsa_port_packets_in_total{%s} %" PRIu64 "\n", labels.c_str(),
           row.metrics.packets_in);
    Append(out, "ipsa_port_packets_out_total{%s} %" PRIu64 "\n",
           labels.c_str(), row.metrics.packets_out);
    Append(out, "ipsa_port_packets_dropped_total{%s} %" PRIu64 "\n",
           labels.c_str(), row.metrics.packets_dropped);
    RenderHistogram(out, "ipsa_packet_cycles", labels + ",",
                    row.metrics.cycles);
  }

  // Per-stage counters.
  Append(out, "# TYPE ipsa_stage_executions_total counter\n");
  Append(out, "# TYPE ipsa_stage_hits_total counter\n");
  Append(out, "# TYPE ipsa_stage_misses_total counter\n");
  for (const StageRow& row : snap.stages) {
    std::string labels = "arch=\"" + a + "\",unit=\"" +
                         std::to_string(row.unit) + "\",stage=\"" +
                         EscapeLabel(row.stage) + "\"";
    Append(out, "ipsa_stage_executions_total{%s} %" PRIu64 "\n",
           labels.c_str(), row.metrics.executions);
    Append(out, "ipsa_stage_hits_total{%s} %" PRIu64 "\n", labels.c_str(),
           row.metrics.hits);
    Append(out, "ipsa_stage_misses_total{%s} %" PRIu64 "\n", labels.c_str(),
           row.metrics.misses);
  }

  // Per-table counters.
  Append(out, "# TYPE ipsa_table_entries gauge\n");
  Append(out, "# TYPE ipsa_table_hits_total counter\n");
  Append(out, "# TYPE ipsa_table_misses_total counter\n");
  for (const TableRow& row : snap.tables) {
    std::string labels = "arch=\"" + a + "\",table=\"" +
                         EscapeLabel(row.table) + "\"";
    Append(out, "ipsa_table_entries{%s} %u\n", labels.c_str(), row.entries);
    Append(out, "ipsa_table_size{%s} %u\n", labels.c_str(), row.size);
    Append(out, "ipsa_table_hits_total{%s} %" PRIu64 "\n", labels.c_str(),
           row.hits);
    Append(out, "ipsa_table_misses_total{%s} %" PRIu64 "\n", labels.c_str(),
           row.misses);
  }

  // In-situ update windows.
  Append(out, "# TYPE ipsa_updates_total counter\n");
  Append(out, "ipsa_updates_total{arch=\"%s\"} %" PRIu64 "\n", a.c_str(),
         snap.updates);
  Append(out, "# TYPE ipsa_last_update_epoch gauge\n");
  Append(out, "ipsa_last_update_epoch{arch=\"%s\"} %" PRIu64 "\n", a.c_str(),
         snap.last_update_epoch);
  Append(out, "# TYPE ipsa_update_window_us histogram\n");
  RenderHistogram(out, "ipsa_update_window_us", "arch=\"" + a + "\",",
                  snap.update_window_us);
  Append(out, "# TYPE ipsa_drain_window_cycles histogram\n");
  RenderHistogram(out, "ipsa_drain_window_cycles", "arch=\"" + a + "\",",
                  snap.drain_window_cycles);

  // Trace ring occupancy.
  Append(out, "# TYPE ipsa_traces_captured_total counter\n");
  Append(out, "ipsa_traces_captured_total{arch=\"%s\"} %" PRIu64 "\n",
         a.c_str(), snap.traces_captured);
  Append(out, "# TYPE ipsa_traces_dropped_total counter\n");
  Append(out, "ipsa_traces_dropped_total{arch=\"%s\"} %" PRIu64 "\n",
         a.c_str(), snap.traces_dropped);
  Append(out, "# TYPE ipsa_traces_pending gauge\n");
  Append(out, "ipsa_traces_pending{arch=\"%s\"} %u\n", a.c_str(),
         snap.traces_pending);
  return out;
}

util::Json SnapshotToJson(const MetricsSnapshot& snap, std::string_view arch) {
  util::Json j = util::Json::Object();
  j["arch"] = std::string(arch);
  j["enabled"] = snap.enabled;
  j["seq"] = snap.seq;
  j["config_epoch"] = snap.config_epoch;

  util::Json device = util::Json::Object();
  device["packets_in"] = snap.device.packets_in;
  device["packets_out"] = snap.device.packets_out;
  device["packets_dropped"] = snap.device.packets_dropped;
  device["packets_marked"] = snap.device.packets_marked;
  device["total_cycles"] = snap.device.total_cycles;
  device["config_words_written"] = snap.device.config_words_written;
  device["full_loads"] = snap.device.full_loads;
  device["template_writes"] = snap.device.template_writes;
  device["table_ops"] = snap.device.table_ops;
  j["device"] = std::move(device);

  util::Json ports = util::Json::Array();
  for (const PortRow& row : snap.ports) {
    util::Json p = util::Json::Object();
    p["port"] = row.port;
    p["packets_in"] = row.metrics.packets_in;
    p["packets_out"] = row.metrics.packets_out;
    p["packets_dropped"] = row.metrics.packets_dropped;
    p["packets_marked"] = row.metrics.packets_marked;
    p["cycles"] = HistogramToJson(row.metrics.cycles);
    ports.push_back(std::move(p));
  }
  j["ports"] = std::move(ports);

  util::Json stages = util::Json::Array();
  for (const StageRow& row : snap.stages) {
    util::Json s = util::Json::Object();
    s["unit"] = row.unit;
    s["stage"] = row.stage;
    s["executions"] = row.metrics.executions;
    s["hits"] = row.metrics.hits;
    s["misses"] = row.metrics.misses;
    stages.push_back(std::move(s));
  }
  j["stages"] = std::move(stages);

  util::Json tables = util::Json::Array();
  for (const TableRow& row : snap.tables) {
    util::Json t = util::Json::Object();
    t["table"] = row.table;
    t["match_kind"] = row.match_kind;
    t["entries"] = row.entries;
    t["size"] = row.size;
    t["hits"] = row.hits;
    t["misses"] = row.misses;
    tables.push_back(std::move(t));
  }
  j["tables"] = std::move(tables);

  util::Json updates = util::Json::Object();
  updates["count"] = snap.updates;
  updates["last_epoch"] = snap.last_update_epoch;
  updates["last_ms"] = snap.last_update_ms;
  updates["window_us"] = HistogramToJson(snap.update_window_us);
  updates["drain_cycles"] = HistogramToJson(snap.drain_window_cycles);
  j["updates"] = std::move(updates);

  util::Json traces = util::Json::Object();
  traces["captured"] = snap.traces_captured;
  traces["dropped"] = snap.traces_dropped;
  traces["pending"] = snap.traces_pending;
  j["traces"] = std::move(traces);
  return j;
}

util::Json TraceRecordToJson(const TraceRecord& record) {
  util::Json j = util::Json::Object();
  j["seq"] = record.seq;
  j["config_epoch"] = record.config_epoch;
  j["in_port"] = record.in_port;
  j["egress_port"] = record.result.egress_port;
  j["dropped"] = record.result.dropped;
  j["marked"] = record.result.marked;
  j["cycles"] = record.result.cycles;
  util::Json headers = util::Json::Array();
  for (const std::string& h : record.trace.parsed_headers) {
    headers.push_back(h);
  }
  j["parsed_headers"] = std::move(headers);
  util::Json steps = util::Json::Array();
  for (const TraceStep& step : record.trace.steps) {
    util::Json s = util::Json::Object();
    s["unit"] = step.unit;
    s["stage"] = step.stage;
    s["table"] = step.table;
    s["hit"] = step.hit;
    s["action"] = step.action;
    s["parse_bytes"] = step.parse_bytes;
    steps.push_back(std::move(s));
  }
  j["steps"] = std::move(steps);
  return j;
}

}  // namespace ipsa::telemetry
