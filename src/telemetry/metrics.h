// Low-overhead metrics registry for the behavioral devices.
//
// Dimensions follow the paper's observability use cases (C2/C3: on-demand
// INT and flow tracking): per-port packet counters and latency histograms,
// per-logical-stage execution/hit counters, per-table hit/miss/occupancy
// (snapshotted from the table catalog's own counters), plus the two windows
// that make an in-situ update visible — the drain window (cycles) and the
// template-write / full-load latency (microseconds).
//
// Design rules:
//  * No atomics on the packet path. Counters live in plain MetricsShard
//    structs; the parallel executors give every worker its own shard and
//    merge after the join, exactly like DeviceStats. A serial run and a
//    sharded run therefore produce bit-identical registries.
//  * Disabled telemetry costs one pointer test per packet: the devices pass
//    a null shard and skip everything.
//  * Histograms use fixed power-of-two buckets so Observe() is a bit-width
//    computation and merge is elementwise addition (shard-mergeable).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "telemetry/device_stats.h"

namespace ipsa::telemetry {

// Bucket i counts observations with value <= 2^i; the last bucket is +inf.
inline constexpr uint32_t kHistogramBuckets = 28;

struct Histogram {
  std::array<uint64_t, kHistogramBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = std::numeric_limits<uint64_t>::max();
  uint64_t max = 0;

  void Observe(uint64_t value);
  void MergeFrom(const Histogram& o);
  void Reset() { *this = Histogram{}; }

  bool empty() const { return count == 0; }
  double Mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
  // Upper bound of the bucket holding the q-quantile observation (q in
  // [0,1]), clamped to the observed max. Deterministic: no interpolation.
  uint64_t Percentile(double q) const;

  // Inclusive upper bound of bucket i (2^i; last bucket = uint64 max).
  static uint64_t UpperBound(uint32_t i);
};

// Per-ingress-port counters + end-to-end pipeline latency histogram (in
// device cycles, so serial and parallel runs agree exactly).
struct PortMetrics {
  uint64_t packets_in = 0;
  uint64_t packets_out = 0;
  uint64_t packets_dropped = 0;
  uint64_t packets_marked = 0;
  Histogram cycles;

  void MergeFrom(const PortMetrics& o);
  void Reset() { *this = PortMetrics{}; }
};

// Per-logical-stage counters. `executions` counts packets that traversed
// the stage; hits/misses split the subset that applied a table.
struct StageMetrics {
  uint64_t executions = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;

  void MergeFrom(const StageMetrics& o) {
    executions += o.executions;
    hits += o.hits;
    misses += o.misses;
  }
  void Reset() { *this = StageMetrics{}; }
};

// One worker's accumulator. Plain data, no locks — never shared between
// threads while hot.
struct MetricsShard {
  std::vector<PortMetrics> ports;
  std::vector<StageMetrics> stages;

  void SizeTo(size_t port_count, size_t stage_count);
  void MergeFrom(const MetricsShard& o);
  void Reset();
  bool operator==(const MetricsShard& o) const;

  // Hot-path hooks. Out-of-range indices are counted nowhere (an injection
  // port outside the device's port set, a stage slot from a stale layout).
  void OnResult(uint32_t in_port, const ProcessResult& r) {
    if (in_port >= ports.size()) return;
    PortMetrics& p = ports[in_port];
    ++p.packets_in;
    if (r.dropped) {
      ++p.packets_dropped;
    } else {
      ++p.packets_out;
    }
    if (r.marked) ++p.packets_marked;
    p.cycles.Observe(r.cycles);
  }
  void OnStage(uint32_t slot, bool table_applied, bool hit) {
    if (slot >= stages.size()) return;
    StageMetrics& s = stages[slot];
    ++s.executions;
    if (table_applied) {
      if (hit) {
        ++s.hits;
      } else {
        ++s.misses;
      }
    }
  }
};

inline bool operator==(const Histogram& a, const Histogram& b) {
  return a.buckets == b.buckets && a.count == b.count && a.sum == b.sum &&
         a.min == b.min && a.max == b.max;
}
inline bool operator==(const PortMetrics& a, const PortMetrics& b) {
  return a.packets_in == b.packets_in && a.packets_out == b.packets_out &&
         a.packets_dropped == b.packets_dropped &&
         a.packets_marked == b.packets_marked && a.cycles == b.cycles;
}
inline bool operator==(const StageMetrics& a, const StageMetrics& b) {
  return a.executions == b.executions && a.hits == b.hits &&
         a.misses == b.misses;
}

// --- snapshot rows (what export/RPC consume) --------------------------------

struct PortRow {
  uint32_t port = 0;
  PortMetrics metrics;
};

struct StageRow {
  uint32_t unit = 0;   // physical stage index / TSP id
  std::string stage;   // logical stage name ("" for an empty slot)
  StageMetrics metrics;
};

// Same shape the stats RPC uses; filled from the table catalog's own
// counters at snapshot time (tables already count hits/misses internally).
struct TableRow {
  std::string table;
  uint8_t match_kind = 0;
  uint32_t entries = 0;
  uint32_t size = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

// An epoch-tagged, self-consistent copy of the registry. A scrape across an
// in-situ update sees config_epoch advance and the update/drain windows the
// reconfiguration cost — the paper's headline, observable.
struct MetricsSnapshot {
  bool enabled = false;
  uint64_t seq = 0;           // snapshot sequence number (per collector)
  uint64_t config_epoch = 0;  // device CCM epoch at snapshot time
  DeviceStats device;         // aggregate device counters

  std::vector<PortRow> ports;    // only ports with traffic
  std::vector<StageRow> stages;  // current stage layout
  std::vector<TableRow> tables;  // filled by the owner (catalog access)

  // In-situ update visibility.
  uint64_t updates = 0;             // template writes / full loads observed
  uint64_t last_update_epoch = 0;   // device epoch after the last update
  double last_update_ms = 0;        // wall latency of the last update
  Histogram update_window_us;       // wall microseconds per update
  Histogram drain_window_cycles;    // backpressure drain cost per update

  // Trace ring occupancy travels with the metrics (cheap to include).
  uint64_t traces_captured = 0;
  uint64_t traces_dropped = 0;
  uint32_t traces_pending = 0;
};

}  // namespace ipsa::telemetry
