// Wire formats for a MetricsSnapshot: Prometheus text exposition (served by
// switchd's metrics port) and a stable JSON schema (switchctl --json).
#pragma once

#include <string>
#include <string_view>

#include "telemetry/collector.h"
#include "util/json.h"

namespace ipsa::telemetry {

// Prometheus text exposition format 0.0.4. Metric names are prefixed
// "ipsa_"; every sample carries an `arch` label so pbm and ipbm scrapes
// stay distinguishable. Histograms export cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`, per convention.
std::string RenderPrometheus(const MetricsSnapshot& snap,
                             std::string_view arch);

// Stable JSON schema (documented in docs/telemetry.md). Keys are
// snake_case; histograms carry count/sum/min/max/p50/p90/p99 plus raw
// buckets so scripts never have to re-derive percentiles.
util::Json SnapshotToJson(const MetricsSnapshot& snap, std::string_view arch);

// One trace record as JSON (switchctl trace --json).
util::Json TraceRecordToJson(const TraceRecord& record);

}  // namespace ipsa::telemetry
