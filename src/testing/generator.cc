#include "testing/generator.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "compiler/rp4fc.h"
#include "p4lite/parser.h"
#include "rp4/printer.h"
#include "testing/rng.h"

namespace ipsa::testing {

namespace {

uint64_t WidthMask(uint32_t width) {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

// Field widths are byte multiples so packet bytes assemble byte-at-a-time.
constexpr uint32_t kFieldWidths[] = {8, 16, 32, 48, 64};

// A readable reference inside action/guard expressions.
struct RefPool {
  std::vector<std::pair<std::string, uint32_t>> refs;  // P4 text, width
  const std::vector<RegisterSpec>* regs = nullptr;     // readable registers
};

RefPool ReadableRefs(const ProgramSpec& spec, int scope) {
  RefPool pool;
  for (const FieldSpec& m : spec.metadata) {
    pool.refs.push_back({"meta." + m.name, m.width_bits});
  }
  if (scope >= 0) {
    const HeaderSpec& h = spec.headers[scope];
    for (const FieldSpec& f : h.fields) {
      pool.refs.push_back({"hdr." + h.instance + "." + f.name, f.width_bits});
    }
  }
  if (!spec.registers.empty()) pool.regs = &spec.registers;
  return pool;
}

// An in-range register slot reference: the index masks a metadata field (or
// a constant) down to the register's power-of-two size.
std::string GenRegRef(Rng& rng, const RefPool& pool, const RegisterSpec& r) {
  std::string idx = pool.refs.empty() ? std::to_string(rng.Below(r.size))
                                      : rng.Pick(pool.refs).first;
  return r.name + "[(" + idx + " & " + std::to_string(r.size - 1) + ")]";
}

std::string GenExpr(Rng& rng, const RefPool& pool,
                    const std::vector<FieldSpec>& params, int depth) {
  if (depth <= 0 || rng.Chance(1, 2)) {
    // Leaf: constant, parameter, field reference, or register read.
    uint64_t roll = rng.Below(10);
    if (roll < 4 || (params.empty() && pool.refs.empty())) {
      return std::to_string(rng.Below(1024));
    }
    if (roll < 6 && !params.empty()) {
      return rng.Pick(params).name;
    }
    if (roll == 9 && pool.regs != nullptr) {
      return GenRegRef(rng, pool, rng.Pick(*pool.regs));
    }
    return rng.Pick(pool.refs).first;
  }
  if (rng.Chance(1, 4)) {
    // Fixed-point extern call. The shift operand stays a small constant so
    // quantize does not saturate everything it touches (huge shifts are
    // still well-defined, just uninteresting — the kernel tests pin those).
    static const char* kExterns[] = {"sat_add", "fxp_quantize",
                                     "fxp_dequantize"};
    const char* name = kExterns[rng.Below(3)];
    std::string a = GenExpr(rng, pool, params, depth - 1);
    std::string b = name[0] == 's' ? GenExpr(rng, pool, params, depth - 1)
                                   : std::to_string(rng.Below(9));
    return std::string(name) + "(" + a + ", " + b + ")";
  }
  static const char* kOps[] = {"+", "-", "&", "|", "^"};
  return "(" + GenExpr(rng, pool, params, depth - 1) + " " +
         kOps[rng.Below(5)] + " " + GenExpr(rng, pool, params, depth - 1) +
         ")";
}

// One assignment statement (the only statement kind valid inside a
// generated `if`): a meta or scope-header field gets an expression. The
// trailing "sel" field is never a write target: parser transitions select on
// it, and pbm (parse-all up front) would see the pre-rewrite value where
// ipbm (JIT parse at first reference) sees the post-rewrite one — a genuine
// divergence of the two parsing models, not a bug to find.
std::string GenAssign(Rng& rng, const ProgramSpec& spec, int scope,
                      const RefPool& pool,
                      const std::vector<FieldSpec>& params) {
  std::string dest;
  if (scope >= 0 && rng.Chance(1, 2) && spec.headers[scope].fields.size() > 1) {
    const HeaderSpec& h = spec.headers[scope];
    dest = "hdr." + h.instance + "." +
           h.fields[rng.Below(h.fields.size() - 1)].name;
  } else {
    dest = "meta." + rng.Pick(spec.metadata).name;
  }
  return dest + " = " + GenExpr(rng, pool, params, 2) + ";";
}

ActionSpec GenAction(Rng& rng, const ProgramSpec& spec, int scope,
                     const std::string& name) {
  ActionSpec a;
  a.name = name;
  uint64_t nparams = rng.Below(3);
  static const uint32_t kParamWidths[] = {8, 16, 32};
  for (uint64_t p = 0; p < nparams; ++p) {
    a.params.push_back(
        {"p" + std::to_string(p), kParamWidths[rng.Below(3)]});
  }
  RefPool pool = ReadableRefs(spec, scope);
  uint64_t nstmts = rng.Range(1, 3);
  for (uint64_t s = 0; s < nstmts; ++s) {
    if (pool.regs != nullptr && rng.Chance(1, 3)) {
      // Stateful accumulate: read-modify-write one register slot, the same
      // shape the in-network aggregation designs use. The slot reference is
      // generated once so both sides of the statement name the same slot.
      const RegisterSpec& r = rng.Pick(*pool.regs);
      std::string slot = GenRegRef(rng, pool, r);
      uint64_t kind = rng.Below(3);
      if (kind == 0) {
        a.stmts.push_back(slot + " = sat_add(" + slot + ", " +
                          GenExpr(rng, pool, a.params, 1) + ");");
      } else if (kind == 1) {
        a.stmts.push_back(slot + " = (" + slot + " + fxp_quantize(" +
                          GenExpr(rng, pool, a.params, 1) + ", " +
                          std::to_string(rng.Below(9)) + "));");
      } else {
        a.stmts.push_back(slot + " = (" + slot + " | " +
                          GenExpr(rng, pool, a.params, 1) + ");");
      }
      continue;
    }
    uint64_t roll = rng.Below(10);
    if (roll < 5) {
      a.stmts.push_back(GenAssign(rng, spec, scope, pool, a.params));
    } else if (roll < 7) {
      a.stmts.push_back("forward(" + std::to_string(rng.Below(20)) + ");");
    } else if (roll < 8) {
      a.stmts.push_back("mark();");
    } else {
      static const char* kCmps[] = {"==", "!=", "<", ">"};
      std::string lhs = pool.refs.empty()
                            ? std::to_string(rng.Below(16))
                            : rng.Pick(pool.refs).first;
      a.stmts.push_back("if (" + lhs + " " + kCmps[rng.Below(4)] + " " +
                        std::to_string(rng.Below(256)) + ") { " +
                        GenAssign(rng, spec, scope, pool, a.params) + " }");
    }
  }
  if (rng.Chance(1, 20)) a.stmts.push_back("drop();");
  return a;
}

TableSpec GenTable(Rng& rng, const ProgramSpec& spec, const std::string& name,
                   int forced_scope) {
  TableSpec t;
  t.name = name;
  t.scope = forced_scope;
  uint64_t roll = rng.Below(100);
  if (roll < 50) {
    t.match_kind = "exact";
  } else if (roll < 70) {
    t.match_kind = "lpm";
  } else if (roll < 85) {
    t.match_kind = "ternary";
  } else {
    t.match_kind = "hash";
  }
  // Size sweep: mostly small tables, sometimes mid-size ones (deeper shard
  // indexes, more pool blocks per claim). Million-entry specs are promoted
  // later in GenerateCase — at most one per program, so a case's pool
  // footprint stays bounded.
  if (t.match_kind == "hash") {
    t.size = 8;
  } else if (t.match_kind == "ternary") {
    // TCAM is the scarcest resource (PISA prorates 2 blocks x 512 rows per
    // stage), so ternary tables stay small.
    t.size = 64;
  } else {
    uint64_t size_roll = rng.Below(10);
    t.size = size_roll < 7 ? 64 : (size_roll < 9 ? 256 : 4096);
  }

  // Key candidates: the scope header's fields; meta-only tables key on
  // ingress_port (hits are predictable) or a user metadata field.
  std::vector<std::pair<std::string, uint32_t>> candidates;
  if (t.scope >= 0) {
    const HeaderSpec& h = spec.headers[t.scope];
    for (const FieldSpec& f : h.fields) {
      candidates.push_back(
          {"hdr." + h.instance + "." + f.name, f.width_bits});
    }
  } else {
    candidates.push_back({"meta.ingress_port", 9});
    for (const FieldSpec& m : spec.metadata) {
      candidates.push_back({"meta." + m.name, m.width_bits});
    }
  }
  uint64_t nkeys = t.match_kind == "lpm" ? 1 : rng.Range(1, 2);
  nkeys = std::min<uint64_t>(nkeys, candidates.size());
  std::set<size_t> used;
  for (uint64_t k = 0; k < nkeys; ++k) {
    size_t idx = rng.Below(candidates.size());
    if (used.count(idx) > 0) continue;  // fewer keys, never duplicates
    used.insert(idx);
    t.key_refs.push_back(candidates[idx].first);
    t.key_widths.push_back(candidates[idx].second);
  }

  uint64_t nactions = rng.Range(1, 2);
  for (uint64_t a = 0; a < nactions; ++a) {
    t.actions.push_back(
        GenAction(rng, spec, t.scope, name + "_a" + std::to_string(a)));
  }
  return t;
}

void GenControl(Rng& rng, const ProgramSpec& spec, ControlSpec& control,
                const std::string& prefix, uint64_t min_tables,
                uint64_t max_tables) {
  uint64_t ntables = rng.Range(min_tables, max_tables);
  for (uint64_t i = 0; i < ntables; ++i) {
    int scope = rng.Chance(1, 4)
                    ? -1
                    : static_cast<int>(rng.Below(spec.headers.size()));
    control.tables.push_back(
        GenTable(rng, spec, prefix + std::to_string(i), scope));
  }
  // Apply blocks: mostly one table each; occasionally an if/else-if chain of
  // two tables scoped to distinct headers (the linearizer flattens those
  // into a single stage with conjoined guards — exactly the path to fuzz).
  for (size_t i = 0; i < control.tables.size();) {
    if (i + 1 < control.tables.size() && control.tables[i].scope >= 0 &&
        control.tables[i + 1].scope >= 0 &&
        control.tables[i].scope != control.tables[i + 1].scope &&
        rng.Chance(1, 3)) {
      control.blocks.push_back(
          {{static_cast<int>(i), static_cast<int>(i + 1)}});
      i += 2;
    } else {
      control.blocks.push_back({{static_cast<int>(i)}});
      i += 1;
    }
  }
}

// A packet's parse path with concrete field values (parallel to fields).
struct PathHeader {
  int header = 0;
  std::vector<uint64_t> values;
};

std::vector<PathHeader> GenPath(Rng& rng, const ProgramSpec& spec,
                                const std::vector<std::vector<int>>& children) {
  std::vector<PathHeader> path;
  int at = 0;
  while (true) {
    PathHeader ph;
    ph.header = at;
    const HeaderSpec& h = spec.headers[at];
    for (const FieldSpec& f : h.fields) {
      ph.values.push_back(rng.Next() & WidthMask(f.width_bits));
    }
    path.push_back(std::move(ph));
    if (children[at].empty() || rng.Chance(1, 4)) {
      // Stop here. A selecting header's sel must not accidentally hit a
      // child tag (tags start at 1), or the parser would walk into payload.
      if (!children[at].empty()) path.back().values.back() = 0;
      break;
    }
    int next = children[at][rng.Below(children[at].size())];
    path.back().values.back() = spec.headers[next].tag;
    at = next;
  }
  return path;
}

std::vector<uint8_t> PathToBytes(Rng& rng, const ProgramSpec& spec,
                                 const std::vector<PathHeader>& path) {
  std::vector<uint8_t> bytes;
  for (const PathHeader& ph : path) {
    const HeaderSpec& h = spec.headers[ph.header];
    for (size_t f = 0; f < h.fields.size(); ++f) {
      uint32_t nbytes = h.fields[f].width_bits / 8;
      for (uint32_t b = 0; b < nbytes; ++b) {
        bytes.push_back(static_cast<uint8_t>(
            ph.values[f] >> (8 * (nbytes - 1 - b))));
      }
    }
  }
  uint64_t payload = rng.Below(9);
  for (uint64_t b = 0; b < payload; ++b) {
    bytes.push_back(static_cast<uint8_t>(rng.Next()));
  }
  return bytes;
}

// Entry generation: keys sampled from the generated packets' field values
// (likely hits) or random (likely misses).
using SampleMap = std::map<std::string, std::vector<uint64_t>>;

std::vector<EntryOp> GenEntries(Rng& rng, const TableSpec& t,
                                const SampleMap& samples) {
  std::vector<EntryOp> out;
  auto pick_action = [&]() -> const ActionSpec& { return rng.Pick(t.actions); };
  auto gen_args = [&](const ActionSpec& a) {
    std::vector<uint64_t> args;
    for (const FieldSpec& p : a.params) {
      args.push_back(rng.Next() & WidthMask(p.width_bits));
    }
    return args;
  };
  if (t.match_kind == "hash") {
    // Selector members: bucket 0 always populated so lookups always hit.
    for (uint32_t b = 0; b < t.size; ++b) {
      if (b != 0 && !rng.Chance(3, 5)) continue;
      const ActionSpec& a = pick_action();
      EntryOp e;
      e.table = t.name;
      e.action = a.name;
      e.args = gen_args(a);
      e.bucket = static_cast<int32_t>(b);
      out.push_back(std::move(e));
    }
    return out;
  }
  auto sample_key = [&](size_t k) -> uint64_t {
    auto it = samples.find(t.key_refs[k]);
    if (it != samples.end() && !it->second.empty() && rng.Chance(7, 10)) {
      return rng.Pick(it->second) & WidthMask(t.key_widths[k]);
    }
    return rng.Next() & WidthMask(t.key_widths[k]);
  };
  std::set<std::vector<uint64_t>> seen;
  uint64_t n = rng.Range(1, 4);
  for (uint64_t i = 0; i < n; ++i) {
    EntryOp e;
    e.table = t.name;
    for (size_t k = 0; k < t.key_refs.size(); ++k) {
      e.keys.push_back(sample_key(k));
    }
    if (seen.count(e.keys) > 0) continue;
    seen.insert(e.keys);
    const ActionSpec& a = pick_action();
    e.action = a.name;
    e.args = gen_args(a);
    if (t.match_kind == "lpm") {
      e.prefix_len = static_cast<uint32_t>(rng.Range(1, t.key_widths[0]));
    } else if (t.match_kind == "ternary") {
      e.priority = static_cast<uint32_t>(i + 1);
      for (uint32_t w : t.key_widths) {
        e.mask.push_back(rng.Chance(4, 5) ? WidthMask(w)
                                          : (rng.Next() & WidthMask(w)));
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

GeneratedCase GenerateCase(uint64_t seed) {
  Rng rng(seed);
  GeneratedCase gen;
  ProgramSpec& spec = gen.spec;
  spec.seed = seed;

  // Headers: a random parse tree. headers[0] is the entry; every later
  // header hangs off an earlier one with a distinct select tag.
  uint64_t nheaders = rng.Range(2, 5);
  std::vector<uint64_t> child_count(nheaders, 0);
  for (uint64_t i = 0; i < nheaders; ++i) {
    HeaderSpec h;
    h.instance = "h" + std::to_string(i);
    uint64_t nfields = rng.Range(1, 3);
    for (uint64_t f = 0; f < nfields; ++f) {
      h.fields.push_back(
          {"f" + std::to_string(f), kFieldWidths[rng.Below(5)]});
    }
    h.fields.push_back({"sel", 16});
    if (i > 0) {
      h.parent = static_cast<int>(rng.Below(i));
      h.tag = ++child_count[h.parent];
    }
    spec.headers.push_back(std::move(h));
  }

  uint64_t nmeta = rng.Range(2, 4);
  static const uint32_t kMetaWidths[] = {8, 16};
  for (uint64_t m = 0; m < nmeta; ++m) {
    spec.metadata.push_back(
        {"m" + std::to_string(m), kMetaWidths[rng.Below(2)]});
  }
  spec.metadata.push_back({"ver", 16});

  // Stateful sweep: about a third of the cases carry array registers whose
  // slots actions accumulate into (sat_add / fxp_quantize read-modify-write).
  // Those cases omit the update op below — across a PISA full reload the
  // register file resets while an IPSA in-situ update keeps it, a genuine
  // model divergence the oracle must not be pointed at.
  const bool stateful = rng.Chance(1, 3);
  if (stateful) {
    static const uint32_t kRegSizes[] = {4, 8, 16};
    uint64_t nregs = rng.Range(1, 2);
    for (uint64_t r = 0; r < nregs; ++r) {
      spec.registers.push_back(
          {"r" + std::to_string(r), kRegSizes[rng.Below(3)]});
    }
  }

  GenControl(rng, spec, spec.ingress, "ti", 2, 4);
  GenControl(rng, spec, spec.egress, "te", 1, 2);
  // Million-entry sweep: occasionally one SRAM-backed table declares a
  // million-entry footprint. At most one per program — the differential
  // harnesses size their pools from the largest declared table, and two
  // such claims would not fit a PISA stage cluster.
  if (rng.Chance(1, 12)) {
    std::vector<TableSpec*> sweepable;
    for (ControlSpec* c : {&spec.ingress, &spec.egress}) {
      for (TableSpec& t : c->tables) {
        if (t.match_kind == "exact" || t.match_kind == "lpm") {
          sweepable.push_back(&t);
        }
      }
    }
    if (!sweepable.empty()) {
      sweepable[rng.Below(sweepable.size())]->size = 1u << 20;
    }
  }
  // The update target: v2 changes this action's version constant, so the
  // in-situ snippet touches exactly one stage.
  spec.ingress.tables[0].actions[0].versioned = true;

  // Traffic first (entries sample from it so lookups actually hit).
  std::vector<std::vector<int>> children(spec.headers.size());
  for (size_t i = 1; i < spec.headers.size(); ++i) {
    children[spec.headers[i].parent].push_back(static_cast<int>(i));
  }
  uint64_t npackets = rng.Range(6, 16);
  std::vector<Op> packet_ops;
  SampleMap samples;
  for (uint64_t p = 0; p < npackets; ++p) {
    std::vector<PathHeader> path = GenPath(rng, spec, children);
    Op op;
    op.kind = Op::Kind::kPacket;
    op.packet.in_port = static_cast<uint32_t>(rng.Below(16));
    op.packet.bytes = PathToBytes(rng, spec, path);
    samples["meta.ingress_port"].push_back(op.packet.in_port);
    for (const PathHeader& ph : path) {
      const HeaderSpec& h = spec.headers[ph.header];
      for (size_t f = 0; f < h.fields.size(); ++f) {
        samples["hdr." + h.instance + "." + h.fields[f].name].push_back(
            ph.values[f]);
      }
    }
    packet_ops.push_back(std::move(op));
  }

  // Schedule: populate, first traffic segment, optional extra churn, the
  // in-situ update, second segment.
  for (const ControlSpec* c : {&spec.ingress, &spec.egress}) {
    for (const TableSpec& t : c->tables) {
      for (EntryOp& e : GenEntries(rng, t, samples)) {
        Op op;
        op.kind = Op::Kind::kEntry;
        op.entry = std::move(e);
        gen.ops.push_back(std::move(op));
      }
    }
  }
  size_t split = packet_ops.size() / 2;
  for (size_t p = 0; p < split; ++p) gen.ops.push_back(packet_ops[p]);
  if (rng.Chance(3, 10)) {
    const ControlSpec& c = rng.Chance(1, 2) ? spec.ingress : spec.egress;
    for (EntryOp& e : GenEntries(rng, rng.Pick(c.tables), samples)) {
      Op op;
      op.kind = Op::Kind::kEntry;
      op.entry = std::move(e);
      gen.ops.push_back(std::move(op));
      break;  // one extra churn entry is enough
    }
  }
  if (!stateful) {
    Op update;
    update.kind = Op::Kind::kUpdate;
    gen.ops.push_back(std::move(update));
  }
  for (size_t p = split; p < packet_ops.size(); ++p) {
    gen.ops.push_back(packet_ops[p]);
  }
  return gen;
}

// --- rendering --------------------------------------------------------------

namespace {

void RenderControlP4(std::string& o, const ProgramSpec& spec,
                     const ControlSpec& c, const std::string& name,
                     uint32_t version) {
  o += "control " + name + "(inout headers_t hdr, inout metadata_t meta) {\n";
  for (const TableSpec& t : c.tables) {
    for (const ActionSpec& a : t.actions) {
      o += "  action " + a.name + "(";
      for (size_t p = 0; p < a.params.size(); ++p) {
        if (p > 0) o += ", ";
        o += "bit<" + std::to_string(a.params[p].width_bits) + "> " +
             a.params[p].name;
      }
      o += ") {\n";
      for (const std::string& s : a.stmts) o += "    " + s + "\n";
      if (a.versioned) {
        o += "    meta.ver = " + std::to_string(1000 + version) + ";\n";
      }
      o += "  }\n";
    }
  }
  for (const TableSpec& t : c.tables) {
    o += "  table " + t.name + " {\n    key = {";
    for (size_t k = 0; k < t.key_refs.size(); ++k) {
      o += " " + t.key_refs[k] + ": " + t.match_kind + ";";
    }
    o += " }\n    actions = {";
    for (const ActionSpec& a : t.actions) o += " " + a.name + ";";
    o += " NoAction; }\n    size = " + std::to_string(t.size) + ";\n  }\n";
  }
  o += "  apply {\n";
  for (const ApplyBlock& b : c.blocks) {
    const TableSpec& first = c.tables[b.tables[0]];
    if (b.tables.size() == 2) {
      const TableSpec& second = c.tables[b.tables[1]];
      o += "    if (hdr." + spec.headers[first.scope].instance +
           ".isValid()) { " + first.name + ".apply(); }\n";
      o += "    else if (hdr." + spec.headers[second.scope].instance +
           ".isValid()) { " + second.name + ".apply(); }\n";
    } else if (first.scope >= 0) {
      o += "    if (hdr." + spec.headers[first.scope].instance +
           ".isValid()) { " + first.name + ".apply(); }\n";
    } else {
      o += "    " + first.name + ".apply();\n";
    }
  }
  o += "  }\n}\n";
}

}  // namespace

std::string RenderP4(const ProgramSpec& spec, uint32_t version) {
  std::string o;
  for (const HeaderSpec& h : spec.headers) {
    o += "header " + h.instance + "_t {\n";
    for (const FieldSpec& f : h.fields) {
      o += "  bit<" + std::to_string(f.width_bits) + "> " + f.name + ";\n";
    }
    o += "}\n";
  }
  o += "struct metadata_t {\n";
  for (const FieldSpec& m : spec.metadata) {
    o += "  bit<" + std::to_string(m.width_bits) + "> " + m.name + ";\n";
  }
  o += "}\n";
  o += "struct headers_t {\n";
  for (const HeaderSpec& h : spec.headers) {
    o += "  " + h.instance + "_t " + h.instance + ";\n";
  }
  o += "}\n";
  for (const RegisterSpec& r : spec.registers) {
    o += "register<bit<64>> " + r.name + "[" + std::to_string(r.size) +
         "];\n";
  }

  o += "parser MainParser(packet_in pkt, out headers_t hdr, "
       "inout metadata_t meta) {\n";
  std::vector<std::vector<int>> children(spec.headers.size());
  for (size_t i = 1; i < spec.headers.size(); ++i) {
    children[spec.headers[i].parent].push_back(static_cast<int>(i));
  }
  for (size_t i = 0; i < spec.headers.size(); ++i) {
    const HeaderSpec& h = spec.headers[i];
    o += "  state " +
         (i == 0 ? std::string("start") : "parse_" + h.instance) + " {\n";
    o += "    pkt.extract(hdr." + h.instance + ");\n";
    if (children[i].empty()) {
      o += "    transition accept;\n";
    } else {
      o += "    transition select(hdr." + h.instance + ".sel) {\n";
      for (int c : children[i]) {
        o += "      " + std::to_string(spec.headers[c].tag) + ": parse_" +
             spec.headers[c].instance + ";\n";
      }
      o += "      default: accept;\n    }\n";
    }
    o += "  }\n";
  }
  o += "}\n";

  RenderControlP4(o, spec, spec.ingress, "MainIngress", version);
  RenderControlP4(o, spec, spec.egress, "MainEgress", version);
  return o;
}

Result<CaseFile> RenderCase(const GeneratedCase& gen) {
  CaseFile cf;
  cf.seed = gen.spec.seed;
  cf.p4_v1 = RenderP4(gen.spec, 1);
  cf.ops = gen.ops;
  bool has_update = false;
  for (const Op& op : gen.ops) {
    if (op.kind == Op::Kind::kUpdate) has_update = true;
  }
  if (!has_update) return cf;

  cf.p4_v2 = RenderP4(gen.spec, 2);

  // The snippet is rendered from rp4fc's own output on v2, so the update
  // pushes exactly the stage triad the base load would have produced —
  // divergence between the flows is then a device/runtime bug, never a
  // harness transcription bug.
  IPSA_ASSIGN_OR_RETURN(p4lite::Hlir hlir, p4lite::ParseP4(cf.p4_v2));
  IPSA_ASSIGN_OR_RETURN(compiler::Rp4fcResult fc, compiler::RunRp4fc(hlir));

  const ControlSpec& ig = gen.spec.ingress;
  int vtable = -1;
  std::string vaction;
  for (size_t i = 0; i < ig.tables.size(); ++i) {
    for (const ActionSpec& a : ig.tables[i].actions) {
      if (a.versioned) {
        vtable = static_cast<int>(i);
        vaction = a.name;
      }
    }
  }
  if (vtable < 0) {
    return InvalidArgument("case has an update op but no versioned action");
  }
  const ApplyBlock* block = nullptr;
  for (const ApplyBlock& b : ig.blocks) {
    for (int t : b.tables) {
      if (t == vtable) block = &b;
    }
  }
  if (block == nullptr) {
    return InvalidArgument("versioned table is not applied by any block");
  }
  // Linearize names the stage after the first applied table of the chain.
  const std::string stage_name = ig.tables[block->tables[0]].name;
  const arch::StageProgram* stage = fc.program.FindStage(stage_name);
  if (stage == nullptr) {
    return InternalError("rp4fc output has no stage '" + stage_name + "'");
  }
  const arch::ActionDef* action = fc.program.FindAction(vaction);
  if (action == nullptr) {
    return InternalError("rp4fc output has no action '" + vaction + "'");
  }
  std::string snippet;
  for (int t : block->tables) {
    const rp4::Rp4TableDecl* decl = fc.program.FindTable(ig.tables[t].name);
    if (decl == nullptr) {
      return InternalError("rp4fc output has no table '" + ig.tables[t].name +
                           "'");
    }
    snippet += rp4::PrintTable(*decl);
  }
  snippet += rp4::PrintActionDef(*action);
  snippet += rp4::PrintStage(*stage);
  cf.snippet = snippet;
  cf.script = "update fuzz_v2.rp4 --func_name base\n";
  return cf;
}

// --- repro file round-trip --------------------------------------------------

namespace {

std::string HexEncode(const std::vector<uint8_t>& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

Result<std::vector<uint8_t>> HexDecode(std::string_view text) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (text.size() % 2 != 0) return InvalidArgument("odd hex length");
  std::vector<uint8_t> out;
  out.reserve(text.size() / 2);
  for (size_t i = 0; i < text.size(); i += 2) {
    int hi = nibble(text[i]);
    int lo = nibble(text[i + 1]);
    if (hi < 0 || lo < 0) return InvalidArgument("bad hex digit");
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string JoinU64(const std::vector<uint64_t>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

Result<std::vector<uint64_t>> SplitU64(std::string_view text) {
  std::vector<uint64_t> out;
  if (text.empty()) return out;
  size_t at = 0;
  while (at <= text.size()) {
    size_t comma = text.find(',', at);
    std::string tok(text.substr(
        at, comma == std::string_view::npos ? std::string_view::npos
                                            : comma - at));
    if (tok.empty()) return InvalidArgument("empty number in list");
    errno = 0;
    char* end = nullptr;
    uint64_t v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0') {
      return InvalidArgument("bad number '" + tok + "'");
    }
    out.push_back(v);
    if (comma == std::string_view::npos) break;
    at = comma + 1;
  }
  return out;
}

void AppendSection(std::string& out, const std::string& name,
                   const std::string& body) {
  if (body.empty()) return;
  out += "begin " + name + "\n";
  out += body;
  if (body.back() != '\n') out += "\n";
  out += "end " + name + "\n";
}

}  // namespace

std::string SerializeCase(const CaseFile& c) {
  std::string out = "rp4fuzz-case v1\n";
  out += "seed " + std::to_string(c.seed) + "\n";
  AppendSection(out, "p4_v1", c.p4_v1);
  AppendSection(out, "p4_v2", c.p4_v2);
  AppendSection(out, "snippet", c.snippet);
  AppendSection(out, "script", c.script);
  for (const Op& op : c.ops) {
    switch (op.kind) {
      case Op::Kind::kPacket:
        out += "op packet " + std::to_string(op.packet.in_port) + " " +
               HexEncode(op.packet.bytes) + "\n";
        break;
      case Op::Kind::kEntry: {
        const EntryOp& e = op.entry;
        out += "op entry table=" + e.table + " action=" + e.action +
               " keys=" + JoinU64(e.keys) + " args=" + JoinU64(e.args) +
               " mask=" + JoinU64(e.mask) +
               " prefix=" + std::to_string(e.prefix_len) +
               " prio=" + std::to_string(e.priority) +
               " bucket=" + std::to_string(e.bucket) + "\n";
        break;
      }
      case Op::Kind::kUpdate:
        out += "op update\n";
        break;
    }
  }
  return out;
}

Result<CaseFile> ParseCaseFile(std::string_view text) {
  CaseFile cf;
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "rp4fuzz-case v1") {
    return InvalidArgument("not an rp4fuzz case file (bad magic)");
  }
  auto field = [](std::string_view tok,
                  std::string_view key) -> Result<std::string> {
    if (tok.substr(0, key.size()) != key) {
      return InvalidArgument("expected '" + std::string(key) + "' in '" +
                             std::string(tok) + "'");
    }
    return std::string(tok.substr(key.size()));
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("seed ", 0) == 0) {
      IPSA_ASSIGN_OR_RETURN(std::vector<uint64_t> v,
                            SplitU64(line.substr(5)));
      if (v.size() != 1) return InvalidArgument("bad seed line");
      cf.seed = v[0];
      continue;
    }
    if (line.rfind("begin ", 0) == 0) {
      std::string name = line.substr(6);
      std::string body;
      bool closed = false;
      std::string end_marker = "end " + name;
      while (std::getline(in, line)) {
        if (line == end_marker) {
          closed = true;
          break;
        }
        body += line;
        body += "\n";
      }
      if (!closed) return InvalidArgument("unterminated section " + name);
      if (name == "p4_v1") {
        cf.p4_v1 = body;
      } else if (name == "p4_v2") {
        cf.p4_v2 = body;
      } else if (name == "snippet") {
        cf.snippet = body;
      } else if (name == "script") {
        cf.script = body;
      } else {
        return InvalidArgument("unknown section " + name);
      }
      continue;
    }
    if (line.rfind("op packet ", 0) == 0) {
      std::istringstream ls(line.substr(10));
      std::string port_tok, hex_tok;
      if (!(ls >> port_tok >> hex_tok)) {
        return InvalidArgument("bad packet op: " + line);
      }
      Op op;
      op.kind = Op::Kind::kPacket;
      IPSA_ASSIGN_OR_RETURN(std::vector<uint64_t> port, SplitU64(port_tok));
      if (port.size() != 1) return InvalidArgument("bad packet port");
      op.packet.in_port = static_cast<uint32_t>(port[0]);
      IPSA_ASSIGN_OR_RETURN(op.packet.bytes, HexDecode(hex_tok));
      cf.ops.push_back(std::move(op));
      continue;
    }
    if (line.rfind("op entry ", 0) == 0) {
      std::istringstream ls(line.substr(9));
      std::vector<std::string> toks;
      std::string tok;
      while (ls >> tok) toks.push_back(tok);
      if (toks.size() != 8) return InvalidArgument("bad entry op: " + line);
      Op op;
      op.kind = Op::Kind::kEntry;
      EntryOp& e = op.entry;
      IPSA_ASSIGN_OR_RETURN(e.table, field(toks[0], "table="));
      IPSA_ASSIGN_OR_RETURN(e.action, field(toks[1], "action="));
      IPSA_ASSIGN_OR_RETURN(std::string keys, field(toks[2], "keys="));
      IPSA_ASSIGN_OR_RETURN(e.keys, SplitU64(keys));
      IPSA_ASSIGN_OR_RETURN(std::string args, field(toks[3], "args="));
      IPSA_ASSIGN_OR_RETURN(e.args, SplitU64(args));
      IPSA_ASSIGN_OR_RETURN(std::string mask, field(toks[4], "mask="));
      IPSA_ASSIGN_OR_RETURN(e.mask, SplitU64(mask));
      IPSA_ASSIGN_OR_RETURN(std::string prefix, field(toks[5], "prefix="));
      IPSA_ASSIGN_OR_RETURN(std::vector<uint64_t> pv, SplitU64(prefix));
      if (pv.size() != 1) return InvalidArgument("bad prefix");
      e.prefix_len = static_cast<uint32_t>(pv[0]);
      IPSA_ASSIGN_OR_RETURN(std::string prio, field(toks[6], "prio="));
      IPSA_ASSIGN_OR_RETURN(std::vector<uint64_t> rv, SplitU64(prio));
      if (rv.size() != 1) return InvalidArgument("bad prio");
      e.priority = static_cast<uint32_t>(rv[0]);
      IPSA_ASSIGN_OR_RETURN(std::string bucket, field(toks[7], "bucket="));
      if (bucket == "-1") {
        e.bucket = -1;
      } else {
        IPSA_ASSIGN_OR_RETURN(std::vector<uint64_t> bv, SplitU64(bucket));
        if (bv.size() != 1) return InvalidArgument("bad bucket");
        e.bucket = static_cast<int32_t>(bv[0]);
      }
      cf.ops.push_back(std::move(op));
      continue;
    }
    if (line == "op update") {
      Op op;
      op.kind = Op::Kind::kUpdate;
      cf.ops.push_back(std::move(op));
      continue;
    }
    return InvalidArgument("unrecognized line: " + line);
  }
  if (cf.p4_v1.empty()) return InvalidArgument("case has no p4_v1 section");
  return cf;
}

}  // namespace ipsa::testing
