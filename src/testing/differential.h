// Differential execution of one fuzz case over every execution path.
//
// Six configurations process the identical (program, traffic, churn)
// schedule:
//   pbm-interp    PISA device, interpreter only
//   pbm-compiled  PISA device, generic compiled-stage walk
//   pbm-spec      PISA device, epoch-specialized pipeline plan
//   ipbm-interp   IPSA device, interpreter only
//   ipbm-compiled IPSA device, generic compiled-stage walk
//   ipbm-parallel IPSA device, specialized plan + 4-worker batch executor
//
// The PISA configurations full-reload v2 at the update op (entries restored
// from the controller shadow); the IPSA configurations apply the in-situ
// snippet. The paper's equivalence claim is checked as: bit-identical TX
// streams per port, identical per-packet results, equal per-segment table
// hit/miss deltas, matching telemetry counters, and a config epoch that
// advances across the update on every device.
#pragma once

#include <string>

#include "testing/generator.h"
#include "util/status.h"

namespace ipsa::testing {

struct DiffOptions {
  // Enables arch::SetCompiledStageFault for the lifetime of the run: the
  // compiled configurations then intentionally diverge from the
  // interpreter, proving the harness detects/shrinks/replays real bugs.
  bool inject_fault = false;
  uint32_t parallel_workers = 4;
};

struct DiffReport {
  bool diverged = false;
  std::string detail;  // first divergence, human-readable
};

// Runs one case through all six configurations. A Status error means the
// case could not even execute (a front-end or harness defect — also a
// failure for the fuzzer, just a different kind).
Result<DiffReport> RunCase(const CaseFile& c, const DiffOptions& options = {});

// True when the case fails under `options` (diverges or errors) — the
// shrinker's predicate.
bool CaseFails(const CaseFile& c, const DiffOptions& options);

// Greedily shrinks a failing case: drops packet ops, entry ops, the update
// op, apply blocks (with their tables/entries) and unreferenced leaf
// headers, keeping each removal only while the failure persists. Returns
// the re-rendered minimal case.
Result<CaseFile> ShrinkCase(const GeneratedCase& gen,
                            const DiffOptions& options = {});

}  // namespace ipsa::testing
