// Random well-typed program + workload generation for differential fuzzing.
//
// A case is (program, traffic, churn schedule). The program is generated
// once as a P4lite source *pair* — v2 differs from v1 only in one action's
// version constant — so the same case drives both design flows: the PISA
// controller full-reloads v2 while the rP4 controller applies an in-situ
// function update whose snippet is rendered from rp4fc's own output (zero
// drift from the linearizer's stage semantics).
//
// Generated programs deliberately stay inside the intersection of behaviors
// the two architectures define identically: no entry erases (the PISA
// shadow store has no erase), and register-using cases omit the update op
// (a PISA reload resets registers, an IPSA update keeps them — a real
// divergence of the models, not a bug). Stateful cases exercise the
// register-accumulate path — including the fixed-point externs sat_add /
// fxp_quantize / fxp_dequantize — across all six configurations; stateless
// cases may still use the externs in pure expressions, in which case the
// in-situ update snippet carries them through the rp4 printer/parser too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ipsa::testing {

// --- program shape ----------------------------------------------------------

struct FieldSpec {
  std::string name;
  uint32_t width_bits = 16;
};

// A header instance (type = instance + "_t"). Every header ends with a
// bit<16> "sel" field; interior parse-tree nodes select on it. Field widths
// are byte multiples so packet bytes assemble without bit packing.
struct HeaderSpec {
  std::string instance;
  std::vector<FieldSpec> fields;  // includes the trailing "sel"
  int parent = -1;                // index of the parent header, -1 = entry
  uint64_t tag = 0;               // parent's select value for this header
};

struct ActionSpec {
  std::string name;
  std::vector<FieldSpec> params;
  std::vector<std::string> stmts;  // rendered P4 statements
  // The designated update action: rendering appends
  // `meta.ver = 1000 + version;` so v1/v2 differ in exactly this constant.
  bool versioned = false;
};

struct TableSpec {
  std::string name;
  int scope = -1;          // header index guarding this table, -1 = meta-only
  std::string match_kind;  // exact | lpm | ternary | hash
  std::vector<std::string> key_refs;  // P4 refs: "hdr.h0.f1" / "meta.m0"
  std::vector<uint32_t> key_widths;   // parallel to key_refs
  uint32_t size = 64;
  std::vector<ActionSpec> actions;  // owned by this table (plus NoAction)
};

// One statement of the apply block: a single (guarded) apply, or a
// two-branch if/else-if chain the linearizer must flatten into one stage.
struct ApplyBlock {
  std::vector<int> tables;  // indices into the control's tables; size 1 or 2
};

struct ControlSpec {
  std::vector<TableSpec> tables;
  std::vector<ApplyBlock> blocks;
};

// An array register (rendered as `register<bit<64>> name[size];`). Sizes are
// powers of two so generated index expressions can mask into range.
struct RegisterSpec {
  std::string name;
  uint32_t size = 8;
};

struct ProgramSpec {
  uint64_t seed = 0;
  std::vector<HeaderSpec> headers;
  std::vector<FieldSpec> metadata;  // user fields; "ver" is always present
  // Non-empty makes the case stateful: actions may accumulate into these,
  // and GenerateCase omits the update op (see the header comment).
  std::vector<RegisterSpec> registers;
  ControlSpec ingress;
  ControlSpec egress;
};

// --- workload ---------------------------------------------------------------

struct EntryOp {
  std::string table;
  std::string action;
  std::vector<uint64_t> keys;
  std::vector<uint64_t> args;
  std::vector<uint64_t> mask;  // ternary only, parallel to keys
  uint32_t prefix_len = 0;     // lpm only
  uint32_t priority = 0;       // ternary only
  int32_t bucket = -1;         // >= 0: selector member (keys unused)
};

struct PacketOp {
  uint32_t in_port = 0;
  std::vector<uint8_t> bytes;
};

struct Op {
  enum class Kind { kPacket, kEntry, kUpdate };
  Kind kind = Kind::kPacket;
  PacketOp packet;
  EntryOp entry;
};

// A case that can still be re-rendered (the shrinker edits the spec and
// regenerates sources; a CaseFile alone cannot grow back a dropped table).
struct GeneratedCase {
  ProgramSpec spec;
  std::vector<Op> ops;
};

// The self-contained, replayable repro: sources + churn schedule. This is
// what rp4fuzz writes on failure and what tests/corpus/ commits.
struct CaseFile {
  uint64_t seed = 0;
  std::string p4_v1;
  std::string p4_v2;    // empty when the case has no update op
  std::string snippet;  // rP4 update snippet (rendered from rp4fc on v2)
  std::string script;   // controller script applying the snippet
  std::vector<Op> ops;
};

// --- entry points -----------------------------------------------------------

// Deterministically generates a case from a seed (same seed, same case).
GeneratedCase GenerateCase(uint64_t seed);

// Renders the P4lite source of `spec` at `version` (1 or 2).
std::string RenderP4(const ProgramSpec& spec, uint32_t version);

// Renders the full case: both sources plus, when an update op is present,
// the in-situ snippet/script pair derived by running p4lite + rp4fc on v2
// in-process and pretty-printing the changed pieces. Fails if the generated
// program does not compile — that is a generator (or front-end) bug.
Result<CaseFile> RenderCase(const GeneratedCase& gen);

// Text round-trip for repro files.
std::string SerializeCase(const CaseFile& c);
Result<CaseFile> ParseCaseFile(std::string_view text);

}  // namespace ipsa::testing
