// Deterministic RNG for the differential fuzzing harness.
//
// std::mt19937 + distributions are not guaranteed to produce the same
// sequence across standard libraries, and a repro file must replay
// identically everywhere. SplitMix64 is four lines, passes BigCrush, and is
// trivially portable — every case is fully determined by its 64-bit seed.
#pragma once

#include <cstdint>

namespace ipsa::testing {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n). n must be > 0; modulo bias is irrelevant here.
  uint64_t Below(uint64_t n) { return Next() % n; }
  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }
  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }
  // Picks an element of a non-empty container by index.
  template <typename T>
  const typename T::value_type& Pick(const T& c) {
    return c[Below(c.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace ipsa::testing
