#include "testing/differential.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "arch/compiled_stage.h"
#include "controller/controller.h"
#include "controller/runtime_api.h"
#include "ipsa/ipbm.h"
#include "net/packet.h"
#include "pisa/pisa_switch.h"
#include "table/table.h"
#include "telemetry/collector.h"

namespace ipsa::testing {
namespace {

// table name -> (hits, misses), read from the device catalog.
using TableStats = std::map<std::string, std::pair<uint64_t, uint64_t>>;

struct PktResult {
  bool dropped = false;
  bool marked = false;
  uint32_t egress = 0;
  uint64_t cycles = 0;
  std::vector<uint8_t> bytes;  // packet contents after processing
};

// Everything one configuration observed while replaying the case.
struct ConfigRun {
  std::string name;
  std::vector<PktResult> pkts;  // per-packet configs only (empty for parallel)
  std::vector<std::vector<std::vector<uint8_t>>> tx;  // port -> frames
  std::vector<TableStats> seg_deltas;  // hit/miss deltas per traffic segment
  telemetry::MetricsShard shard;
  uint64_t epoch_delta = 0;  // config-epoch advance across the update op
  bool saw_update = false;
  uint64_t updates = 0;  // collector's update-window count at end of run
  telemetry::DeviceStats device;
};

Result<TableStats> ReadTableStats(const arch::TableCatalog& catalog) {
  TableStats out;
  for (const std::string& name : catalog.TableNames()) {
    IPSA_ASSIGN_OR_RETURN(table::MatchTable * t, catalog.Get(name));
    out[name] = {t->hits(), t->misses()};
  }
  return out;
}

TableStats Delta(const TableStats& before, const TableStats& after) {
  TableStats out;
  for (const auto& [name, counts] : after) {
    auto it = before.find(name);
    uint64_t h0 = it == before.end() ? 0 : it->second.first;
    uint64_t m0 = it == before.end() ? 0 : it->second.second;
    out[name] = {counts.first - h0, counts.second - m0};
  }
  return out;
}

// Builds a table::Entry from an EntryOp against the controller's ApiSpec.
// Widths for action arguments come from the spec, so the op only carries
// integer values.
Result<table::Entry> BuildEntryFor(const compiler::ApiSpec& api,
                                   const EntryOp& e) {
  const compiler::TableApi* spec = api.Find(e.table);
  if (spec == nullptr) {
    return NotFound("entry op targets unknown table '" + e.table + "'");
  }
  auto ait = spec->actions.find(e.action);
  if (ait == spec->actions.end()) {
    return NotFound("entry op targets unknown action '" + e.action +
                    "' on table '" + e.table + "'");
  }
  const std::vector<uint32_t>& widths = ait->second.second;
  if (widths.size() != e.args.size()) {
    return InvalidArgument("entry op arg count mismatch for '" + e.action +
                           "'");
  }
  std::vector<mem::BitString> args;
  args.reserve(e.args.size());
  for (size_t i = 0; i < e.args.size(); ++i) {
    args.push_back(controller::Bits(widths[i], e.args[i]));
  }
  controller::EntryBuilder builder(api);
  if (e.bucket >= 0) {
    return builder.BuildSelectorMember(
        e.table, static_cast<uint32_t>(e.bucket), e.action, args);
  }
  std::vector<controller::KeyValue> keys;
  keys.reserve(e.keys.size());
  for (uint64_t k : e.keys) keys.emplace_back(k);
  std::vector<controller::KeyValue> mask;
  mask.reserve(e.mask.size());
  for (uint64_t m : e.mask) mask.emplace_back(m);
  return builder.Build(e.table, e.action, keys, args, e.prefix_len,
                       e.priority, mask);
}

// A configuration under test: one device + controller pair plus how packets
// are driven through it (per-packet Process or batch run-to-completion).
class Harness {
 public:
  virtual ~Harness() = default;
  virtual Status Load(const CaseFile& c) = 0;
  virtual Status ApplyEntry(const EntryOp& e) = 0;
  virtual Status Update(const CaseFile& c) = 0;
  virtual bool per_packet() const { return true; }
  virtual Result<PktResult> RunPacket(const PacketOp& p) = 0;
  virtual Status RunBatch(const std::vector<const PacketOp*>& pkts) = 0;
  virtual const arch::TableCatalog& catalog() const = 0;
  virtual net::PortSet& ports() = 0;
  virtual uint64_t epoch() const = 0;
  virtual telemetry::Collector& collector() = 0;
  virtual const telemetry::DeviceStats& device_stats() const = 0;
};

template <typename Dev>
PktResult ToPktResult(const telemetry::ProcessResult& r,
                      const net::Packet& pkt) {
  PktResult out;
  out.dropped = r.dropped;
  out.marked = r.marked;
  out.egress = r.egress_port;
  out.cycles = r.cycles;
  auto bytes = pkt.bytes();
  out.bytes.assign(bytes.begin(), bytes.end());
  return out;
}

class PbmHarness : public Harness {
 public:
  explicit PbmHarness(arch::ExecMode mode,
                      const pisa::PisaOptions& options = {},
                      const compiler::PisaBackendOptions& compiler_options = {})
      : dev_(options), ctl_(dev_, compiler_options), mode_(mode) {}

  Status Load(const CaseFile& c) override {
    telemetry::TelemetryConfig tc;
    tc.enabled = true;
    dev_.ConfigureTelemetry(tc);
    dev_.SetExecMode(mode_);
    IPSA_ASSIGN_OR_RETURN(auto timing, ctl_.CompileAndLoad(c.p4_v1));
    (void)timing;
    return OkStatus();
  }

  Status ApplyEntry(const EntryOp& e) override {
    IPSA_ASSIGN_OR_RETURN(table::Entry entry, BuildEntryFor(ctl_.api(), e));
    return ctl_.AddEntry(e.table, entry);
  }

  Status Update(const CaseFile& c) override {
    if (c.p4_v2.empty()) return InvalidArgument("update op without p4_v2");
    IPSA_ASSIGN_OR_RETURN(auto timing, ctl_.CompileAndLoad(c.p4_v2));
    (void)timing;
    return OkStatus();
  }

  Result<PktResult> RunPacket(const PacketOp& p) override {
    net::Packet pkt{std::span<const uint8_t>(p.bytes)};
    IPSA_ASSIGN_OR_RETURN(auto r, dev_.Process(pkt, p.in_port));
    return ToPktResult<pisa::PisaSwitch>(r, pkt);
  }

  Status RunBatch(const std::vector<const PacketOp*>&) override {
    return Unimplemented("pbm harness is per-packet");
  }

  const arch::TableCatalog& catalog() const override {
    return dev_.catalog();
  }
  net::PortSet& ports() override { return dev_.ports(); }
  uint64_t epoch() const override { return dev_.config_epoch(); }
  telemetry::Collector& collector() override { return dev_.telemetry(); }
  const telemetry::DeviceStats& device_stats() const override {
    return dev_.stats();
  }

 private:
  pisa::PisaSwitch dev_;
  controller::PisaFlowController ctl_;
  arch::ExecMode mode_;
};

class IpbmHarness : public Harness {
 public:
  enum class Mode { kInterp, kCompiled, kParallel };

  IpbmHarness(Mode mode, uint32_t workers,
              const ipbm::IpbmOptions& options = {},
              const compiler::Rp4bcOptions& compiler_options = {})
      : dev_(options), ctl_(dev_, compiler_options), mode_(mode),
        workers_(workers) {}

  Status Load(const CaseFile& c) override {
    telemetry::TelemetryConfig tc;
    tc.enabled = true;
    dev_.ConfigureTelemetry(tc);
    // kParallel runs the default specialized plan through the batch
    // executor; kCompiled pins the generic compiled-stage walk so both
    // executor structures stay covered.
    switch (mode_) {
      case Mode::kInterp:
        dev_.SetExecMode(arch::ExecMode::kInterpret);
        break;
      case Mode::kCompiled:
        dev_.SetExecMode(arch::ExecMode::kCompile);
        break;
      case Mode::kParallel:
        dev_.SetExecMode(arch::ExecMode::kSpecialize);
        break;
    }
    IPSA_ASSIGN_OR_RETURN(auto timing, ctl_.LoadBaseFromP4(c.p4_v1));
    (void)timing;
    return OkStatus();
  }

  Status ApplyEntry(const EntryOp& e) override {
    IPSA_ASSIGN_OR_RETURN(table::Entry entry, BuildEntryFor(ctl_.api(), e));
    return ctl_.AddEntry(e.table, entry);
  }

  Status Update(const CaseFile& c) override {
    if (c.script.empty()) return InvalidArgument("update op without script");
    controller::SnippetResolver resolver =
        [&c](const std::string&) -> Result<std::string> { return c.snippet; };
    IPSA_ASSIGN_OR_RETURN(auto timing, ctl_.ApplyScript(c.script, resolver));
    (void)timing;
    return OkStatus();
  }

  bool per_packet() const override { return mode_ != Mode::kParallel; }

  Result<PktResult> RunPacket(const PacketOp& p) override {
    net::Packet pkt{std::span<const uint8_t>(p.bytes)};
    IPSA_ASSIGN_OR_RETURN(auto r, dev_.Process(pkt, p.in_port));
    return ToPktResult<ipbm::IpbmSwitch>(r, pkt);
  }

  Status RunBatch(const std::vector<const PacketOp*>& pkts) override {
    for (const PacketOp* p : pkts) {
      if (p->in_port >= dev_.ports().count()) {
        // The per-packet configs count this as a processed packet with
        // whatever the pipeline does to an arbitrary port id; the generator
        // never emits out-of-range ports, so reject loudly if one appears.
        return InvalidArgument("packet op in_port out of range");
      }
      if (!dev_.ports().port(p->in_port).rx().Push(
              net::Packet{std::span<const uint8_t>(p->bytes)})) {
        return ResourceExhausted("rx queue overflow");
      }
    }
    IPSA_ASSIGN_OR_RETURN(uint32_t n, dev_.RunToCompletion(workers_));
    (void)n;
    return OkStatus();
  }

  const arch::TableCatalog& catalog() const override {
    return dev_.catalog();
  }
  net::PortSet& ports() override { return dev_.ports(); }
  uint64_t epoch() const override { return dev_.config_epoch(); }
  telemetry::Collector& collector() override { return dev_.telemetry(); }
  const telemetry::DeviceStats& device_stats() const override {
    return dev_.stats();
  }

 private:
  ipbm::IpbmSwitch dev_;
  controller::Rp4FlowController ctl_;
  Mode mode_;
  uint32_t workers_;
};

// Replays the whole op schedule through one configuration. Packets between
// non-packet ops form a "segment"; each segment is flushed before the next
// entry/update op so table hit/miss deltas line up across configurations
// even though pbm reloads reset the raw counters.
Result<ConfigRun> RunOne(Harness& h, std::string name, const CaseFile& c,
                         uint32_t workers) {
  (void)workers;
  ConfigRun run;
  run.name = std::move(name);
  IPSA_RETURN_IF_ERROR(h.Load(c));
  run.tx.resize(h.ports().count());
  IPSA_ASSIGN_OR_RETURN(TableStats baseline, ReadTableStats(h.catalog()));

  std::vector<const PacketOp*> pending;
  auto flush = [&]() -> Status {
    if (pending.empty()) {
      // Keep the segment structure without touching the device: an idle
      // RunToCompletion would still trigger EnsureCompiled/SetStages, which
      // a per-packet configuration with no traffic never does, and the
      // stage-slot vectors would compare unequal for spurious reasons.
      run.seg_deltas.push_back(TableStats{});
      return OkStatus();
    }
    if (h.per_packet()) {
      // Process in RX drain order: ports ascending, arrival order within a
      // port — the order RunToCompletion visits them, so TX streams and all
      // counters agree with the batch configuration bit for bit.
      std::vector<const PacketOp*> ordered = pending;
      std::stable_sort(ordered.begin(), ordered.end(),
                       [](const PacketOp* a, const PacketOp* b) {
                         return a->in_port < b->in_port;
                       });
      for (const PacketOp* p : ordered) {
        IPSA_ASSIGN_OR_RETURN(PktResult r, h.RunPacket(*p));
        if (!r.dropped && r.egress < h.ports().count()) {
          run.tx[r.egress].push_back(r.bytes);
        }
        run.pkts.push_back(std::move(r));
      }
    } else {
      IPSA_RETURN_IF_ERROR(h.RunBatch(pending));
      for (uint32_t port = 0; port < h.ports().count(); ++port) {
        while (auto pkt = h.ports().port(port).tx().Pop()) {
          auto bytes = pkt->bytes();
          run.tx[port].emplace_back(bytes.begin(), bytes.end());
        }
      }
    }
    pending.clear();
    IPSA_ASSIGN_OR_RETURN(TableStats current, ReadTableStats(h.catalog()));
    run.seg_deltas.push_back(Delta(baseline, current));
    baseline = std::move(current);
    return OkStatus();
  };

  for (const Op& op : c.ops) {
    if (op.kind == Op::Kind::kPacket) {
      pending.push_back(&op.packet);
      continue;
    }
    IPSA_RETURN_IF_ERROR(flush());
    if (op.kind == Op::Kind::kEntry) {
      IPSA_RETURN_IF_ERROR(h.ApplyEntry(op.entry));
    } else {
      uint64_t before = h.epoch();
      IPSA_RETURN_IF_ERROR(h.Update(c));
      run.epoch_delta = h.epoch() - before;
      run.saw_update = true;
    }
    // Re-baseline: a pbm reload just zeroed the raw counters (tables were
    // rebuilt), so deltas must restart from the post-op state everywhere.
    IPSA_ASSIGN_OR_RETURN(baseline, ReadTableStats(h.catalog()));
  }
  IPSA_RETURN_IF_ERROR(flush());

  if (telemetry::MetricsShard* shard = h.collector().shard()) {
    run.shard = *shard;
  }
  telemetry::MetricsSnapshot snap =
      h.collector().Snapshot(h.epoch(), h.device_stats());
  run.updates = snap.updates;
  run.device = h.device_stats();
  return run;
}

std::string HexDump(const std::vector<uint8_t>& bytes) {
  std::string out;
  char buf[4];
  for (uint8_t b : bytes) {
    std::snprintf(buf, sizeof buf, "%02x", b);
    out += buf;
  }
  return out;
}

// --- comparison matrix ------------------------------------------------------

std::string ComparePackets(const ConfigRun& a, const ConfigRun& b) {
  std::ostringstream out;
  if (a.pkts.size() != b.pkts.size()) {
    out << a.name << " processed " << a.pkts.size() << " packets, " << b.name
        << " processed " << b.pkts.size();
    return out.str();
  }
  for (size_t i = 0; i < a.pkts.size(); ++i) {
    const PktResult& pa = a.pkts[i];
    const PktResult& pb = b.pkts[i];
    if (pa.dropped != pb.dropped || pa.marked != pb.marked ||
        pa.egress != pb.egress || pa.bytes != pb.bytes) {
      out << "packet " << i << ": " << a.name << " (dropped=" << pa.dropped
          << " marked=" << pa.marked << " egress=" << pa.egress << " bytes="
          << HexDump(pa.bytes) << ") vs " << b.name
          << " (dropped=" << pb.dropped << " marked=" << pb.marked
          << " egress=" << pb.egress << " bytes=" << HexDump(pb.bytes) << ")";
      return out.str();
    }
  }
  return "";
}

std::string CompareCycles(const ConfigRun& a, const ConfigRun& b) {
  std::ostringstream out;
  for (size_t i = 0; i < a.pkts.size() && i < b.pkts.size(); ++i) {
    if (a.pkts[i].cycles != b.pkts[i].cycles) {
      out << "packet " << i << " cycles: " << a.name << "="
          << a.pkts[i].cycles << " vs " << b.name << "=" << b.pkts[i].cycles;
      return out.str();
    }
  }
  return "";
}

std::string CompareTx(const ConfigRun& a, const ConfigRun& b) {
  std::ostringstream out;
  if (a.tx.size() != b.tx.size()) {
    out << "port counts differ: " << a.name << "=" << a.tx.size() << " vs "
        << b.name << "=" << b.tx.size();
    return out.str();
  }
  for (size_t port = 0; port < a.tx.size(); ++port) {
    if (a.tx[port].size() != b.tx[port].size()) {
      out << "tx[" << port << "]: " << a.name << " sent "
          << a.tx[port].size() << " frames, " << b.name << " sent "
          << b.tx[port].size();
      return out.str();
    }
    for (size_t i = 0; i < a.tx[port].size(); ++i) {
      if (a.tx[port][i] != b.tx[port][i]) {
        out << "tx[" << port << "] frame " << i << ": " << a.name << "="
            << HexDump(a.tx[port][i]) << " vs " << b.name << "="
            << HexDump(b.tx[port][i]);
        return out.str();
      }
    }
  }
  return "";
}

std::string CompareSegments(const ConfigRun& a, const ConfigRun& b) {
  std::ostringstream out;
  if (a.seg_deltas.size() != b.seg_deltas.size()) {
    out << "segment counts differ: " << a.name << "=" << a.seg_deltas.size()
        << " vs " << b.name << "=" << b.seg_deltas.size();
    return out.str();
  }
  for (size_t s = 0; s < a.seg_deltas.size(); ++s) {
    if (a.seg_deltas[s] == b.seg_deltas[s]) continue;
    out << "segment " << s << " table hit/miss deltas differ (" << a.name
        << " vs " << b.name << "):";
    for (const auto& [name, counts] : a.seg_deltas[s]) {
      auto it = b.seg_deltas[s].find(name);
      std::pair<uint64_t, uint64_t> other =
          it == b.seg_deltas[s].end() ? std::pair<uint64_t, uint64_t>{0, 0}
                                      : it->second;
      if (counts != other) {
        out << " " << name << "=" << counts.first << "/" << counts.second
            << " vs " << other.first << "/" << other.second;
      }
    }
    return out.str();
  }
  return "";
}

std::string ComparePortCounters(const ConfigRun& a, const ConfigRun& b) {
  std::ostringstream out;
  size_t n = std::min(a.shard.ports.size(), b.shard.ports.size());
  for (size_t p = 0; p < n; ++p) {
    const telemetry::PortMetrics& ma = a.shard.ports[p];
    const telemetry::PortMetrics& mb = b.shard.ports[p];
    if (ma.packets_in != mb.packets_in || ma.packets_out != mb.packets_out ||
        ma.packets_dropped != mb.packets_dropped ||
        ma.packets_marked != mb.packets_marked) {
      out << "port " << p << " telemetry counters differ: " << a.name
          << " in/out/drop/mark=" << ma.packets_in << "/" << ma.packets_out
          << "/" << ma.packets_dropped << "/" << ma.packets_marked << " vs "
          << b.name << " " << mb.packets_in << "/" << mb.packets_out << "/"
          << mb.packets_dropped << "/" << mb.packets_marked;
      return out.str();
    }
  }
  return "";
}

std::string CompareDeviceCounters(const ConfigRun& a, const ConfigRun& b) {
  std::ostringstream out;
  if (a.device.packets_in != b.device.packets_in ||
      a.device.packets_out != b.device.packets_out ||
      a.device.packets_dropped != b.device.packets_dropped ||
      a.device.packets_marked != b.device.packets_marked) {
    out << "device counters differ: " << a.name << " in/out/drop/mark="
        << a.device.packets_in << "/" << a.device.packets_out << "/"
        << a.device.packets_dropped << "/" << a.device.packets_marked
        << " vs " << b.name << " " << b.device.packets_in << "/"
        << b.device.packets_out << "/" << b.device.packets_dropped << "/"
        << b.device.packets_marked;
  }
  return out.str();
}

// Largest `size = N;` declared in the case's programs. The rendered text is
// scanned (rather than threading GeneratedCase through) so replayed corpus
// files get the same pool sizing as freshly generated cases.
uint32_t MaxDeclaredTableSize(const CaseFile& c) {
  uint32_t max_size = 0;
  for (const std::string* text : {&c.p4_v1, &c.p4_v2}) {
    size_t at = 0;
    while ((at = text->find("size = ", at)) != std::string::npos) {
      at += 7;
      uint64_t v = 0;
      while (at < text->size() && (*text)[at] >= '0' && (*text)[at] <= '9' &&
             v < (1ull << 32)) {
        v = v * 10 + static_cast<uint64_t>((*text)[at] - '0');
        ++at;
      }
      max_size = std::max(
          max_size,
          static_cast<uint32_t>(std::min<uint64_t>(v, (1ull << 32) - 1)));
    }
  }
  return max_size;
}

}  // namespace

Result<DiffReport> RunCase(const CaseFile& c, const DiffOptions& options) {
  // Scoped fault flag so an early return (or a harness error) never leaks
  // the perturbation into subsequent cases.
  struct FaultGuard {
    explicit FaultGuard(bool on) : prev(arch::CompiledStageFaultEnabled()) {
      arch::SetCompiledStageFault(on);
    }
    ~FaultGuard() { arch::SetCompiledStageFault(prev); }
    bool prev;
  } guard(options.inject_fault);

  // Devices run at their default sizes unless the case declares a table too
  // big for the default pools (the million-entry sweep). Then the pools are
  // deepened to fit: ipbm grows its one shared pool by roughly the table's
  // footprint, while pbm must give EVERY stage cluster a full-size slice —
  // its memory is prorated per stage and the table's placement is the
  // compiler's choice, which is exactly the proration cost the paper
  // contrasts against. Stage counts drop to what generated programs can
  // need (4 ingress / 2 egress apply blocks, plus slack) to bound the
  // eager pool allocation.
  const uint32_t max_size = MaxDeclaredTableSize(c);
  pisa::PisaOptions pbm_options;
  compiler::PisaBackendOptions pbm_compiler;
  ipbm::IpbmOptions ipbm_options;
  compiler::Rp4bcOptions ipbm_compiler;
  if (max_size > 65536) {
    ipbm_options.sram_depth = 8192;
    ipbm_options.sram_blocks = max_size / 8192 + 32;
    ipbm_compiler.sram_depth = ipbm_options.sram_depth;
    ipbm_compiler.sram_blocks = ipbm_options.sram_blocks;
    pbm_options.physical_ingress_stages = 5;
    pbm_options.physical_egress_stages = 3;
    pbm_options.sram_depth = 16384;
    pbm_options.sram_blocks_per_stage = max_size / 16384 + 8;
    pbm_compiler.physical_ingress_stages = pbm_options.physical_ingress_stages;
    pbm_compiler.physical_egress_stages = pbm_options.physical_egress_stages;
    pbm_compiler.sram_depth = pbm_options.sram_depth;
    pbm_compiler.sram_blocks_per_stage = pbm_options.sram_blocks_per_stage;
  }

  PbmHarness pbm_i(arch::ExecMode::kInterpret, pbm_options, pbm_compiler);
  PbmHarness pbm_c(arch::ExecMode::kCompile, pbm_options, pbm_compiler);
  PbmHarness pbm_s(arch::ExecMode::kSpecialize, pbm_options, pbm_compiler);
  IpbmHarness ipbm_i(IpbmHarness::Mode::kInterp, options.parallel_workers,
                     ipbm_options, ipbm_compiler);
  IpbmHarness ipbm_c(IpbmHarness::Mode::kCompiled, options.parallel_workers,
                     ipbm_options, ipbm_compiler);
  IpbmHarness ipbm_p(IpbmHarness::Mode::kParallel, options.parallel_workers,
                     ipbm_options, ipbm_compiler);

  std::vector<std::pair<Harness*, std::string>> configs = {
      {&pbm_i, "pbm-interp"},   {&pbm_c, "pbm-compiled"},
      {&pbm_s, "pbm-spec"},     {&ipbm_i, "ipbm-interp"},
      {&ipbm_c, "ipbm-compiled"}, {&ipbm_p, "ipbm-parallel"},
  };

  std::vector<ConfigRun> runs;
  runs.reserve(configs.size());
  for (auto& [harness, name] : configs) {
    auto run = RunOne(*harness, name, c, options.parallel_workers);
    if (!run.ok()) {
      return Status(run.status().code(),
                    name + ": " + std::string(run.status().message()));
    }
    runs.push_back(std::move(*run));
  }

  DiffReport report;
  auto fail = [&](std::string detail) {
    if (!report.diverged) {
      report.diverged = true;
      report.detail = std::move(detail);
    }
  };

  // Per-packet results across the five per-packet configurations
  // (ipbm-parallel reorders completion, so it is excluded here and held to
  // the stream-level comparisons below).
  const size_t kPerPacket[] = {0, 1, 2, 3, 4};
  for (size_t i = 1; i < std::size(kPerPacket); ++i) {
    if (std::string d = ComparePackets(runs[kPerPacket[0]], runs[kPerPacket[i]]);
        !d.empty()) {
      fail(d);
      return report;
    }
  }
  // Cycle counts must match within an architecture (the compiled and
  // specialized fast paths charge exactly the interpreter's cycle model).
  if (std::string d = CompareCycles(runs[0], runs[1]); !d.empty()) {
    fail(d);
    return report;
  }
  if (std::string d = CompareCycles(runs[0], runs[2]); !d.empty()) {
    fail(d);
    return report;
  }
  if (std::string d = CompareCycles(runs[3], runs[4]); !d.empty()) {
    fail(d);
    return report;
  }
  // TX streams, per-segment table deltas, and aggregate packet counters
  // across all six configurations.
  for (size_t i = 1; i < runs.size(); ++i) {
    if (std::string d = CompareTx(runs[0], runs[i]); !d.empty()) {
      fail(d);
      return report;
    }
    if (std::string d = CompareSegments(runs[0], runs[i]); !d.empty()) {
      fail(d);
      return report;
    }
    if (std::string d = ComparePortCounters(runs[0], runs[i]); !d.empty()) {
      fail(d);
      return report;
    }
    if (std::string d = CompareDeviceCounters(runs[0], runs[i]); !d.empty()) {
      fail(d);
      return report;
    }
  }
  // Full telemetry shard equality (cycle histograms included) within an
  // architecture: all three pbm and all three ipbm configurations.
  if (!(runs[0].shard == runs[1].shard)) {
    fail("pbm telemetry shards differ between interpreter and compiled");
    return report;
  }
  if (!(runs[0].shard == runs[2].shard)) {
    fail("pbm telemetry shards differ between interpreter and specialized");
    return report;
  }
  if (!(runs[3].shard == runs[4].shard)) {
    fail("ipbm telemetry shards differ between interpreter and compiled");
    return report;
  }
  if (!(runs[3].shard == runs[5].shard)) {
    fail("ipbm telemetry shards differ between serial and parallel");
    return report;
  }
  // Update visibility: every configuration that saw the update op must have
  // advanced its config epoch and recorded an update window; the advance is
  // identical within an architecture (same command sequence).
  for (const ConfigRun& r : runs) {
    if (!r.saw_update) continue;
    if (r.epoch_delta == 0) {
      fail(r.name + ": config epoch did not advance across the update");
      return report;
    }
    if (r.updates == 0) {
      fail(r.name + ": telemetry recorded no update window");
      return report;
    }
  }
  if (runs[0].saw_update && (runs[0].epoch_delta != runs[1].epoch_delta ||
                             runs[0].epoch_delta != runs[2].epoch_delta)) {
    fail("pbm configs disagree on epoch advance across the update");
    return report;
  }
  if (runs[3].saw_update && (runs[3].epoch_delta != runs[4].epoch_delta ||
                             runs[3].epoch_delta != runs[5].epoch_delta)) {
    fail("ipbm configs disagree on epoch advance across the update");
    return report;
  }
  if (runs[0].updates != runs[1].updates || runs[0].updates != runs[2].updates) {
    fail("pbm configs disagree on telemetry update count");
    return report;
  }
  if (runs[3].updates != runs[4].updates || runs[3].updates != runs[5].updates) {
    fail("ipbm configs disagree on telemetry update count");
    return report;
  }
  return report;
}

bool CaseFails(const CaseFile& c, const DiffOptions& options) {
  auto report = RunCase(c, options);
  if (!report.ok()) return true;
  return report->diverged;
}

namespace {

// --- shrinking ---------------------------------------------------------------

// True when the mutated spec still renders AND still fails: only then is the
// mutation kept. A mutation that breaks rendering is simply rejected.
bool StillFails(const GeneratedCase& g, const DiffOptions& options) {
  auto rendered = RenderCase(g);
  if (!rendered.ok()) return false;
  return CaseFails(*rendered, options);
}

GeneratedCase DropOpAt(const GeneratedCase& g, size_t index) {
  GeneratedCase out = g;
  out.ops.erase(out.ops.begin() + static_cast<ptrdiff_t>(index));
  return out;
}

bool HasUpdateOp(const GeneratedCase& g) {
  for (const Op& op : g.ops) {
    if (op.kind == Op::Kind::kUpdate) return true;
  }
  return false;
}

void DropUpdateOps(GeneratedCase& g) {
  std::vector<Op> kept;
  for (Op& op : g.ops) {
    if (op.kind != Op::Kind::kUpdate) kept.push_back(std::move(op));
  }
  g.ops = std::move(kept);
}

// Removes apply block `block_index` from the given control, along with its
// tables, every entry op addressing them, and — when the versioned action
// lives there — the update op (which could no longer render a snippet).
GeneratedCase DropBlock(const GeneratedCase& g, bool egress,
                        size_t block_index) {
  GeneratedCase out = g;
  ControlSpec& ctl = egress ? out.spec.egress : out.spec.ingress;

  std::vector<int> doomed = ctl.blocks[block_index].tables;
  std::sort(doomed.begin(), doomed.end());
  bool drops_versioned = false;
  std::vector<std::string> doomed_names;
  for (int t : doomed) {
    doomed_names.push_back(ctl.tables[t].name);
    for (const ActionSpec& a : ctl.tables[t].actions) {
      drops_versioned |= a.versioned;
    }
  }

  ctl.blocks.erase(ctl.blocks.begin() + static_cast<ptrdiff_t>(block_index));
  for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
    ctl.tables.erase(ctl.tables.begin() + *it);
  }
  // Remap surviving blocks' table indices past the removed tables.
  for (ApplyBlock& b : ctl.blocks) {
    for (int& t : b.tables) {
      int shift = 0;
      for (int d : doomed) {
        if (d < t) ++shift;
      }
      t -= shift;
    }
  }
  std::vector<Op> kept;
  for (Op& op : out.ops) {
    if (op.kind == Op::Kind::kEntry &&
        std::find(doomed_names.begin(), doomed_names.end(), op.entry.table) !=
            doomed_names.end()) {
      continue;
    }
    if (op.kind == Op::Kind::kUpdate && drops_versioned) continue;
    kept.push_back(std::move(op));
  }
  out.ops = std::move(kept);
  return out;
}

// Removes leaf header `index` (no children, no table scoped to it). Parent
// and scope indices above it shift down by one; instance names are stable so
// rendered references stay valid.
GeneratedCase DropHeader(const GeneratedCase& g, size_t index) {
  GeneratedCase out = g;
  out.spec.headers.erase(out.spec.headers.begin() +
                         static_cast<ptrdiff_t>(index));
  int idx = static_cast<int>(index);
  for (HeaderSpec& h : out.spec.headers) {
    if (h.parent > idx) --h.parent;
  }
  for (ControlSpec* ctl : {&out.spec.ingress, &out.spec.egress}) {
    for (TableSpec& t : ctl->tables) {
      if (t.scope > idx) --t.scope;
    }
  }
  return out;
}

bool HeaderIsDroppable(const ProgramSpec& spec, size_t index) {
  if (index == 0) return false;  // entry header anchors the parse graph
  int idx = static_cast<int>(index);
  for (const HeaderSpec& h : spec.headers) {
    if (h.parent == idx) return false;
  }
  for (const ControlSpec* ctl : {&spec.ingress, &spec.egress}) {
    for (const TableSpec& t : ctl->tables) {
      if (t.scope == idx) return false;
    }
  }
  return true;
}

}  // namespace

Result<CaseFile> ShrinkCase(const GeneratedCase& gen,
                            const DiffOptions& options) {
  GeneratedCase cur = gen;
  if (!StillFails(cur, options)) {
    return InvalidArgument("case passed to ShrinkCase does not fail");
  }

  bool changed = true;
  while (changed) {
    changed = false;

    // 0. Declared table sizes: a repro that fails with a 64-entry table is
    // far cheaper to replay than one needing million-entry pools, and doing
    // this first makes every later shrink trial cheap too.
    for (bool egress : {false, true}) {
      size_t ntables =
          (egress ? cur.spec.egress : cur.spec.ingress).tables.size();
      for (size_t t = 0; t < ntables; ++t) {
        ControlSpec& ctl = egress ? cur.spec.egress : cur.spec.ingress;
        if (ctl.tables[t].size <= 64) continue;
        GeneratedCase trial = cur;
        (egress ? trial.spec.egress : trial.spec.ingress).tables[t].size = 64;
        if (StillFails(trial, options)) {
          cur = std::move(trial);
          changed = true;
        }
      }
    }

    // 1. The update op (with its whole snippet machinery).
    if (HasUpdateOp(cur)) {
      GeneratedCase trial = cur;
      DropUpdateOps(trial);
      if (StillFails(trial, options)) {
        cur = std::move(trial);
        changed = true;
      }
    }

    // 2. Individual packet ops, then entry ops (descending keeps indices
    // stable while erasing).
    for (Op::Kind kind : {Op::Kind::kPacket, Op::Kind::kEntry}) {
      for (size_t i = cur.ops.size(); i-- > 0;) {
        if (cur.ops[i].kind != kind) continue;
        GeneratedCase trial = DropOpAt(cur, i);
        if (StillFails(trial, options)) {
          cur = std::move(trial);
          changed = true;
        }
      }
    }

    // 3. Whole apply blocks with their tables and entries.
    for (bool egress : {false, true}) {
      const ControlSpec& ctl = egress ? cur.spec.egress : cur.spec.ingress;
      for (size_t b = ctl.blocks.size(); b-- > 0;) {
        // A control must keep at least one block to stay renderable.
        const ControlSpec& now = egress ? cur.spec.egress : cur.spec.ingress;
        if (now.blocks.size() <= 1 || b >= now.blocks.size()) continue;
        GeneratedCase trial = DropBlock(cur, egress, b);
        if (StillFails(trial, options)) {
          cur = std::move(trial);
          changed = true;
        }
      }
    }

    // 4. Unreferenced leaf headers.
    for (size_t hdr = cur.spec.headers.size(); hdr-- > 0;) {
      if (!HeaderIsDroppable(cur.spec, hdr)) continue;
      GeneratedCase trial = DropHeader(cur, hdr);
      if (StillFails(trial, options)) {
        cur = std::move(trial);
        changed = true;
      }
    }
  }
  return RenderCase(cur);
}

}  // namespace ipsa::testing
