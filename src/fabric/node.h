// Fabric node abstraction: one switch under fabric control.
//
// Both flavors expose the identical control surface (the rpc::Backend verbs
// the controller already speaks) plus the three data-plane hooks the fabric
// driver needs: inject into a port's RX, drain to quiescence, and collect
// everything that egressed. LocalNode hosts a DeviceBackend in-process;
// RemoteNode attaches to a running switchd over its TCP control channel and
// per-port UDP packet plane — registering itself as every port's packet-out
// peer with zero-length datagrams, exactly like any other switchd consumer.
#pragma once

#include <netinet/in.h>

#include <memory>
#include <string>
#include <vector>

#include "daemon/backends.h"
#include "rpc/client.h"
#include "wire/socket.h"

namespace ipsa::fabric {

class FabricNode {
 public:
  virtual ~FabricNode() = default;

  const std::string& name() const { return name_; }
  daemon::ArchKind arch() const { return arch_; }
  uint32_t port_count() const { return port_count_; }

  // --- control plane ------------------------------------------------------
  virtual Result<rpc::InstallOutcome> Install(rpc::InstallKind kind,
                                              const std::string& source) = 0;
  virtual Status ApplyTableOp(const rpc::TableOp& op) = 0;
  virtual Result<compiler::ApiSpec> Api() = 0;
  virtual Result<rpc::StatsResponse> QueryStats() = 0;
  virtual Result<rpc::MetricsResponse> QueryMetrics() = 0;
  virtual Result<uint64_t> QueryEpoch() = 0;
  // Turns the node's metric collection on (closed-loop control needs the
  // per-port counters). Local nodes configure the collector directly; a
  // remote switchd owns its own config, so the remote flavor just verifies
  // the daemon is already collecting.
  virtual Status EnableTelemetry() = 0;

  // --- data plane ---------------------------------------------------------
  // Queues a copy of `packet` into `port`'s RX. Returns false when the
  // queue refused it (bounded-FIFO overflow) — an accounted drop.
  virtual Result<bool> InjectRx(uint32_t port, const net::Packet& packet) = 0;
  // Processes everything pending and appends all egressed packets to `tx`.
  virtual Status DrainAndCollect(std::vector<daemon::TxPacket>& tx) = 0;
  // Packets injected but not yet drained (0 after DrainAndCollect).
  virtual uint32_t PendingRx() = 0;

 protected:
  FabricNode(std::string name, daemon::ArchKind arch, uint32_t port_count)
      : name_(std::move(name)), arch_(arch), port_count_(port_count) {}

  std::string name_;
  daemon::ArchKind arch_;
  uint32_t port_count_;
};

// An in-process behavioral switch (the same DeviceBackend switchd hosts).
class LocalNode : public FabricNode {
 public:
  LocalNode(std::string name, daemon::ArchKind arch, uint32_t port_count,
            uint32_t drain_workers = 1);

  Result<rpc::InstallOutcome> Install(rpc::InstallKind kind,
                                      const std::string& source) override;
  Status ApplyTableOp(const rpc::TableOp& op) override;
  Result<compiler::ApiSpec> Api() override;
  Result<rpc::StatsResponse> QueryStats() override;
  Result<rpc::MetricsResponse> QueryMetrics() override;
  Result<uint64_t> QueryEpoch() override;
  Status EnableTelemetry() override;

  Result<bool> InjectRx(uint32_t port, const net::Packet& packet) override;
  Status DrainAndCollect(std::vector<daemon::TxPacket>& tx) override;
  uint32_t PendingRx() override;

  daemon::DeviceBackend& backend() { return *backend_; }

 private:
  std::unique_ptr<daemon::DeviceBackend> backend_;
  uint32_t drain_workers_;
};

// A node attached to a running switchd. Control goes over the blocking RPC
// client; packets go over one UDP socket per device port. DrainAndCollect
// waits (via the stats RPC) until the daemon has consumed everything this
// node injected, then receives exactly the packets_out delta back.
class RemoteNode : public FabricNode {
 public:
  // Connects and registers as packet-out peer of ports 0..udp_ports.size()-1.
  static Result<std::unique_ptr<RemoteNode>> Connect(
      std::string name, const std::string& host, uint16_t control_port,
      std::vector<uint16_t> udp_ports, int io_timeout_ms = 5000);

  Result<rpc::InstallOutcome> Install(rpc::InstallKind kind,
                                      const std::string& source) override;
  Status ApplyTableOp(const rpc::TableOp& op) override;
  Result<compiler::ApiSpec> Api() override;
  Result<rpc::StatsResponse> QueryStats() override;
  Result<rpc::MetricsResponse> QueryMetrics() override;
  Result<uint64_t> QueryEpoch() override;
  Status EnableTelemetry() override;

  Result<bool> InjectRx(uint32_t port, const net::Packet& packet) override;
  Status DrainAndCollect(std::vector<daemon::TxPacket>& tx) override;
  uint32_t PendingRx() override;

 private:
  RemoteNode(std::string name, daemon::ArchKind arch, uint32_t port_count,
             int io_timeout_ms);

  Status SendTo(uint32_t port, std::span<const uint8_t> bytes);

  std::unique_ptr<rpc::Client> client_;
  std::vector<wire::Socket> socks_;     // one per exposed device port
  std::vector<sockaddr_in> daemon_addr_;
  int io_timeout_ms_;
  uint32_t pending_injected_ = 0;
  uint64_t last_packets_in_ = 0;
  uint64_t last_packets_out_ = 0;
};

}  // namespace ipsa::fabric
