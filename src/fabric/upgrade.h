// Rolling in-situ upgrade orchestrator (the paper's headline capability,
// scaled out): install a new rP4 template across a running fabric one
// switch at a time, keeping traffic flowing throughout.
//
// Between every per-switch install the orchestrator drives caller-supplied
// traffic rounds and lets the delivery oracle account each one — so the
// partial-deployment window (some switches upgraded, some not) is exactly
// the state under test. The upgrade passes only if zero packets were lost
// or blackholed across the whole window and, when the fabric runs with
// shadow twins, every switch's TX stayed bit-identical to its
// interpreter-pinned differential oracle.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fabric/fabric.h"

namespace ipsa::fabric {

struct UpgradeSpec {
  rpc::InstallKind kind = rpc::InstallKind::kScript;
  std::string source;
  // Traffic rounds driven after each switch's install (the
  // partial-deployment probe) — each round must leave the fabric quiescent.
  uint32_t traffic_rounds_per_step = 1;
};

struct UpgradeReport {
  uint32_t nodes_upgraded = 0;
  double wall_ms = 0;
  OracleReport oracle;                 // the whole upgrade window
  std::vector<uint64_t> epochs_after;  // per node, post-install
};

using TrafficRound = std::function<Status(Fabric&)>;

// Upgrades every node in index order. Fails fast if any intermediate
// oracle check reports loss — the report up to that point is lost, the
// status message says which node's window broke.
Result<UpgradeReport> RollingUpgrade(Fabric& fabric, const UpgradeSpec& spec,
                                     const TrafficRound& traffic_round);

}  // namespace ipsa::fabric
