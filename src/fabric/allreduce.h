// SwitchML-style in-network allreduce over the fabric harness.
//
// Workers are fabric hosts; one switch (the collector's leaf) carries the
// in-situ-spliced aggregation stage (controller::designs::AllreduceRp4Snippet,
// docs/compute.md). Every worker sends one contribution packet per chunk
// slot, addressed to the collector host; the aggregation stage accumulates
// sat_add(acc, fxp_quantize(v, shift)) into per-slot registers, tracks a
// per-slot worker bitmap for exactly-once handling of retransmits, and
// rewrites the slot-completing contribution into the result packet
// (op = 2, dequantized aggregates), which the base design then delivers to
// the collector. Non-final contributions drop at the device, so the fabric
// conservation oracle still balances; a duplicate arriving after completion
// re-emits the result, which is what makes a lost result packet repairable
// by retransmit.
//
// The wire format rides IPv4 protocol 153: eth(14) + ipv4(20) + alr(36).
// The alr header embeds the fabric flow tag (flow_tag.h) at packet offset
// 42 — exactly where the oracle looks — in fields the pipeline never
// touches, so contributions and results stay accountable end to end.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "fabric/leaf_spine.h"

namespace ipsa::fabric {

// --- wire format -------------------------------------------------------------

inline constexpr uint8_t kAlrIpProto = 153;  // RFC 3692 experimentation
inline constexpr uint16_t kAlrOpContribute = 1;
inline constexpr uint16_t kAlrOpResult = 2;
inline constexpr size_t kAlrHeaderOffset = 34;  // eth + ipv4
inline constexpr size_t kAlrHeaderBytes = 36;
inline constexpr size_t kAlrPacketBytes = kAlrHeaderOffset + kAlrHeaderBytes;
inline constexpr uint32_t kAlrMaxSlots = 256;  // register depth in the snippet

struct AlrFields {
  uint16_t op = 0;
  uint16_t slot = 0;
  uint16_t worker = 0;
  uint16_t shift = 0;
  uint64_t v0 = 0;
  uint64_t v1 = 0;
};

// Parses an allreduce packet (any op). Returns nullopt unless the frame is
// IPv4 proto 153 and long enough. The embedded flow-tag words are skipped.
std::optional<AlrFields> ParseAlrPacket(std::span<const uint8_t> bytes);

// --- host-side golden arithmetic ---------------------------------------------
// Bit-exact mirrors of the width-64 extern semantics (src/arch/expr.cc);
// tests and benches reduce with these and demand equality with the switch.

inline uint64_t SatAdd64(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s < a ? ~0ull : s;
}
inline uint64_t FxpQuantize64(uint64_t x, uint64_t s) {
  if (x == 0) return 0;
  if (s >= 64) return ~0ull;
  return x > (~0ull >> s) ? ~0ull : (x << s);
}
inline uint64_t FxpDequantize64(uint64_t x, uint64_t s) {
  if (s == 0) return x;
  if (s > 64) return 0;
  uint64_t q = s == 64 ? 0 : x >> s;
  return q + ((x >> (s - 1)) & 1);
}

// --- job driver --------------------------------------------------------------

struct AllreduceOptions {
  uint32_t slots = 8;    // <= kAlrMaxSlots (one register slot per chunk slot)
  uint32_t shift = 0;    // fixed-point scale shift carried by every packet
  uint32_t collector_leaf = 0;
  uint32_t collector_host = 0;
  uint32_t max_rounds = 64;  // retransmit rounds before giving up
};

struct AlrResult {
  uint64_t v0 = 0;
  uint64_t v1 = 0;
  uint32_t copies = 0;  // result deliveries seen (dups re-emit the result)
};

struct AllreduceRunStats {
  uint32_t rounds = 0;         // injection rounds (1 == lossless)
  uint64_t contributions = 0;  // packets injected, retransmits included
  uint64_t results = 0;        // result packets delivered at the collector
};

// Drives one allreduce job over an existing LeafSpine (whose FabricOptions
// must have capture_host_rx set so results can be read back). Workers are
// every host except the collector, densely numbered in (leaf, host) order;
// at most 64 of them (the bitmap register is 64 bits wide).
class AllreduceJob {
 public:
  AllreduceJob(LeafSpine& ls, AllreduceOptions options);

  // Splices the aggregation stage into the collector's leaf (script install,
  // no reload) and installs the alr_ctl entry carrying the full-worker mask.
  Status InstallAggregation();
  // Mid-job in-situ update to the v2 template (duplicate counting); the
  // aggregation registers survive.
  Status SpliceV2();

  uint32_t worker_count() const { return static_cast<uint32_t>(workers_.size()); }
  uint32_t aggregation_node() const;

  // Deterministic per-(worker, slot, lane) contribution value; mixes in
  // high-magnitude values so saturation actually fires.
  static uint64_t ContributionValue(uint32_t worker, uint32_t slot,
                                    uint32_t lane);

  // Injects worker's contribution for `slot` (seq distinguishes retransmits
  // of the same contribution — the values are identical by construction).
  Status InjectContribution(uint32_t worker, uint32_t slot, uint32_t seq);

  // Drains the collector's captured RX and folds any op=2 packets into the
  // result map. Fails if two result copies for one slot disagree.
  Status CollectResults();
  const std::map<uint32_t, AlrResult>& results() const { return results_; }

  // Golden host-side reduction for one slot, same arithmetic as the switch.
  uint64_t GoldenValue(uint32_t slot, uint32_t lane) const;

  // Runs slots [slot_begin, slot_end): every worker contributes to every
  // slot, lost contributions/results are repaired by retransmitting
  // incomplete slots, until every slot's result arrived or max_rounds is
  // hit. Call in pieces to interleave control-plane work (e.g. SpliceV2)
  // mid-job.
  Result<AllreduceRunStats> RunRange(uint32_t slot_begin, uint32_t slot_end);
  // The whole job in one call.
  Result<AllreduceRunStats> Run() { return RunRange(0, options_.slots); }

 private:
  net::Packet MakeContribution(uint32_t worker, uint32_t slot,
                               uint32_t seq) const;

  LeafSpine& ls_;
  AllreduceOptions options_;
  struct Worker {
    uint32_t leaf = 0;
    uint32_t host = 0;
  };
  std::vector<Worker> workers_;
  uint32_t collector_index_ = 0;
  std::map<uint32_t, AlrResult> results_;
};

}  // namespace ipsa::fabric
