#include "fabric/leaf_spine.h"

#include <string>
#include <utility>

#include "controller/designs.h"
#include "controller/runtime_api.h"
#include "fabric/flow_tag.h"
#include "net/headers.h"
#include "net/packet_builder.h"

namespace ipsa::fabric {

namespace {

constexpr uint16_t kL2Bd = LeafSpine::kL2Bd;
constexpr uint16_t kL3Bd = LeafSpine::kL3Bd;
// Cross-leaf routes resolve to this reserved nexthop id, which has no
// nexthop-table entry — the miss preserves fab_set_spine's bd/DMAC choice
// (local routes' real nexthops overwrite it). See designs.h.
constexpr uint32_t kUplinkNexthop = 200;

uint32_t LeafPrefix(uint32_t l) { return (10u << 24) | ((l + 1) << 16); }

}  // namespace

Topology MakeLeafSpineTopology(const LeafSpineOptions& options) {
  Topology topo;
  const uint32_t L = options.leaves, S = options.spines,
                 H = options.hosts_per_leaf;
  for (uint32_t l = 0; l < L; ++l) {
    NodeSpec spec;
    spec.name = "leaf" + std::to_string(l);
    spec.arch = options.arch;
    spec.port_count = H + S;
    topo.nodes.push_back(std::move(spec));
  }
  for (uint32_t s = 0; s < S; ++s) {
    NodeSpec spec;
    spec.name = "spine" + std::to_string(s);
    spec.arch = options.arch;
    spec.port_count = L;
    topo.nodes.push_back(std::move(spec));
  }
  for (uint32_t l = 0; l < L; ++l) {
    for (uint32_t s = 0; s < S; ++s) {
      LinkSpec link;
      link.a = {l, H + s};
      link.b = {L + s, l};
      link.delay_steps = options.uplink_delay_steps;
      link.loss = options.uplink_loss;
      topo.links.push_back(link);
    }
  }
  for (uint32_t l = 0; l < L; ++l) {
    for (uint32_t h = 0; h < H; ++h) {
      HostSpec host;
      host.name = "h" + std::to_string(l) + "-" + std::to_string(h);
      host.attach = {l, h};
      host.ipv4 = LeafSpine::HostIp(l, h);
      host.mac = LeafSpine::HostMac(l, h);
      topo.hosts.push_back(std::move(host));
    }
  }
  return topo;
}

Result<std::unique_ptr<LeafSpine>> LeafSpine::Create(
    const LeafSpineOptions& options) {
  std::unique_ptr<LeafSpine> ls(new LeafSpine(options));
  IPSA_ASSIGN_OR_RETURN(
      ls->fabric_,
      Fabric::Build(MakeLeafSpineTopology(options), options.fabric));
  IPSA_RETURN_IF_ERROR(ls->InstallAndPopulate());
  return ls;
}

Result<uint32_t> LeafSpine::SpineLink(uint32_t l, uint32_t s) const {
  return fabric_->FindLink({LeafNode(l), UplinkPort(s)}, {SpineNode(s), l});
}

Status LeafSpine::InstallAndPopulate() {
  using controller::designs::BaseP4;
  using controller::designs::FabricEcmpScript;
  IPSA_RETURN_IF_ERROR(
      fabric_->InstallAll(rpc::InstallKind::kBaseP4, BaseP4()));
  for (uint32_t l = 0; l < options_.leaves; ++l) {
    IPSA_RETURN_IF_ERROR(
        fabric_->InstallOn(l, rpc::InstallKind::kScript, FabricEcmpScript())
            .status());
  }
  for (uint32_t l = 0; l < options_.leaves; ++l) {
    IPSA_RETURN_IF_ERROR(PopulateLeaf(l));
  }
  for (uint32_t s = 0; s < options_.spines; ++s) {
    IPSA_RETURN_IF_ERROR(PopulateSpine(s));
  }
  return fabric_->BeginWindow();
}

namespace {

// Entries every switch needs: port/interface mapping, bridge binding, the
// switch's own router MAC routing, and the L3 SMAC rewrite.
Status PopulateCommon(Fabric& fabric, uint32_t node, uint32_t port_count,
                      uint64_t router_mac,
                      const controller::EntryBuilder& builder) {
  using controller::Bits;
  using controller::KeyValue;
  using controller::MacBits;
  auto add = [&fabric, node](const std::string& table,
                             Result<table::Entry> entry) -> Status {
    IPSA_RETURN_IF_ERROR(entry.status());
    return fabric.ApplyTableOp(
        node, rpc::TableOp{.op = rpc::TableOpKind::kAdd,
                           .table = table,
                           .entry = std::move(entry).value()});
  };
  for (uint32_t p = 0; p < port_count; ++p) {
    IPSA_RETURN_IF_ERROR(add(
        "port_map", builder.Build("port_map", "set_if_index", {KeyValue(p)},
                                  {Bits(16, p + 1)})));
    IPSA_RETURN_IF_ERROR(
        add("bridge_vrf",
            builder.Build("bridge_vrf", "set_bd_vrf", {KeyValue(p + 1)},
                          {Bits(16, kL2Bd), Bits(16, 1)})));
  }
  IPSA_RETURN_IF_ERROR(
      add("l2_l3", builder.Build("l2_l3", "set_l3",
                                 {KeyValue(MacBits(router_mac))}, {})));
  IPSA_RETURN_IF_ERROR(
      add("l2_l3_rewrite",
          builder.Build("l2_l3_rewrite", "rewrite_v4", {KeyValue(kL3Bd)},
                        {MacBits(router_mac)})));
  return OkStatus();
}

}  // namespace

Status LeafSpine::PopulateLeaf(uint32_t l) {
  using controller::Bits;
  using controller::Ipv4Bits;
  using controller::KeyValue;
  using controller::MacBits;
  const uint32_t node = LeafNode(l);
  IPSA_ASSIGN_OR_RETURN(compiler::ApiSpec api, fabric_->node(node).Api());
  controller::EntryBuilder builder(api);
  auto add = [this, node](const std::string& table,
                          Result<table::Entry> entry) -> Status {
    IPSA_RETURN_IF_ERROR(entry.status());
    return fabric_->ApplyTableOp(
        node, rpc::TableOp{.op = rpc::TableOpKind::kAdd,
                           .table = table,
                           .entry = std::move(entry).value()});
  };
  IPSA_RETURN_IF_ERROR(PopulateCommon(*fabric_, node,
                                      options_.hosts_per_leaf + options_.spines,
                                      LeafMac(l), builder));

  // Local hosts: /32 route -> real nexthop -> host DMAC -> host port.
  for (uint32_t h = 0; h < options_.hosts_per_leaf; ++h) {
    IPSA_RETURN_IF_ERROR(
        add("ipv4_lpm",
            builder.Build("ipv4_lpm", "set_nexthop",
                          {KeyValue(Ipv4Bits(HostIp(l, h)))},
                          {Bits(16, 100 + h)}, /*prefix_len=*/32)));
    IPSA_RETURN_IF_ERROR(
        add("nexthop",
            builder.Build("nexthop", "set_nh_bd_dmac", {KeyValue(100 + h)},
                          {Bits(16, kL3Bd), MacBits(HostMac(l, h))})));
    IPSA_RETURN_IF_ERROR(add(
        "dmac", builder.Build("dmac", "set_port",
                              {KeyValue(kL3Bd), KeyValue(MacBits(HostMac(l, h)))},
                              {Bits(9, h)})));
  }
  // Remote leaves: /16 to the reserved uplink nexthop (resolved by ECMP).
  for (uint32_t peer = 0; peer < options_.leaves; ++peer) {
    if (peer == l) continue;
    IPSA_RETURN_IF_ERROR(
        add("ipv4_lpm",
            builder.Build("ipv4_lpm", "set_nexthop",
                          {KeyValue(Ipv4Bits(LeafPrefix(peer)))},
                          {Bits(16, kUplinkNexthop)}, /*prefix_len=*/16)));
  }
  // ECMP buckets over the spines, and spine DMAC -> uplink port.
  for (uint32_t s = 0; s < options_.spines; ++s) {
    IPSA_RETURN_IF_ERROR(MutateSpineBuckets(l, s, /*add=*/true));
    IPSA_RETURN_IF_ERROR(add(
        "dmac", builder.Build("dmac", "set_port",
                              {KeyValue(kL3Bd), KeyValue(MacBits(SpineMac(s)))},
                              {Bits(9, UplinkPort(s))})));
  }
  return OkStatus();
}

Status LeafSpine::PopulateSpine(uint32_t s) {
  using controller::Bits;
  using controller::Ipv4Bits;
  using controller::KeyValue;
  using controller::MacBits;
  const uint32_t node = SpineNode(s);
  IPSA_ASSIGN_OR_RETURN(compiler::ApiSpec api, fabric_->node(node).Api());
  controller::EntryBuilder builder(api);
  auto add = [this, node](const std::string& table,
                          Result<table::Entry> entry) -> Status {
    IPSA_RETURN_IF_ERROR(entry.status());
    return fabric_->ApplyTableOp(
        node, rpc::TableOp{.op = rpc::TableOpKind::kAdd,
                           .table = table,
                           .entry = std::move(entry).value()});
  };
  IPSA_RETURN_IF_ERROR(
      PopulateCommon(*fabric_, node, options_.leaves, SpineMac(s), builder));

  // One /16 per leaf, straight down the matching port.
  for (uint32_t l = 0; l < options_.leaves; ++l) {
    IPSA_RETURN_IF_ERROR(
        add("ipv4_lpm",
            builder.Build("ipv4_lpm", "set_nexthop",
                          {KeyValue(Ipv4Bits(LeafPrefix(l)))},
                          {Bits(16, 100 + l)}, /*prefix_len=*/16)));
    IPSA_RETURN_IF_ERROR(
        add("nexthop",
            builder.Build("nexthop", "set_nh_bd_dmac", {KeyValue(100 + l)},
                          {Bits(16, kL3Bd), MacBits(LeafMac(l))})));
    IPSA_RETURN_IF_ERROR(add(
        "dmac", builder.Build("dmac", "set_port",
                              {KeyValue(kL3Bd), KeyValue(MacBits(LeafMac(l)))},
                              {Bits(9, l)})));
  }
  return OkStatus();
}

Status LeafSpine::MutateSpineBuckets(uint32_t l, uint32_t s, bool add) {
  using controller::Bits;
  using controller::MacBits;
  const uint32_t node = LeafNode(l);
  IPSA_ASSIGN_OR_RETURN(compiler::ApiSpec api, fabric_->node(node).Api());
  controller::EntryBuilder builder(api);
  for (uint32_t b = 0; b < options_.ecmp_buckets; ++b) {
    if (b % options_.spines != s) continue;
    IPSA_ASSIGN_OR_RETURN(
        table::Entry entry,
        builder.BuildSelectorMember("fab_ecmp_v4", b, "fab_set_spine",
                                    {Bits(16, kL3Bd), MacBits(SpineMac(s))}));
    IPSA_RETURN_IF_ERROR(fabric_->ApplyTableOp(
        node,
        rpc::TableOp{.op = add ? rpc::TableOpKind::kAdd
                               : rpc::TableOpKind::kDelete,
                     .table = "fab_ecmp_v4",
                     .entry = std::move(entry)}));
  }
  return OkStatus();
}

Status LeafSpine::WithdrawSpine(uint32_t s) {
  for (uint32_t l = 0; l < options_.leaves; ++l) {
    IPSA_RETURN_IF_ERROR(MutateSpineBuckets(l, s, /*add=*/false));
  }
  return OkStatus();
}

Status LeafSpine::RestoreSpine(uint32_t s) {
  for (uint32_t l = 0; l < options_.leaves; ++l) {
    IPSA_RETURN_IF_ERROR(MutateSpineBuckets(l, s, /*add=*/true));
  }
  return OkStatus();
}

net::Packet LeafSpine::MakeFlowPacket(uint32_t sl, uint32_t sh, uint32_t dl,
                                      uint32_t dh, uint32_t seq) const {
  net::Packet packet =
      net::PacketBuilder()
          .Ethernet(net::MacAddr::FromUint64(LeafMac(sl)),
                    net::MacAddr::FromUint64(HostMac(sl, sh)),
                    net::kEtherTypeIpv4)
          .Ipv4(net::Ipv4Addr{HostIp(sl, sh)}, net::Ipv4Addr{HostIp(dl, dh)},
                net::kIpProtoUdp, /*ttl=*/64)
          .Udp(static_cast<uint16_t>(40000 + sh * 251 + dh),
               /*dst_port=*/9999)
          .Payload(32)
          .Build();
  WriteFlowTag(packet, FlowId(sl, sh, dl, dh), seq);
  return packet;
}

Status LeafSpine::InjectAllPairs(uint32_t packets_per_flow,
                                 uint32_t seq_base) {
  const uint32_t L = options_.leaves, H = options_.hosts_per_leaf;
  for (uint32_t sl = 0; sl < L; ++sl) {
    for (uint32_t sh = 0; sh < H; ++sh) {
      for (uint32_t dl = 0; dl < L; ++dl) {
        for (uint32_t dh = 0; dh < H; ++dh) {
          if (sl == dl && sh == dh) continue;
          for (uint32_t k = 0; k < packets_per_flow; ++k) {
            net::Packet packet = MakeFlowPacket(sl, sh, dl, dh, seq_base + k);
            IPSA_RETURN_IF_ERROR(fabric_->InjectAtHost(
                HostIndex(sl, sh), packet, HostIndex(dl, dh)));
          }
        }
      }
    }
  }
  return fabric_->RunUntilQuiescent().status();
}

}  // namespace ipsa::fabric
