#include "fabric/upgrade.h"

#include <chrono>

namespace ipsa::fabric {

Result<UpgradeReport> RollingUpgrade(Fabric& fabric, const UpgradeSpec& spec,
                                     const TrafficRound& traffic_round) {
  IPSA_RETURN_IF_ERROR(fabric.RunUntilQuiescent().status());
  IPSA_RETURN_IF_ERROR(fabric.BeginWindow());

  UpgradeReport report;
  const auto start = std::chrono::steady_clock::now();
  for (uint32_t n = 0; n < fabric.node_count(); ++n) {
    IPSA_RETURN_IF_ERROR(
        fabric.InstallOn(n, spec.kind, spec.source).status());
    for (uint32_t r = 0; r < spec.traffic_rounds_per_step; ++r) {
      IPSA_RETURN_IF_ERROR(traffic_round(fabric));
      IPSA_RETURN_IF_ERROR(fabric.RunUntilQuiescent().status());
    }
    // Close the books mid-window: a blackhole must name the node that
    // introduced it, not surface after all four installs.
    IPSA_ASSIGN_OR_RETURN(OracleReport oracle, fabric.CheckOracle());
    if (!oracle.ok()) {
      return InternalError("rolling upgrade broke after node '" +
                           fabric.node(n).name() + "': " + oracle.ToString() +
                           (fabric.first_shadow_diff().empty()
                                ? ""
                                : "; " + fabric.first_shadow_diff()));
    }
    ++report.nodes_upgraded;
  }
  const auto end = std::chrono::steady_clock::now();
  report.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  IPSA_ASSIGN_OR_RETURN(report.oracle, fabric.CheckOracle());
  for (uint32_t n = 0; n < fabric.node_count(); ++n) {
    IPSA_ASSIGN_OR_RETURN(uint64_t epoch, fabric.node(n).QueryEpoch());
    report.epochs_after.push_back(epoch);
  }
  return report;
}

}  // namespace ipsa::fabric
