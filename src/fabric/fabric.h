// The fabric driver: wires a Topology into live switches and runs packets
// across it with full conservation accounting.
//
// Execution is step-based and deterministic: each Step() first delivers the
// in-flight link packets that are due, then drains every switch and routes
// what egressed — host ports hand packets to the delivery oracle, linked
// ports put them back in flight (after the link's up/loss/delay treatment),
// unattached ports count as unmapped. A fabric is quiescent when no packet
// is in flight and no switch has pending RX.
//
// The delivery oracle holds the subsystem's core invariant: every packet
// injected since BeginWindow() is accounted for at CheckOracle() as
// delivered at its expected egress host, dropped with a counter (device
// drop, link down, link loss, queue overflow), or *lost* — and lost is
// always a bug, either in the fabric or in the design under test.
//
// With FabricOptions::shadow_oracle every local node carries an
// interpreter-pinned twin of the same arch that receives every install,
// table op and packet the primary does; after each drain the two TX streams
// must be bit-identical (the PR-5 differential contract, applied per switch
// while the fabric runs — including mid-rolling-upgrade).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "fabric/node.h"
#include "fabric/topology.h"

namespace ipsa::fabric {

struct FabricOptions {
  uint32_t drain_workers = 1;
  // RunUntilQuiescent gives up after this many steps (a routing loop would
  // otherwise run forever).
  uint32_t max_steps = 1000;
  bool shadow_oracle = false;
  uint64_t loss_seed = 0x5EED5EEDull;  // lossy links reproduce exactly
  int remote_io_timeout_ms = 5000;
  // Keep a copy of every packet that egresses at a host attachment so a
  // harness can inspect payloads (e.g. allreduce aggregates), not just
  // counts. Off by default — benches don't want the copies.
  bool capture_host_rx = false;
};

// Window totals; conservation says injected equals the sum of everything
// else plus `lost`.
struct OracleReport {
  uint64_t injected = 0;
  uint64_t delivered = 0;       // at the expected host
  uint64_t misdelivered = 0;    // at a host, but the wrong one / unknown flow
  uint64_t untagged_tx = 0;     // host egress without a parseable flow tag
  uint64_t unmapped_tx = 0;     // egress on a port with no link and no host
  uint64_t device_drops = 0;    // per-switch packets_dropped deltas
  uint64_t link_down_drops = 0;
  uint64_t link_loss_drops = 0;
  uint64_t rx_overflow = 0;     // bounded RX queue refused the packet
  int64_t lost = 0;             // the unaccounted remainder — must be 0
  uint64_t shadow_mismatches = 0;
  uint32_t steps = 0;           // steps run inside this window

  // The pass condition: nothing lost, nothing misrouted, shadows agree.
  bool ok() const {
    return lost == 0 && misdelivered == 0 && untagged_tx == 0 &&
           unmapped_tx == 0 && shadow_mismatches == 0;
  }
  std::string ToString() const;
};

struct FlowCount {
  uint32_t expected_host = 0;  // index into topology().hosts
  uint64_t injected = 0;
  uint64_t delivered = 0;
};

class Fabric {
 public:
  // Validates the topology, instantiates every node (LocalNode in-process,
  // RemoteNode for switchd endpoints) and builds the port attachment map.
  // Shadow twins cover local nodes only — a remote daemon's interpreter
  // twin would have to live in its process.
  static Result<std::unique_ptr<Fabric>> Build(Topology topo,
                                               FabricOptions options = {});

  const Topology& topology() const { return topo_; }
  uint32_t node_count() const { return static_cast<uint32_t>(nodes_.size()); }
  FabricNode& node(uint32_t i) { return *nodes_[i]; }
  uint64_t current_step() const { return step_; }

  // --- control plane (mirrored to the node's shadow twin) -----------------
  Result<rpc::InstallOutcome> InstallOn(uint32_t node, rpc::InstallKind kind,
                                        const std::string& source);
  Status InstallAll(rpc::InstallKind kind, const std::string& source);
  Status ApplyTableOp(uint32_t node, const rpc::TableOp& op);

  // --- failure injection ---------------------------------------------------
  Status SetLinkUp(uint32_t link_index, bool up);
  // Finds the link joining two ports, in either orientation.
  Result<uint32_t> FindLink(const PortRef& a, const PortRef& b) const;

  // --- data plane ----------------------------------------------------------
  // Injects at a host's attachment port. The packet must already carry a
  // flow tag (flow_tag.h); the oracle expects the flow to egress at
  // `expected_host` (an index into topology().hosts).
  Status InjectAtHost(uint32_t host_index, const net::Packet& packet,
                      uint32_t expected_host);
  Status Step();
  bool Quiescent();
  // Steps until quiescent; fails after options.max_steps. Returns the
  // number of steps taken.
  Result<uint32_t> RunUntilQuiescent();

  // --- delivery oracle -----------------------------------------------------
  // Re-baselines the accounting window. The fabric must be quiescent.
  Status BeginWindow();
  // Closes the books on the window so far (fabric must be quiescent) and
  // returns the totals. Does not reset the window.
  Result<OracleReport> CheckOracle();
  const std::map<uint32_t, FlowCount>& flows() const { return flows_; }
  // Drains the captured packets delivered at `host_index` (empty unless
  // FabricOptions::capture_host_rx is set).
  std::vector<net::Packet> TakeHostRx(uint32_t host_index);
  uint64_t shadow_mismatches() const { return shadow_mismatches_; }
  // Human-readable description of the first shadow divergence, if any.
  const std::string& first_shadow_diff() const { return first_shadow_diff_; }

 private:
  struct Attachment {
    enum class Kind { kNone, kHost, kLink };
    Kind kind = Kind::kNone;
    uint32_t index = 0;  // hosts[] or links[] index
  };
  struct InFlight {
    uint64_t due = 0;
    PortRef dst;
    net::Packet packet;
  };

  Fabric(Topology topo, FabricOptions options)
      : topo_(std::move(topo)), options_(options), rng_(options.loss_seed) {}

  // Pushes into a node's RX (and its shadow twin's) with overflow
  // accounting.
  Status DeliverTo(const PortRef& dst, const net::Packet& packet);
  void RouteTx(uint32_t node, daemon::TxPacket& tx);
  Status DrainNode(uint32_t node);
  Status CompareShadow(uint32_t node);

  Topology topo_;
  FabricOptions options_;
  std::vector<std::unique_ptr<FabricNode>> nodes_;
  // shadow_[i] is the interpreter-pinned twin of local node i, or null.
  std::vector<std::unique_ptr<daemon::DeviceBackend>> shadow_;
  std::vector<std::vector<Attachment>> attach_;  // [node][port]
  std::vector<InFlight> in_flight_;
  std::mt19937_64 rng_;
  uint64_t step_ = 0;
  uint64_t window_start_step_ = 0;

  // Window accounting.
  std::map<uint32_t, FlowCount> flows_;  // flow id -> counts
  uint64_t injected_ = 0;
  uint64_t delivered_ = 0;
  uint64_t misdelivered_ = 0;
  uint64_t untagged_tx_ = 0;
  uint64_t unmapped_tx_ = 0;
  uint64_t link_down_drops_ = 0;
  uint64_t link_loss_drops_ = 0;
  uint64_t rx_overflow_ = 0;
  uint64_t shadow_mismatches_ = 0;
  std::string first_shadow_diff_;
  std::vector<std::vector<net::Packet>> host_rx_;  // [host] captured egress
  std::vector<uint64_t> dropped_base_;  // per-node packets_dropped baseline

  // Per-step scratch (reused capacity).
  std::vector<daemon::TxPacket> tx_scratch_;
  std::vector<daemon::TxPacket> shadow_tx_scratch_;
};

}  // namespace ipsa::fabric
