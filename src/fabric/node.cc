#include "fabric/node.h"

#include <arpa/inet.h>
#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace ipsa::fabric {

// --- LocalNode ---------------------------------------------------------------

LocalNode::LocalNode(std::string name, daemon::ArchKind arch,
                     uint32_t port_count, uint32_t drain_workers)
    : FabricNode(std::move(name), arch, port_count),
      backend_(daemon::MakeBackend(arch)),
      drain_workers_(drain_workers) {}

Result<rpc::InstallOutcome> LocalNode::Install(rpc::InstallKind kind,
                                               const std::string& source) {
  return backend_->Install(kind, source);
}

Status LocalNode::ApplyTableOp(const rpc::TableOp& op) {
  return backend_->ApplyTableOp(op);
}

Result<compiler::ApiSpec> LocalNode::Api() { return backend_->Api(); }

Result<rpc::StatsResponse> LocalNode::QueryStats() {
  return backend_->QueryStats();
}

Result<rpc::MetricsResponse> LocalNode::QueryMetrics() {
  return backend_->QueryMetrics();
}

Result<uint64_t> LocalNode::QueryEpoch() { return backend_->Info().epoch; }

Status LocalNode::EnableTelemetry() {
  telemetry::TelemetryConfig config;
  config.enabled = true;
  backend_->ConfigureTelemetry(config);
  return OkStatus();
}

Result<bool> LocalNode::InjectRx(uint32_t port, const net::Packet& packet) {
  if (port >= port_count_) {
    return InvalidArgument("inject into '" + name_ + "': port " +
                           std::to_string(port) + " out of range");
  }
  net::Packet copy(packet.bytes());
  return backend_->ports().port(port).rx().Push(std::move(copy));
}

Status LocalNode::DrainAndCollect(std::vector<daemon::TxPacket>& tx) {
  IPSA_RETURN_IF_ERROR(backend_->RunToCompletion(drain_workers_).status());
  daemon::CollectTxInto(backend_->ports(), tx);
  return OkStatus();
}

uint32_t LocalNode::PendingRx() {
  return static_cast<uint32_t>(backend_->ports().PendingRx());
}

// --- RemoteNode --------------------------------------------------------------

RemoteNode::RemoteNode(std::string name, daemon::ArchKind arch,
                       uint32_t port_count, int io_timeout_ms)
    : FabricNode(std::move(name), arch, port_count),
      io_timeout_ms_(io_timeout_ms) {}

Result<std::unique_ptr<RemoteNode>> RemoteNode::Connect(
    std::string name, const std::string& host, uint16_t control_port,
    std::vector<uint16_t> udp_ports, int io_timeout_ms) {
  if (udp_ports.empty()) {
    return InvalidArgument("remote node '" + name + "' needs UDP data ports");
  }
  rpc::ClientOptions copt;
  copt.host = host;
  copt.port = control_port;
  copt.client_name = "fabric:" + name;
  copt.call_timeout_ms = io_timeout_ms;
  auto client = std::make_unique<rpc::Client>(std::move(copt));
  IPSA_RETURN_IF_ERROR(client->Connect());
  IPSA_ASSIGN_OR_RETURN(daemon::ArchKind arch,
                        daemon::ArchFromName(client->server_info().arch));

  std::unique_ptr<RemoteNode> node(new RemoteNode(
      std::move(name), arch, static_cast<uint32_t>(udp_ports.size()),
      io_timeout_ms));
  node->client_ = std::move(client);
  node->socks_.reserve(udp_ports.size());
  node->daemon_addr_.reserve(udp_ports.size());
  for (uint16_t udp_port : udp_ports) {
    IPSA_ASSIGN_OR_RETURN(wire::Socket sock, wire::UdpBind("0.0.0.0", 0));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(udp_port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgument("bad remote host address: " + host);
    }
    node->socks_.push_back(std::move(sock));
    node->daemon_addr_.push_back(addr);
  }
  // Register as each port's packet-out peer (zero-length datagram).
  for (uint32_t p = 0; p < node->port_count_; ++p) {
    IPSA_RETURN_IF_ERROR(node->SendTo(p, {}));
  }
  // Baseline the daemon's cumulative counters so deltas attribute only this
  // node's traffic windows.
  IPSA_ASSIGN_OR_RETURN(rpc::StatsResponse stats, node->client_->QueryStats());
  node->last_packets_in_ = stats.packets_in;
  node->last_packets_out_ = stats.packets_out;
  return node;
}

Status RemoteNode::SendTo(uint32_t port, std::span<const uint8_t> bytes) {
  ssize_t n = ::sendto(
      socks_[port].fd(), bytes.data(), bytes.size(), 0,
      reinterpret_cast<const sockaddr*>(&daemon_addr_[port]),
      sizeof(sockaddr_in));
  if (n < 0) {
    return Unavailable("sendto(" + name_ + "): " + std::strerror(errno));
  }
  return OkStatus();
}

Result<rpc::InstallOutcome> RemoteNode::Install(rpc::InstallKind kind,
                                                const std::string& source) {
  IPSA_ASSIGN_OR_RETURN(rpc::InstallResponse resp,
                        client_->Install(kind, source));
  return rpc::InstallOutcome{.compile_ms = resp.compile_ms,
                             .load_ms = resp.load_ms,
                             .epoch = resp.epoch};
}

Status RemoteNode::ApplyTableOp(const rpc::TableOp& op) {
  switch (op.op) {
    case rpc::TableOpKind::kAdd:
      return client_->AddEntry(op.table, op.entry);
    case rpc::TableOpKind::kModify:
      return client_->ModifyEntry(op.table, op.entry);
    case rpc::TableOpKind::kDelete:
      return client_->DeleteEntry(op.table, op.entry);
  }
  return InvalidArgument("unknown table op");
}

Result<compiler::ApiSpec> RemoteNode::Api() { return client_->FetchApi(); }

Result<rpc::StatsResponse> RemoteNode::QueryStats() {
  return client_->QueryStats();
}

Result<rpc::MetricsResponse> RemoteNode::QueryMetrics() {
  return client_->QueryMetrics();
}

Result<uint64_t> RemoteNode::QueryEpoch() {
  IPSA_ASSIGN_OR_RETURN(rpc::EpochResponse resp, client_->QueryEpoch());
  return resp.epoch;
}

Status RemoteNode::EnableTelemetry() {
  // The daemon owns its collector config (on by default; --no-telemetry
  // turns it off). All we can do from here is check it is actually on.
  IPSA_ASSIGN_OR_RETURN(rpc::MetricsResponse resp, client_->QueryMetrics());
  if (!resp.snapshot.enabled) {
    return FailedPrecondition("node '" + name_ +
                              "': switchd is running with telemetry "
                              "disabled; restart it without --no-telemetry");
  }
  return OkStatus();
}

Result<bool> RemoteNode::InjectRx(uint32_t port, const net::Packet& packet) {
  if (port >= port_count_) {
    return InvalidArgument("inject into '" + name_ + "': port " +
                           std::to_string(port) + " out of range");
  }
  if (packet.empty()) {
    // A zero-length datagram is the peer-registration escape; refuse rather
    // than silently re-register.
    return InvalidArgument("cannot inject an empty packet over UDP");
  }
  IPSA_RETURN_IF_ERROR(SendTo(port, packet.bytes()));
  ++pending_injected_;
  return true;
}

Status RemoteNode::DrainAndCollect(std::vector<daemon::TxPacket>& tx) {
  if (pending_injected_ == 0) return OkStatus();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(io_timeout_ms_);
  // Wait until the daemon has consumed everything we injected. switchd
  // pumps the device and flushes its TX datagrams before answering the next
  // control frame, so a stats response showing our packets processed
  // implies the corresponding packet-outs are already on the wire.
  const uint64_t expected_in = last_packets_in_ + pending_injected_;
  rpc::StatsResponse stats;
  while (true) {
    IPSA_ASSIGN_OR_RETURN(stats, client_->QueryStats());
    if (stats.packets_in >= expected_in) break;
    if (std::chrono::steady_clock::now() > deadline) {
      return DeadlineExceeded(
          "remote node '" + name_ + "' drain: daemon consumed " +
          std::to_string(stats.packets_in - last_packets_in_) + " of " +
          std::to_string(pending_injected_) + " injected packets");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  uint64_t expect_tx = stats.packets_out - last_packets_out_;
  last_packets_in_ = stats.packets_in;
  last_packets_out_ = stats.packets_out;
  pending_injected_ = 0;

  std::vector<uint8_t> buf(64 * 1024);
  uint64_t got = 0;
  while (got < expect_tx) {
    bool any = false;
    for (uint32_t p = 0; p < socks_.size() && got < expect_tx; ++p) {
      Result<size_t> n = wire::RecvSome(socks_[p].fd(), buf, /*timeout_ms=*/2);
      if (!n.ok()) continue;  // this port has nothing right now
      net::Packet packet(std::span<const uint8_t>(buf.data(), *n));
      tx.push_back(daemon::TxPacket{.port = p, .packet = std::move(packet)});
      ++got;
      any = true;
    }
    if (!any && std::chrono::steady_clock::now() > deadline) {
      return DeadlineExceeded("remote node '" + name_ + "' drain: received " +
                              std::to_string(got) + " of " +
                              std::to_string(expect_tx) + " TX datagrams");
    }
  }
  return OkStatus();
}

uint32_t RemoteNode::PendingRx() { return pending_injected_; }

}  // namespace ipsa::fabric
