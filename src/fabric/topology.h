// Declarative multi-switch topology: nodes, port-to-port links, edge hosts.
//
// A node is either an in-process behavioral switch (pisa or ipbm, hosted by
// the same DeviceBackend the daemon uses) or a remote switchd endpoint
// reached over its TCP control channel and per-port UDP packet plane. Links
// connect one node's port to another's, with a configurable per-traversal
// delay (in fabric steps), a deterministic seeded loss probability, and an
// up/down switch for failure injection. Hosts mark edge ports where
// delivered traffic leaves the fabric and is handed to the delivery oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/backends.h"
#include "util/status.h"

namespace ipsa::fabric {

struct PortRef {
  uint32_t node = 0;
  uint32_t port = 0;

  bool operator==(const PortRef&) const = default;
};

struct NodeSpec {
  std::string name;
  daemon::ArchKind arch = daemon::ArchKind::kIpsa;
  uint32_t port_count = 16;

  // Remote attachment: when control_port != 0 the node is a running switchd
  // at host:control_port whose device ports 0..udp_ports.size()-1 are
  // reachable at the given UDP ports (switchd --udp-port-base layout, or the
  // exact ports an in-process Switchd reports).
  std::string host = "127.0.0.1";
  uint16_t control_port = 0;
  std::vector<uint16_t> udp_ports;

  bool remote() const { return control_port != 0; }
};

struct LinkSpec {
  PortRef a;
  PortRef b;
  uint32_t delay_steps = 0;  // extra steps a packet spends in flight
  double loss = 0.0;         // per-packet drop probability (seeded PRNG)
  bool up = true;
};

struct HostSpec {
  std::string name;
  PortRef attach;
  uint32_t ipv4 = 0;   // host byte order
  uint64_t mac = 0;    // 48-bit
};

struct Topology {
  std::vector<NodeSpec> nodes;
  std::vector<LinkSpec> links;
  std::vector<HostSpec> hosts;

  Result<uint32_t> FindNode(std::string_view name) const;
  // Structural validation: endpoint indices in range, no port used by more
  // than one link or host, loss probabilities in [0, 1].
  Status Validate() const;
};

}  // namespace ipsa::fabric
