#include "fabric/allreduce.h"

#include <string>
#include <utility>

#include "controller/designs.h"
#include "controller/runtime_api.h"
#include "fabric/flow_tag.h"
#include "net/headers.h"
#include "net/packet_builder.h"

namespace ipsa::fabric {

namespace {

void PutBe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
void PutBe64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (56 - 8 * i));
}
uint16_t GetBe16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] << 8 | p[1]);
}
uint64_t GetBe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | p[i];
  return v;
}

// Flow ids must be unique per (worker, slot) and disjoint from the ids
// LeafSpine::MakeFlowPacket mints.
uint32_t AlrFlowId(uint32_t worker, uint32_t slot) {
  return 0xA1700000u | (worker << 12) | slot;
}

}  // namespace

std::optional<AlrFields> ParseAlrPacket(std::span<const uint8_t> bytes) {
  if (bytes.size() < kAlrPacketBytes) return std::nullopt;
  if (GetBe16(bytes.data() + 12) != net::kEtherTypeIpv4) return std::nullopt;
  if (bytes[23] != kAlrIpProto) return std::nullopt;
  const uint8_t* alr = bytes.data() + kAlrHeaderOffset;
  AlrFields f;
  f.op = GetBe16(alr + 0);
  f.slot = GetBe16(alr + 2);
  f.worker = GetBe16(alr + 4);
  f.shift = GetBe16(alr + 6);
  f.v0 = GetBe64(alr + 20);
  f.v1 = GetBe64(alr + 28);
  return f;
}

AllreduceJob::AllreduceJob(LeafSpine& ls, AllreduceOptions options)
    : ls_(ls), options_(options) {
  const auto& o = ls_.options();
  collector_index_ =
      ls_.HostIndex(options_.collector_leaf, options_.collector_host);
  for (uint32_t l = 0; l < o.leaves; ++l) {
    for (uint32_t h = 0; h < o.hosts_per_leaf; ++h) {
      if (l == options_.collector_leaf && h == options_.collector_host) {
        continue;
      }
      workers_.push_back({l, h});
    }
  }
}

uint32_t AllreduceJob::aggregation_node() const {
  return ls_.LeafNode(options_.collector_leaf);
}

Status AllreduceJob::InstallAggregation() {
  if (workers_.empty() || workers_.size() > 64) {
    return InvalidArgument("allreduce needs 1..64 workers, got " +
                           std::to_string(workers_.size()));
  }
  if (options_.slots == 0 || options_.slots > kAlrMaxSlots) {
    return InvalidArgument("allreduce slots out of range");
  }
  const uint32_t node = aggregation_node();
  IPSA_RETURN_IF_ERROR(
      ls_.fabric()
          .InstallOn(node, rpc::InstallKind::kScript,
                     controller::designs::FabricAllreduceScript())
          .status());
  const uint64_t full = workers_.size() == 64
                            ? ~0ull
                            : (1ull << workers_.size()) - 1;
  IPSA_ASSIGN_OR_RETURN(compiler::ApiSpec api, ls_.fabric().node(node).Api());
  controller::EntryBuilder builder(api);
  IPSA_ASSIGN_OR_RETURN(
      table::Entry entry,
      builder.Build("alr_ctl", "alr_contribute",
                    {controller::KeyValue(kAlrOpContribute)},
                    {controller::Bits(64, full)}));
  return ls_.fabric().ApplyTableOp(
      node, rpc::TableOp{.op = rpc::TableOpKind::kAdd,
                         .table = "alr_ctl",
                         .entry = std::move(entry)});
}

Status AllreduceJob::SpliceV2() {
  return ls_.fabric()
      .InstallOn(aggregation_node(), rpc::InstallKind::kScript,
                 controller::designs::AllreduceUpdateScript())
      .status();
}

uint64_t AllreduceJob::ContributionValue(uint32_t worker, uint32_t slot,
                                         uint32_t lane) {
  // splitmix64 over the coordinates; every ~5th value gets its top nibble
  // forced so per-slot sums saturate the 64-bit accumulator now and then.
  uint64_t z = (static_cast<uint64_t>(worker) << 40) ^
               (static_cast<uint64_t>(slot) << 16) ^ lane ^
               0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  if (z % 5 == 0) z |= 0xF000000000000000ull;
  return z;
}

net::Packet AllreduceJob::MakeContribution(uint32_t worker, uint32_t slot,
                                           uint32_t seq) const {
  const Worker& w = workers_[worker];
  uint8_t alr[kAlrHeaderBytes] = {};
  PutBe16(alr + 0, kAlrOpContribute);
  PutBe16(alr + 2, static_cast<uint16_t>(slot));
  PutBe16(alr + 4, static_cast<uint16_t>(worker));
  PutBe16(alr + 6, static_cast<uint16_t>(options_.shift));
  PutBe64(alr + 20, ContributionValue(worker, slot, 0));
  PutBe64(alr + 28, ContributionValue(worker, slot, 1));
  net::Packet packet =
      net::PacketBuilder()
          .Ethernet(net::MacAddr::FromUint64(LeafSpine::LeafMac(w.leaf)),
                    net::MacAddr::FromUint64(LeafSpine::HostMac(w.leaf, w.host)),
                    net::kEtherTypeIpv4)
          .Ipv4(net::Ipv4Addr{LeafSpine::HostIp(w.leaf, w.host)},
                net::Ipv4Addr{LeafSpine::HostIp(options_.collector_leaf,
                                                options_.collector_host)},
                kAlrIpProto, /*ttl=*/64)
          .RawBytes(alr)
          .Build();
  WriteFlowTag(packet, AlrFlowId(worker, slot), seq);
  return packet;
}

Status AllreduceJob::InjectContribution(uint32_t worker, uint32_t slot,
                                        uint32_t seq) {
  if (worker >= workers_.size()) return InvalidArgument("bad worker index");
  const Worker& w = workers_[worker];
  return ls_.fabric().InjectAtHost(ls_.HostIndex(w.leaf, w.host),
                                   MakeContribution(worker, slot, seq),
                                   collector_index_);
}

Status AllreduceJob::CollectResults() {
  for (net::Packet& packet : ls_.fabric().TakeHostRx(collector_index_)) {
    std::optional<AlrFields> f = ParseAlrPacket(packet.bytes());
    if (!f.has_value() || f->op != kAlrOpResult) continue;
    AlrResult& r = results_[f->slot];
    if (r.copies > 0 && (r.v0 != f->v0 || r.v1 != f->v1)) {
      return InternalError("slot " + std::to_string(f->slot) +
                           " delivered diverging result copies");
    }
    r.v0 = f->v0;
    r.v1 = f->v1;
    ++r.copies;
  }
  return OkStatus();
}

uint64_t AllreduceJob::GoldenValue(uint32_t slot, uint32_t lane) const {
  uint64_t acc = 0;
  for (uint32_t w = 0; w < workers_.size(); ++w) {
    acc = SatAdd64(acc,
                   FxpQuantize64(ContributionValue(w, slot, lane),
                                 options_.shift));
  }
  return FxpDequantize64(acc, options_.shift);
}

Result<AllreduceRunStats> AllreduceJob::RunRange(uint32_t slot_begin,
                                                 uint32_t slot_end) {
  if (slot_end > options_.slots || slot_begin > slot_end) {
    return InvalidArgument("bad slot range");
  }
  AllreduceRunStats stats;
  for (uint32_t round = 0; round < options_.max_rounds; ++round) {
    bool injected_any = false;
    for (uint32_t slot = slot_begin; slot < slot_end; ++slot) {
      if (results_.count(slot) > 0) continue;
      for (uint32_t w = 0; w < workers_.size(); ++w) {
        IPSA_RETURN_IF_ERROR(InjectContribution(w, slot, round));
        ++stats.contributions;
        injected_any = true;
      }
    }
    if (!injected_any) break;
    ++stats.rounds;
    IPSA_RETURN_IF_ERROR(ls_.fabric().RunUntilQuiescent().status());
    IPSA_RETURN_IF_ERROR(CollectResults());
  }
  for (uint32_t slot = slot_begin; slot < slot_end; ++slot) {
    if (results_.count(slot) == 0) {
      return DeadlineExceeded("allreduce slot " + std::to_string(slot) +
                              " incomplete after " +
                              std::to_string(stats.rounds) + " rounds");
    }
    stats.results += results_[slot].copies;
  }
  return stats;
}

}  // namespace ipsa::fabric
