#include "fabric/fabric.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "fabric/flow_tag.h"

namespace ipsa::fabric {

std::string OracleReport::ToString() const {
  std::ostringstream os;
  os << "injected=" << injected << " delivered=" << delivered
     << " misdelivered=" << misdelivered << " untagged=" << untagged_tx
     << " unmapped=" << unmapped_tx << " device_drops=" << device_drops
     << " link_down=" << link_down_drops << " link_loss=" << link_loss_drops
     << " rx_overflow=" << rx_overflow << " lost=" << lost
     << " shadow_mismatches=" << shadow_mismatches << " steps=" << steps
     << (ok() ? " [OK]" : " [FAIL]");
  return os.str();
}

Result<std::unique_ptr<Fabric>> Fabric::Build(Topology topo,
                                              FabricOptions options) {
  IPSA_RETURN_IF_ERROR(topo.Validate());
  std::unique_ptr<Fabric> fab(new Fabric(std::move(topo), options));

  for (const NodeSpec& spec : fab->topo_.nodes) {
    if (spec.remote()) {
      IPSA_ASSIGN_OR_RETURN(
          std::unique_ptr<RemoteNode> node,
          RemoteNode::Connect(spec.name, spec.host, spec.control_port,
                              spec.udp_ports, options.remote_io_timeout_ms));
      fab->nodes_.push_back(std::move(node));
      fab->shadow_.push_back(nullptr);
    } else {
      fab->nodes_.push_back(std::make_unique<LocalNode>(
          spec.name, spec.arch, spec.port_count, options.drain_workers));
      if (options.shadow_oracle) {
        auto twin = daemon::MakeBackend(spec.arch);
        twin->SetForceInterpreter(true);
        fab->shadow_.push_back(std::move(twin));
      } else {
        fab->shadow_.push_back(nullptr);
      }
    }
  }

  fab->attach_.resize(fab->nodes_.size());
  for (uint32_t n = 0; n < fab->nodes_.size(); ++n) {
    fab->attach_[n].resize(fab->topo_.nodes[n].port_count);
  }
  for (uint32_t l = 0; l < fab->topo_.links.size(); ++l) {
    const LinkSpec& link = fab->topo_.links[l];
    fab->attach_[link.a.node][link.a.port] = {Attachment::Kind::kLink, l};
    fab->attach_[link.b.node][link.b.port] = {Attachment::Kind::kLink, l};
  }
  for (uint32_t h = 0; h < fab->topo_.hosts.size(); ++h) {
    const PortRef& at = fab->topo_.hosts[h].attach;
    fab->attach_[at.node][at.port] = {Attachment::Kind::kHost, h};
  }

  fab->dropped_base_.assign(fab->nodes_.size(), 0);
  fab->host_rx_.resize(fab->topo_.hosts.size());
  IPSA_RETURN_IF_ERROR(fab->BeginWindow());
  return fab;
}

Result<rpc::InstallOutcome> Fabric::InstallOn(uint32_t node,
                                              rpc::InstallKind kind,
                                              const std::string& source) {
  if (node >= nodes_.size()) return InvalidArgument("node index out of range");
  IPSA_ASSIGN_OR_RETURN(rpc::InstallOutcome outcome,
                        nodes_[node]->Install(kind, source));
  if (shadow_[node]) {
    IPSA_RETURN_IF_ERROR(shadow_[node]->Install(kind, source).status());
  }
  return outcome;
}

Status Fabric::InstallAll(rpc::InstallKind kind, const std::string& source) {
  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    IPSA_RETURN_IF_ERROR(InstallOn(n, kind, source).status());
  }
  return OkStatus();
}

Status Fabric::ApplyTableOp(uint32_t node, const rpc::TableOp& op) {
  if (node >= nodes_.size()) return InvalidArgument("node index out of range");
  IPSA_RETURN_IF_ERROR(nodes_[node]->ApplyTableOp(op));
  if (shadow_[node]) {
    IPSA_RETURN_IF_ERROR(shadow_[node]->ApplyTableOp(op));
  }
  return OkStatus();
}

Status Fabric::SetLinkUp(uint32_t link_index, bool up) {
  if (link_index >= topo_.links.size()) {
    return InvalidArgument("link index out of range");
  }
  topo_.links[link_index].up = up;
  return OkStatus();
}

Result<uint32_t> Fabric::FindLink(const PortRef& a, const PortRef& b) const {
  for (uint32_t l = 0; l < topo_.links.size(); ++l) {
    const LinkSpec& link = topo_.links[l];
    if ((link.a == a && link.b == b) || (link.a == b && link.b == a)) {
      return l;
    }
  }
  return NotFound("no such link");
}

Status Fabric::DeliverTo(const PortRef& dst, const net::Packet& packet) {
  IPSA_ASSIGN_OR_RETURN(bool accepted,
                        nodes_[dst.node]->InjectRx(dst.port, packet));
  if (!accepted) {
    ++rx_overflow_;
    return OkStatus();
  }
  if (shadow_[dst.node]) {
    net::Packet copy(packet.bytes());
    shadow_[dst.node]->ports().port(dst.port).rx().Push(std::move(copy));
  }
  return OkStatus();
}

Status Fabric::InjectAtHost(uint32_t host_index, const net::Packet& packet,
                            uint32_t expected_host) {
  if (host_index >= topo_.hosts.size() ||
      expected_host >= topo_.hosts.size()) {
    return InvalidArgument("host index out of range");
  }
  std::optional<FlowTag> tag = ReadFlowTag(packet.bytes());
  if (!tag.has_value()) {
    return InvalidArgument("injected packet carries no flow tag");
  }
  FlowCount& flow = flows_[tag->flow_id];
  if (flow.injected == 0) {
    flow.expected_host = expected_host;
  } else if (flow.expected_host != expected_host) {
    return InvalidArgument("flow " + std::to_string(tag->flow_id) +
                           " re-injected with a different expected host");
  }
  ++flow.injected;
  ++injected_;
  return DeliverTo(topo_.hosts[host_index].attach, packet);
}

void Fabric::RouteTx(uint32_t node, daemon::TxPacket& tx) {
  if (tx.port >= attach_[node].size()) {
    ++unmapped_tx_;
    return;
  }
  const Attachment& at = attach_[node][tx.port];
  switch (at.kind) {
    case Attachment::Kind::kHost: {
      if (options_.capture_host_rx) {
        host_rx_[at.index].push_back(tx.packet);
      }
      std::optional<FlowTag> tag = ReadFlowTag(tx.packet.bytes());
      if (!tag.has_value()) {
        ++untagged_tx_;
        return;
      }
      auto it = flows_.find(tag->flow_id);
      if (it == flows_.end() || it->second.expected_host != at.index) {
        ++misdelivered_;
        return;
      }
      ++it->second.delivered;
      ++delivered_;
      return;
    }
    case Attachment::Kind::kLink: {
      const LinkSpec& link = topo_.links[at.index];
      if (!link.up) {
        ++link_down_drops_;
        return;
      }
      if (link.loss > 0.0) {
        std::uniform_real_distribution<double> roll(0.0, 1.0);
        if (roll(rng_) < link.loss) {
          ++link_loss_drops_;
          return;
        }
      }
      PortRef peer = (link.a.node == node && link.a.port == tx.port)
                         ? link.b
                         : link.a;
      in_flight_.push_back(InFlight{.due = step_ + 1 + link.delay_steps,
                                    .dst = peer,
                                    .packet = std::move(tx.packet)});
      return;
    }
    case Attachment::Kind::kNone:
      ++unmapped_tx_;
      return;
  }
}

Status Fabric::CompareShadow(uint32_t node) {
  daemon::DeviceBackend& twin = *shadow_[node];
  IPSA_RETURN_IF_ERROR(twin.RunToCompletion(1).status());
  shadow_tx_scratch_.clear();
  daemon::CollectTxInto(twin.ports(), shadow_tx_scratch_);

  bool diff = shadow_tx_scratch_.size() != tx_scratch_.size();
  for (size_t i = 0; !diff && i < tx_scratch_.size(); ++i) {
    const auto& a = tx_scratch_[i];
    const auto& b = shadow_tx_scratch_[i];
    diff = a.port != b.port ||
           !std::ranges::equal(a.packet.bytes(), b.packet.bytes());
  }
  if (diff) {
    ++shadow_mismatches_;
    if (first_shadow_diff_.empty()) {
      std::ostringstream os;
      os << "node '" << nodes_[node]->name() << "' step " << step_
         << ": primary egressed " << tx_scratch_.size()
         << " packets, interpreter twin " << shadow_tx_scratch_.size();
      first_shadow_diff_ = os.str();
    }
  }
  return OkStatus();
}

Status Fabric::DrainNode(uint32_t node) {
  tx_scratch_.clear();
  IPSA_RETURN_IF_ERROR(nodes_[node]->DrainAndCollect(tx_scratch_));
  if (shadow_[node]) IPSA_RETURN_IF_ERROR(CompareShadow(node));
  for (daemon::TxPacket& tx : tx_scratch_) RouteTx(node, tx);
  return OkStatus();
}

Status Fabric::Step() {
  ++step_;
  // Deliver everything whose flight time has elapsed, preserving the order
  // the packets were put in flight (determinism).
  size_t kept = 0;
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].due <= step_) {
      IPSA_RETURN_IF_ERROR(
          DeliverTo(in_flight_[i].dst, in_flight_[i].packet));
    } else {
      if (kept != i) in_flight_[kept] = std::move(in_flight_[i]);
      ++kept;
    }
  }
  in_flight_.resize(kept);

  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    IPSA_RETURN_IF_ERROR(DrainNode(n));
  }
  return OkStatus();
}

bool Fabric::Quiescent() {
  if (!in_flight_.empty()) return false;
  for (auto& node : nodes_) {
    if (node->PendingRx() != 0) return false;
  }
  return true;
}

Result<uint32_t> Fabric::RunUntilQuiescent() {
  for (uint32_t s = 0; s < options_.max_steps; ++s) {
    if (Quiescent()) return s;
    IPSA_RETURN_IF_ERROR(Step());
  }
  if (Quiescent()) return options_.max_steps;
  return DeadlineExceeded("fabric not quiescent after " +
                          std::to_string(options_.max_steps) +
                          " steps (routing loop?)");
}

Status Fabric::BeginWindow() {
  if (!Quiescent()) {
    return FailedPrecondition("BeginWindow requires a quiescent fabric");
  }
  flows_.clear();
  injected_ = delivered_ = misdelivered_ = untagged_tx_ = unmapped_tx_ = 0;
  link_down_drops_ = link_loss_drops_ = rx_overflow_ = 0;
  shadow_mismatches_ = 0;
  first_shadow_diff_.clear();
  window_start_step_ = step_;
  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    IPSA_ASSIGN_OR_RETURN(rpc::StatsResponse stats, nodes_[n]->QueryStats());
    dropped_base_[n] = stats.packets_dropped;
  }
  return OkStatus();
}

Result<OracleReport> Fabric::CheckOracle() {
  if (!Quiescent()) {
    return FailedPrecondition("CheckOracle requires a quiescent fabric");
  }
  OracleReport report;
  report.injected = injected_;
  report.delivered = delivered_;
  report.misdelivered = misdelivered_;
  report.untagged_tx = untagged_tx_;
  report.unmapped_tx = unmapped_tx_;
  report.link_down_drops = link_down_drops_;
  report.link_loss_drops = link_loss_drops_;
  report.rx_overflow = rx_overflow_;
  report.shadow_mismatches = shadow_mismatches_;
  report.steps = static_cast<uint32_t>(step_ - window_start_step_);
  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    IPSA_ASSIGN_OR_RETURN(rpc::StatsResponse stats, nodes_[n]->QueryStats());
    report.device_drops += stats.packets_dropped - dropped_base_[n];
  }
  report.lost = static_cast<int64_t>(report.injected) -
                static_cast<int64_t>(report.delivered + report.misdelivered +
                                     report.untagged_tx + report.unmapped_tx +
                                     report.device_drops +
                                     report.link_down_drops +
                                     report.link_loss_drops +
                                     report.rx_overflow);
  return report;
}

std::vector<net::Packet> Fabric::TakeHostRx(uint32_t host_index) {
  if (host_index >= host_rx_.size()) return {};
  std::vector<net::Packet> out = std::move(host_rx_[host_index]);
  host_rx_[host_index].clear();
  return out;
}

}  // namespace ipsa::fabric
