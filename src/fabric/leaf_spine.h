// The reference leaf–spine harness: L leaves × S spines × H hosts per leaf.
//
// Wiring: leaf l uses ports 0..H-1 for its hosts and port H+s as the uplink
// to spine s; spine s uses port l for leaf l. Every switch runs the base
// L2/L3 design; leaves additionally splice in the fab_ecmp selector stage
// (designs.h) so cross-leaf traffic sprays over the spines by flow hash
// while local routes keep priority via the nexthop overwrite.
//
// Addressing: host (l,h) is 10.(l+1).(h+1).1 with a derived MAC; leaf and
// spine router MACs come from disjoint bases. Cross-leaf prefixes are /16
// per leaf, so spines and remote leaves need one route per leaf only.
//
// Failure injection is a two-step story, as in a real fabric: a link goes
// down (Fabric::SetLinkUp — in-flight traffic on it drops, with a counter),
// then the control plane reconverges by withdrawing the dead spine's ECMP
// buckets on every leaf (WithdrawSpine), after which the selector re-hashes
// all flows over the survivors and delivery goes back to 100%.
#pragma once

#include <cstdint>
#include <memory>

#include "fabric/fabric.h"
#include "net/packet.h"

namespace ipsa::fabric {

struct LeafSpineOptions {
  uint32_t leaves = 2;
  uint32_t spines = 2;
  uint32_t hosts_per_leaf = 4;
  daemon::ArchKind arch = daemon::ArchKind::kIpsa;
  // ECMP selector buckets per leaf (spread over the spines round-robin).
  uint32_t ecmp_buckets = 8;
  uint32_t uplink_delay_steps = 0;
  double uplink_loss = 0.0;
  FabricOptions fabric;
};

// The topology alone (all-local nodes), for callers that want to customize
// before building a Fabric around it.
Topology MakeLeafSpineTopology(const LeafSpineOptions& options);

class LeafSpine {
 public:
  // Builds the fabric and installs base design + tables on every switch.
  static Result<std::unique_ptr<LeafSpine>> Create(
      const LeafSpineOptions& options);

  Fabric& fabric() { return *fabric_; }
  const LeafSpineOptions& options() const { return options_; }

  // --- layout --------------------------------------------------------------
  uint32_t LeafNode(uint32_t l) const { return l; }
  uint32_t SpineNode(uint32_t s) const { return options_.leaves + s; }
  uint32_t UplinkPort(uint32_t s) const { return options_.hosts_per_leaf + s; }
  uint32_t HostIndex(uint32_t l, uint32_t h) const {
    return l * options_.hosts_per_leaf + h;
  }
  // The link joining leaf l and spine s.
  Result<uint32_t> SpineLink(uint32_t l, uint32_t s) const;

  // Bridge domains the populated design uses (flood vs routed); reaction
  // plans that rebuild fab_ecmp_v4 members need the routed one.
  static constexpr uint16_t kL2Bd = 1;
  static constexpr uint16_t kL3Bd = 2;

  static uint64_t LeafMac(uint32_t l) { return 0x02F100000000ull + l + 1; }
  static uint64_t SpineMac(uint32_t s) { return 0x02F200000000ull + s + 1; }
  static uint64_t HostMac(uint32_t l, uint32_t h) {
    return 0x02AB00000000ull | ((l + 1) << 16) | (h + 1);
  }
  static uint32_t HostIp(uint32_t l, uint32_t h) {
    return (10u << 24) | ((l + 1) << 16) | ((h + 1) << 8) | 1u;
  }
  static uint32_t FlowId(uint32_t sl, uint32_t sh, uint32_t dl, uint32_t dh) {
    return (sl << 24) | (sh << 16) | (dl << 8) | dh;
  }

  // --- traffic -------------------------------------------------------------
  // A tagged UDP packet from host (sl,sh) to host (dl,dh).
  net::Packet MakeFlowPacket(uint32_t sl, uint32_t sh, uint32_t dl,
                             uint32_t dh, uint32_t seq) const;
  // Injects `packets_per_flow` packets for every ordered host pair
  // (src != dst) and runs the fabric to quiescence.
  Status InjectAllPairs(uint32_t packets_per_flow = 1, uint32_t seq_base = 0);

  // --- reconvergence -------------------------------------------------------
  // Deletes spine s's ECMP buckets on every leaf; remaining flows re-hash
  // over the surviving spines.
  Status WithdrawSpine(uint32_t s);
  Status RestoreSpine(uint32_t s);

 private:
  explicit LeafSpine(LeafSpineOptions options) : options_(options) {}

  Status InstallAndPopulate();
  Status PopulateLeaf(uint32_t l);
  Status PopulateSpine(uint32_t s);
  // Adds or deletes one leaf's selector members for spine s.
  Status MutateSpineBuckets(uint32_t l, uint32_t s, bool add);

  LeafSpineOptions options_;
  std::unique_ptr<Fabric> fabric_;
};

}  // namespace ipsa::fabric
