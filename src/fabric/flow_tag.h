// Flow accounting tag carried in the UDP payload of fabric test traffic.
//
// The end-to-end delivery oracle (fabric.h) must attribute every packet that
// egresses at a host port to the flow that injected it, after any number of
// hops rewrote the Ethernet and IP headers. The fabric therefore stamps a
// 12-byte tag at a fixed offset into the UDP payload — the one region the
// base design's pipeline never touches — and parses it back at the edge.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/packet.h"

namespace ipsa::fabric {

inline constexpr uint32_t kFlowTagMagic = 0xFAB51D01u;
// Ethernet (14) + IPv4 (20) + UDP (8): fabric flows are untagged v4/UDP.
inline constexpr size_t kFlowTagOffset = 42;
inline constexpr size_t kFlowTagBytes = 12;

struct FlowTag {
  uint32_t flow_id = 0;
  uint32_t seq = 0;
};

// Stamps magic/flow/seq little-endian over the start of the UDP payload.
// The packet must already carry at least kFlowTagBytes of payload.
inline bool WriteFlowTag(net::Packet& packet, uint32_t flow_id,
                         uint32_t seq) {
  std::span<uint8_t> bytes = packet.bytes();
  if (bytes.size() < kFlowTagOffset + kFlowTagBytes) return false;
  uint8_t* p = bytes.data() + kFlowTagOffset;
  const uint32_t words[3] = {kFlowTagMagic, flow_id, seq};
  for (int w = 0; w < 3; ++w) {
    for (int b = 0; b < 4; ++b) {
      p[w * 4 + b] = static_cast<uint8_t>(words[w] >> (8 * b));
    }
  }
  return true;
}

inline std::optional<FlowTag> ReadFlowTag(std::span<const uint8_t> bytes) {
  if (bytes.size() < kFlowTagOffset + kFlowTagBytes) return std::nullopt;
  const uint8_t* p = bytes.data() + kFlowTagOffset;
  uint32_t words[3];
  for (int w = 0; w < 3; ++w) {
    words[w] = static_cast<uint32_t>(p[w * 4]) |
               static_cast<uint32_t>(p[w * 4 + 1]) << 8 |
               static_cast<uint32_t>(p[w * 4 + 2]) << 16 |
               static_cast<uint32_t>(p[w * 4 + 3]) << 24;
  }
  if (words[0] != kFlowTagMagic) return std::nullopt;
  return FlowTag{.flow_id = words[1], .seq = words[2]};
}

}  // namespace ipsa::fabric
