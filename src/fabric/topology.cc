#include "fabric/topology.h"

#include <set>

namespace ipsa::fabric {

Result<uint32_t> Topology::FindNode(std::string_view name) const {
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == name) return i;
  }
  return NotFound("no node named '" + std::string(name) + "'");
}

Status Topology::Validate() const {
  auto check_ref = [this](const PortRef& ref, const char* what) -> Status {
    if (ref.node >= nodes.size()) {
      return InvalidArgument(std::string(what) + ": node index " +
                             std::to_string(ref.node) + " out of range");
    }
    if (ref.port >= nodes[ref.node].port_count) {
      return InvalidArgument(std::string(what) + ": port " +
                             std::to_string(ref.port) + " out of range on '" +
                             nodes[ref.node].name + "'");
    }
    return OkStatus();
  };
  // A port carries at most one attachment — link end or host.
  std::set<std::pair<uint32_t, uint32_t>> used;
  auto claim = [&used](const PortRef& ref, const char* what) -> Status {
    if (!used.insert({ref.node, ref.port}).second) {
      return InvalidArgument(std::string(what) + ": node " +
                             std::to_string(ref.node) + " port " +
                             std::to_string(ref.port) +
                             " already attached to a link or host");
    }
    return OkStatus();
  };
  for (const LinkSpec& link : links) {
    IPSA_RETURN_IF_ERROR(check_ref(link.a, "link"));
    IPSA_RETURN_IF_ERROR(check_ref(link.b, "link"));
    if (link.a == link.b) return InvalidArgument("link connects a port to itself");
    if (link.loss < 0.0 || link.loss > 1.0) {
      return InvalidArgument("link loss must be within [0, 1]");
    }
    IPSA_RETURN_IF_ERROR(claim(link.a, "link"));
    IPSA_RETURN_IF_ERROR(claim(link.b, "link"));
  }
  for (const HostSpec& host : hosts) {
    IPSA_RETURN_IF_ERROR(check_ref(host.attach, "host"));
    IPSA_RETURN_IF_ERROR(claim(host.attach, "host"));
  }
  for (const NodeSpec& node : nodes) {
    if (node.name.empty()) return InvalidArgument("node needs a name");
    if (node.remote() && node.udp_ports.empty()) {
      return InvalidArgument("remote node '" + node.name +
                             "' exposes no UDP data ports");
    }
  }
  return OkStatus();
}

}  // namespace ipsa::fabric
