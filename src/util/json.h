// Minimal self-contained JSON value, parser, and serializer.
//
// rp4bc emits TSP template parameters as JSON (paper §3.2) and the PISA
// behavioral switch consumes a monolithic JSON device configuration, so JSON
// is a first-class interchange format in this code base. Object key order is
// preserved (insertion order) so emitted configs are deterministic and
// diffable in tests.
#pragma once

#include <cstdint>
#include <type_traits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ipsa::util {

class Json;
using JsonArray = std::vector<Json>;

// Insertion-ordered string->Json map.
class JsonObject {
 public:
  Json& operator[](const std::string& key);
  const Json* Find(std::string_view key) const;
  bool contains(std::string_view key) const { return Find(key) != nullptr; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }
  auto begin() { return items_.begin(); }
  auto end() { return items_.end(); }

 private:
  std::vector<std::pair<std::string, Json>> items_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}              // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Json(int v) : type_(Type::kInt), int_(v) {}               // NOLINT
  Json(int64_t v) : type_(Type::kInt), int_(v) {}           // NOLINT
  // Accept any other integral type (uint64_t, size_t, uint32_t, ...).
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, int> && !std::is_same_v<T, int64_t>)
  Json(T v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}  // NOLINT
  Json(double v) : type_(Type::kDouble), double_(v) {}      // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}      // NOLINT
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}   // NOLINT

  static Json Array() { return Json(JsonArray{}); }
  static Json Object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double as_double() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return array_; }
  JsonArray& as_array() { return array_; }
  const JsonObject& as_object() const { return object_; }
  JsonObject& as_object() { return object_; }

  // Object access; operator[] creates missing keys (object only).
  Json& operator[](const std::string& key) { return object_[key]; }
  // Null-safe lookup: returns nullptr when absent or not an object.
  const Json* Find(std::string_view key) const {
    return is_object() ? object_.Find(key) : nullptr;
  }
  // Convenience typed getters with defaults, for config-reading code.
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  std::string GetString(std::string_view key, std::string fallback = "") const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  void push_back(Json v) { array_.push_back(std::move(v)); }

  // Serialize. indent == 0 produces compact single-line output.
  std::string Dump(int indent = 0) const;

  // Parse a complete JSON document (trailing whitespace allowed).
  static Result<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace ipsa::util
