#include "util/bitops.h"

#include <cassert>

namespace ipsa::util {

uint64_t ReadBits(std::span<const uint8_t> data, size_t bit_offset,
                  size_t bit_width) {
  assert(bit_width <= 64);
  assert(bit_offset + bit_width <= data.size() * 8);
  if (bit_width == 0) return 0;

  uint64_t value = 0;
  size_t first_byte = bit_offset / 8;
  size_t last_byte = (bit_offset + bit_width - 1) / 8;
  for (size_t i = first_byte; i <= last_byte; ++i) {
    value = (value << 8) | data[i];
  }
  // `value` now holds the covering bytes; shift off trailing bits beyond the
  // field and mask off leading bits before it. The covering span is at most
  // 9 bytes only when width==64 and misaligned; handle that case separately.
  size_t covered_bits = (last_byte - first_byte + 1) * 8;
  if (covered_bits > 64) {
    // Misaligned 58..64-bit field spanning 9 bytes: assemble via two reads.
    size_t head_bits = 8 - (bit_offset % 8);
    uint64_t head = ReadBits(data, bit_offset, head_bits);
    uint64_t tail = ReadBits(data, bit_offset + head_bits,
                             bit_width - head_bits);
    return (head << (bit_width - head_bits)) | tail;
  }
  size_t trailing = covered_bits - (bit_offset % 8) - bit_width;
  value >>= trailing;
  return value & LowMask(bit_width);
}

void WriteBits(std::span<uint8_t> data, size_t bit_offset, size_t bit_width,
               uint64_t value) {
  assert(bit_width <= 64);
  assert(bit_offset + bit_width <= data.size() * 8);
  // Stream bit (bit_offset + i) receives value bit (bit_width - 1 - i):
  // the field is big-endian on the wire, bit 0 of the stream being the MSB
  // of byte 0 (matching ReadBits).
  for (size_t i = 0; i < bit_width; ++i) {
    size_t abs = bit_offset + i;
    uint8_t mask = static_cast<uint8_t>(1u << (7 - abs % 8));
    bool bit = (value >> (bit_width - 1 - i)) & 1;
    if (bit) {
      data[abs / 8] |= mask;
    } else {
      data[abs / 8] &= static_cast<uint8_t>(~mask);
    }
  }
}

uint16_t LoadBe16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] << 8 | p[1]);
}

uint32_t LoadBe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

uint64_t LoadBe64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadBe32(p)) << 32 | LoadBe32(p + 4);
}

void StoreBe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

void StoreBe64(uint8_t* p, uint64_t v) {
  StoreBe32(p, static_cast<uint32_t>(v >> 32));
  StoreBe32(p + 4, static_cast<uint32_t>(v));
}

}  // namespace ipsa::util
