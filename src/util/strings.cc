#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace ipsa::util {

std::vector<std::string> Split(std::string_view s, char sep, bool keep_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    std::string_view field = s.substr(start, end - start);
    if (!field.empty() || keep_empty) out.emplace_back(field);
    if (end == s.size()) break;
    start = end + 1;
  }
  if (keep_empty && s.empty()) out.emplace_back();
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<uint64_t> ParseUint(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return std::nullopt;
  int base = 10;
  if (StartsWith(s, "0x") || StartsWith(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
    if (s.empty()) return std::nullopt;
  }
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, base);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace ipsa::util
