// Leveled logging with a process-global threshold.
//
// The behavioral switches log state transitions (pipeline drain, template
// writes) at kDebug; the controller logs applied commands at kInfo. Tests
// raise the threshold to keep output quiet.
#pragma once

#include <sstream>
#include <string>

namespace ipsa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits a formatted line to stderr if `level` passes the threshold.
void LogLine(LogLevel level, const std::string& message);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ipsa::util

#define IPSA_LOG(level) \
  ::ipsa::util::internal::LogMessage(::ipsa::util::LogLevel::level)
