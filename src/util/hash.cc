#include "util/hash.h"

#include <array>

namespace ipsa::util {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  return table;
}

}  // namespace

uint64_t Fnv1a64(std::span<const uint8_t> data, uint64_t seed) {
  uint64_t h = 14695981039346656037ull ^ Mix64(seed);
  for (uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t Fnv1a64(std::string_view s, uint64_t seed) {
  return Fnv1a64(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()),
                               s.size()),
      seed);
}

uint32_t Crc32(std::span<const uint8_t> data, uint32_t seed) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto& table = CrcTable();
  for (uint8_t b : data) {
    c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace ipsa::util
