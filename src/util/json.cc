#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>

namespace ipsa::util {

Json& JsonObject::operator[](const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(key, Json());
  return items_.back().second;
}

const Json* JsonObject::Find(std::string_view key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t Json::GetInt(std::string_view key, int64_t fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

std::string Json::GetString(std::string_view key, std::string fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    // Allow int/double numeric equality.
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      return double_ == other.double_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject: {
      if (object_.size() != other.object_.size()) return false;
      for (const auto& [k, v] : object_) {
        const Json* o = other.object_.Find(k);
        if (o == nullptr || !(*o == v)) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

void EscapeString(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    IPSA_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return InvalidArgument("trailing characters at offset " +
                             std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return InvalidArgument(std::string("expected '") + c + "' at offset " +
                             std::to_string(pos_));
    }
    return OkStatus();
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return InvalidArgument("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        IPSA_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json(nullptr));
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseLiteral(std::string_view lit, Json value) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return InvalidArgument("invalid literal at offset " +
                             std::to_string(pos_));
    }
    pos_ += lit.size();
    return value;
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-" || token == "+") {
      return InvalidArgument("invalid number at offset " +
                             std::to_string(start));
    }
    if (!is_double) {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(v);
      }
    }
    double d = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return InvalidArgument("invalid number '" + std::string(token) + "'");
    }
    return Json(d);
  }

  Result<std::string> ParseString() {
    IPSA_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return InvalidArgument("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return InvalidArgument("invalid \\u escape");
              }
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return InvalidArgument("invalid escape character");
        }
      } else {
        out += c;
      }
    }
    return InvalidArgument("unterminated string");
  }

  Result<Json> ParseArray() {
    IPSA_RETURN_IF_ERROR(Expect('['));
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      IPSA_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.push_back(std::move(v));
      if (Consume(']')) return arr;
      IPSA_RETURN_IF_ERROR(Expect(','));
    }
  }

  Result<Json> ParseObject() {
    IPSA_RETURN_IF_ERROR(Expect('{'));
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      IPSA_ASSIGN_OR_RETURN(std::string key, ParseString());
      IPSA_RETURN_IF_ERROR(Expect(':'));
      IPSA_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj[key] = std::move(v);
      if (Consume('}')) return obj;
      IPSA_RETURN_IF_ERROR(Expect(','));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::kString:
      EscapeString(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out += ',';
        first = false;
        Newline(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        Newline(out, indent, depth + 1);
        EscapeString(k, out);
        out += indent > 0 ? ": " : ":";
        v.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace ipsa::util
