// Lightweight status / result types used across the IPSA/rP4 code base.
//
// We deliberately avoid exceptions on hot paths (packet processing, table
// lookup); recoverable errors travel as Status / Result<T> values, in the
// style of absl::Status but self-contained.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ipsa {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kUnavailable,         // transport down / peer unreachable (retryable)
  kDeadlineExceeded,    // per-call timeout expired
};

std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

// A value or an error status. Accessing the value of an error result is a
// programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT: implicit
  Result(Status status) : status_(std::move(status)) {   // NOLINT: implicit
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // Ok iff value_ holds a value.
};

// Propagate an error status from an expression producing Status.
#define IPSA_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::ipsa::Status ipsa_status_tmp_ = (expr);       \
    if (!ipsa_status_tmp_.ok()) return ipsa_status_tmp_; \
  } while (0)

// Assign the value of a Result<T> expression or propagate its error.
#define IPSA_CONCAT_INNER_(a, b) a##b
#define IPSA_CONCAT_(a, b) IPSA_CONCAT_INNER_(a, b)
#define IPSA_ASSIGN_OR_RETURN(lhs, expr) \
  IPSA_ASSIGN_OR_RETURN_IMPL_(IPSA_CONCAT_(ipsa_result_tmp_, __LINE__), lhs, expr)
#define IPSA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace ipsa
