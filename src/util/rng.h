// Deterministic PRNG for workload generation and property tests.
//
// std::mt19937_64 seeded explicitly; all randomized behaviour in the repo
// flows through this type so runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace ipsa::util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x1905'2021ull) : engine_(seed) {}

  uint64_t Next() { return engine_(); }

  // Uniform in [0, bound); bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) {
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
  }

  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ipsa::util
