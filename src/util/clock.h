// Timing utilities.
//
// Two clocks matter in this code base:
//  * Wall time (Stopwatch) — used by the Table 1 benchmarks to measure real
//    compile/load latencies of our tool chain, matching the paper's t_C/t_L.
//  * Simulated device time (SimClock) — a cycle counter the behavioral
//    switches and the hardware model advance explicitly, so per-packet cycle
//    costs are deterministic and independent of host load.
#pragma once

#include <chrono>
#include <cstdint>

namespace ipsa::util {

class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Explicitly advanced cycle counter for device simulation.
class SimClock {
 public:
  uint64_t cycles() const { return cycles_; }
  void Advance(uint64_t n) { cycles_ += n; }
  void Reset() { cycles_ = 0; }

  // Seconds at the given core frequency.
  double SecondsAt(double hz) const {
    return static_cast<double>(cycles_) / hz;
  }

 private:
  uint64_t cycles_ = 0;
};

}  // namespace ipsa::util
