// Deterministic hash functions used by hash/selector tables (ECMP member
// selection) and exact-match tables. Seeded variants let a table pick an
// independent hash family member.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace ipsa::util {

// FNV-1a, 64-bit. Stable across platforms; used for exact-match bucketing.
uint64_t Fnv1a64(std::span<const uint8_t> data, uint64_t seed = 0);
uint64_t Fnv1a64(std::string_view s, uint64_t seed = 0);

// CRC-32 (IEEE 802.3 polynomial, reflected). ECMP-style flow hashing in real
// switch ASICs is CRC-based, so the selector tables use this.
uint32_t Crc32(std::span<const uint8_t> data, uint32_t seed = 0);

// A 64->64 bit finalizer (splitmix64) for integer key mixing.
uint64_t Mix64(uint64_t x);

// Transparent (heterogeneous) string hasher for unordered containers keyed
// by std::string: lets hot paths probe with a string_view and never
// materialize a temporary std::string. Pair with std::equal_to<>.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return static_cast<size_t>(Fnv1a64(s));
  }
};

}  // namespace ipsa::util
