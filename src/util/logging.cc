#include "util/logging.h"

#include <cstdio>

namespace ipsa::util {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace ipsa::util
