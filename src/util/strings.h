// Small string helpers shared by the compilers and the controller CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ipsa::util {

// Splits on `sep`, optionally keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep,
                               bool keep_empty = false);

// Splits on runs of whitespace (never returns empty fields).
std::vector<std::string> SplitWhitespace(std::string_view s);

std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Parses a decimal or 0x-prefixed integer.
std::optional<uint64_t> ParseUint(std::string_view s);

std::string ToLower(std::string_view s);

// Joins items with `sep`.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

// printf-style formatting into std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ipsa::util
