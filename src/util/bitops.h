// Bit-level helpers for header field extraction and insertion.
//
// Packet header fields are arbitrary-width big-endian bit ranges that need
// not align to byte boundaries (e.g. the IPv4 "version" nibble, the 20-bit
// IPv6 flow label). These helpers read and write such ranges against a byte
// buffer. Fields wider than 64 bits (IPv6 addresses, 128-bit SIDs) are
// handled as byte spans at a higher layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ipsa::util {

// Reads `bit_width` bits starting at absolute bit offset `bit_offset` from
// `data` (bit 0 = MSB of byte 0), returning them right-aligned in a uint64.
// Requires bit_width <= 64 and the range to lie inside `data`.
uint64_t ReadBits(std::span<const uint8_t> data, size_t bit_offset,
                  size_t bit_width);

// Writes the low `bit_width` bits of `value` into the bit range
// [bit_offset, bit_offset + bit_width) of `data`, preserving surrounding
// bits. Requires bit_width <= 64 and the range to lie inside `data`.
void WriteBits(std::span<uint8_t> data, size_t bit_offset, size_t bit_width,
               uint64_t value);

// Number of bytes needed to hold `bits` bits.
constexpr size_t BytesForBits(size_t bits) { return (bits + 7) / 8; }

// Mask with the low `bits` bits set; bits == 64 yields all-ones.
constexpr uint64_t LowMask(size_t bits) {
  return bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
}

// Big-endian loads/stores used by header accessors.
uint16_t LoadBe16(const uint8_t* p);
uint32_t LoadBe32(const uint8_t* p);
uint64_t LoadBe64(const uint8_t* p);
void StoreBe16(uint8_t* p, uint16_t v);
void StoreBe32(uint8_t* p, uint32_t v);
void StoreBe64(uint8_t* p, uint64_t v);

}  // namespace ipsa::util
